"""Incremental STA speedup (the practical payoff of fast stage evaluation).

Timing closure loops edit one device at a time and re-time the design.
With per-arc caching, only the edited stage and its loading-affected
driver need fresh QWM evaluations.  This bench times a full analysis of
an inverter/NAND chain versus the incremental re-analysis after a
single transistor resize and reports the arc-evaluation counts.
"""

import pytest

from benchmarks.harness import format_table, run_once, save_result
from repro.analysis import IncrementalTimer
from repro.circuit import extract_stages
from repro.circuit.netlist import GND_NODE, VDD_NODE
from repro.circuit.stage import FlatNetlist

CHAIN_LENGTH = 8


def _chain(tech):
    """An 8-stage chain alternating inverters and NAND2s."""
    net = FlatNetlist("chain8", vdd=tech.vdd)
    prev = "a"
    for i in range(CHAIN_LENGTH):
        out = f"n{i}" if i < CHAIN_LENGTH - 1 else "y"
        if i % 2 == 0:
            net.add_pmos(f"p{i}", gate=prev, src=VDD_NODE, snk=out,
                         w=2e-6, l=tech.lmin)
            net.add_nmos(f"m{i}", gate=prev, src=out, snk=GND_NODE,
                         w=1e-6, l=tech.lmin)
        else:
            net.add_pmos(f"p{i}", gate=prev, src=VDD_NODE, snk=out,
                         w=2e-6, l=tech.lmin)
            net.add_pmos(f"p{i}e", gate="en", src=VDD_NODE, snk=out,
                         w=2e-6, l=tech.lmin)
            net.add_nmos(f"m{i}", gate=prev, src=out, snk=f"x{i}",
                         w=1e-6, l=tech.lmin)
            net.add_nmos(f"m{i}e", gate="en", src=f"x{i}",
                         snk=GND_NODE, w=1e-6, l=tech.lmin)
        prev = out
    net.mark_input("a")
    net.mark_input("en")
    net.mark_output("y")
    net.set_load("y", 5e-15)
    return extract_stages(net, tech=tech)


def test_full_analysis_cost(benchmark, tech, library):
    graph = _chain(tech)
    timer = IncrementalTimer(tech, graph, library=library)
    benchmark.pedantic(timer.analyze, rounds=1, iterations=1)
    assert timer.last_stats.arcs_evaluated > 0


def test_incremental_resize_speedup(benchmark, tech, library):
    import time

    graph = _chain(tech)
    timer = IncrementalTimer(tech, graph, library=library)

    def experiment():
        t0 = time.perf_counter()
        first = timer.analyze()
        t_full = time.perf_counter() - t0
        full_arcs = timer.last_stats.arcs_evaluated

        # Resize one NMOS in the last stage and re-time.
        last = graph.stage_of_net["y"]
        device = next(e.name for e in last.transistors
                      if e.kind.polarity == "n")
        timer.resize_transistor(last.name, device, 2e-6)
        t0 = time.perf_counter()
        second = timer.analyze()
        t_inc = time.perf_counter() - t0
        inc_stats = timer.last_stats

        # Ground truth: a cold timer on the edited design agrees.
        cold = IncrementalTimer(tech, graph, library=library).analyze()
        return (first, second, cold, t_full, t_inc, full_arcs,
                inc_stats)

    (first, second, cold, t_full, t_inc, full_arcs,
     inc_stats) = run_once(benchmark, experiment)

    assert second.worst.time == pytest.approx(cold.worst.time, rel=1e-9)
    assert inc_stats.arcs_evaluated < full_arcs
    speedup = t_full / t_inc
    save_result("incremental_sta.txt", format_table(
        "Incremental STA after one transistor resize (8-stage chain)",
        ["quantity", "value"],
        [
            ["stages", str(len(graph.stages))],
            ["full analysis arcs", str(full_arcs)],
            ["incremental arcs re-evaluated",
             str(inc_stats.arcs_evaluated)],
            ["arcs served from cache", str(inc_stats.arcs_cached)],
            ["full analysis time", f"{t_full * 1e3:.1f} ms"],
            ["incremental time", f"{t_inc * 1e3:.1f} ms"],
            ["speedup", f"{speedup:.1f}x"],
            ["worst arrival (before)",
             f"{first.worst.time * 1e12:.1f} ps"],
            ["worst arrival (after)",
             f"{second.worst.time * 1e12:.1f} ps"],
        ]))
    assert speedup > 1.5
