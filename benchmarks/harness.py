"""Shared experiment harness for the paper-reproduction benchmarks.

Each table/figure benchmark builds its circuits here, runs the reference
SPICE-like engine at the paper's two step sizes (1 ps and 10 ps) and the
QWM engine, and emits a paper-style row: runtimes, speedups and the
delay error against the 1 ps reference.  Formatted tables are printed
and also written under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuit.netlist import LogicStage
from repro.core import QWMSolution, WaveformEvaluator
from repro.obs import span, telemetry
from repro.spice import (
    ConstantSource,
    StepSource,
    TransientOptions,
    TransientResult,
    TransientSimulator,
)

#: Input switching instant for every experiment [s].
T_SWITCH = 20e-12

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Append-only run ledger: one JSON line per benchmark run (git SHA,
#: timestamp, headline metrics).  ``repro bench-diff`` compares the
#: last two entries and flags >10 % regressions.
HISTORY_FILE = os.path.join(RESULTS_DIR, "BENCH_history.jsonl")

#: The accuracy analogue: per-case delay errors from the golden suite,
#: shadow-SPICE audits and the ``BENCH_ACCURACY=1`` bench section.
#: ``repro accuracy-diff`` compares the last two entries per run.
ACCURACY_HISTORY_FILE = os.path.join(RESULTS_DIR,
                                     "ACCURACY_history.jsonl")


@dataclass
class ExperimentRow:
    """One row of a Table I/II style comparison."""

    name: str
    spice_1ps_time: float
    spice_10ps_time: float
    qwm_time: float
    spice_delay: float
    qwm_delay: float

    @property
    def speedup_1ps(self) -> float:
        return self.spice_1ps_time / self.qwm_time

    @property
    def speedup_10ps(self) -> float:
        return self.spice_10ps_time / self.qwm_time

    @property
    def error_percent(self) -> float:
        return abs(self.qwm_delay - self.spice_delay) \
            / self.spice_delay * 100.0


def stack_inputs(tech, k: int) -> Dict[str, object]:
    """Paper stack stimulus: bottom gate steps, the rest held high."""
    inputs: Dict[str, object] = {"g1": StepSource(0.0, tech.vdd, T_SWITCH)}
    inputs.update({f"g{j}": ConstantSource(tech.vdd)
                   for j in range(2, k + 1)})
    return inputs


def gate_inputs(tech, n: int) -> Dict[str, object]:
    """Worst-case NAND stimulus: bottom input switches last."""
    inputs: Dict[str, object] = {"a0": StepSource(0.0, tech.vdd, T_SWITCH)}
    inputs.update({f"a{i}": ConstantSource(tech.vdd)
                   for i in range(1, n)})
    return inputs


def run_spice(stage: LogicStage, tech, inputs, dt: float, t_stop: float,
              initial: Optional[Dict[str, float]] = None
              ) -> TransientResult:
    """One reference transient run at a fixed step size."""
    with span("bench.spice", stage=stage.name, dt=dt):
        sim = TransientSimulator(stage, tech,
                                 TransientOptions(t_stop=t_stop, dt=dt))
        return sim.run(inputs, initial=initial)


def compare_engines(stage: LogicStage, tech,
                    evaluator: WaveformEvaluator,
                    inputs, output: str, t_stop: float,
                    initial: Optional[Dict[str, float]] = None,
                    direction: str = "fall",
                    precharge: str = "full",
                    name: str = "") -> ExperimentRow:
    """Run both step sizes of the reference plus QWM; build a row."""
    with span("bench.compare", circuit=name or stage.name):
        res_1ps = run_spice(stage, tech, inputs, 1e-12, t_stop, initial)
        res_10ps = run_spice(stage, tech, inputs, 10e-12, t_stop,
                             initial)
        solution = evaluator.evaluate(stage, output, direction, inputs,
                                      precharge=precharge,
                                      initial=initial)
    d_spice = res_1ps.delay_50(output, tech.vdd, t_input=T_SWITCH,
                               direction=direction)
    d_qwm = solution.delay(t_input=T_SWITCH)
    if d_spice is None or d_qwm is None:
        raise RuntimeError(f"{name}: missing 50% crossing "
                           f"(spice={d_spice}, qwm={d_qwm})")
    return ExperimentRow(
        name=name or stage.name,
        spice_1ps_time=res_1ps.stats.wall_time,
        spice_10ps_time=res_10ps.stats.wall_time,
        qwm_time=solution.stats.wall_time,
        spice_delay=d_spice,
        qwm_delay=d_qwm)


def evaluate_qwm(stage: LogicStage, evaluator: WaveformEvaluator,
                 inputs, output: str, direction: str = "fall",
                 precharge: str = "full",
                 initial: Optional[Dict[str, float]] = None
                 ) -> QWMSolution:
    """QWM-only evaluation (the callable the timing benchmark wraps)."""
    return evaluator.evaluate(stage, output, direction, inputs,
                              precharge=precharge, initial=initial)


def format_table(title: str, header: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width ASCII table."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(header)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def comparison_table(title: str, rows: Sequence[ExperimentRow]) -> str:
    """Paper Table I/II layout."""
    header = ["Circuit", "Spice(1ps) s", "Speedup", "Spice(10ps) s",
              "Speedup", "QWM s", "Error"]
    body = [[
        r.name,
        f"{r.spice_1ps_time:.4f}",
        f"{r.speedup_1ps:.1f}x",
        f"{r.spice_10ps_time:.4f}",
        f"{r.speedup_10ps:.1f}x",
        f"{r.qwm_time:.4f}",
        f"{r.error_percent:.2f}%",
    ] for r in rows]
    avg = [
        "AVERAGE",
        "",
        f"{np.mean([r.speedup_1ps for r in rows]):.1f}x",
        "",
        f"{np.mean([r.speedup_10ps for r in rows]):.1f}x",
        "",
        f"{np.mean([r.error_percent for r in rows]):.2f}%",
    ]
    return format_table(title, header, body + [avg])


def save_result(filename: str, content: str) -> str:
    """Write a result artifact under benchmarks/results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w") as handle:
        handle.write(content + "\n")
    print("\n" + content)
    return path


def save_metrics(filename: str,
                 phases: Optional[Dict[str, float]] = None,
                 accuracy: Optional[Dict] = None) -> str:
    """Dump the current metrics registry under benchmarks/results/.

    The CI bench job uploads these dumps (``BENCH_headline.json``) as
    artifacts so the perf trajectory accumulates across commits.  When
    the run profiled itself, ``phases`` (frame label -> exclusive
    seconds, see :func:`repro.obs.profile.phase_self_seconds`) is
    embedded as a top-level ``phases`` section so the artifact carries
    the cost attribution alongside the counters; ``accuracy`` (the
    ``BENCH_ACCURACY=1`` per-circuit error section) embeds the same
    way.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    telemetry().export_metrics(path)
    if phases or accuracy:
        with open(path) as handle:
            document = json.load(handle)
        if phases:
            document["phases"] = {
                name: float(value)
                for name, value in sorted(phases.items())}
        if accuracy:
            document["accuracy"] = accuracy
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return path


def save_speedscope(filename: str) -> str:
    """Write the current profiler ledger as a speedscope artifact."""
    from repro.obs.profile import export_speedscope, profiler

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    return export_speedscope(profiler(), path, name=filename)


def _git_sha() -> str:
    """HEAD commit of the repo this file lives in ("unknown" outside git)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
        if proc.returncode == 0:
            return proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def append_history(run: str, metrics: Dict[str, float],
                   path: Optional[str] = None,
                   phases: Optional[Dict[str, float]] = None) -> str:
    """Append one run entry to the benchmark history ledger.

    Args:
        run: benchmark name (``"headline"``).
        metrics: headline metric name -> value for this run.
        path: history file override (default :data:`HISTORY_FILE`).
        phases: optional phase self-time section (frame label ->
            exclusive seconds); ``repro bench-diff`` uses consecutive
            profiled entries to attribute a regression to the phase
            whose self time grew the most.

    Returns:
        The history file path.
    """
    path = path or HISTORY_FILE
    os.makedirs(os.path.dirname(path), exist_ok=True)
    entry = {
        "run": run,
        "git_sha": _git_sha(),
        "timestamp_unix": time.time(),
        "smoke": bool(os.environ.get("BENCH_SMOKE")),
        "metrics": {name: float(value)
                    for name, value in sorted(metrics.items())},
    }
    if phases:
        entry["phases"] = {name: float(value)
                           for name, value in sorted(phases.items())}
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def append_accuracy_history(run: str, cases: Dict[str, Dict],
                            path: Optional[str] = None) -> str:
    """Append one entry to the accuracy history ledger.

    Thin wrapper over :func:`repro.obs.accuracy.history_entry` /
    ``append_history_entry`` that fills in the git SHA and the default
    ledger path, mirroring :func:`append_history` for the bench side.
    """
    from repro.obs.accuracy import append_history_entry, history_entry

    entry = history_entry(run, cases, git_sha=_git_sha())
    return append_history_entry(entry, path or ACCURACY_HISTORY_FILE)


def load_history(path: Optional[str] = None) -> List[Dict]:
    """All entries of the benchmark history ledger (oldest first)."""
    path = path or HISTORY_FILE
    if not os.path.exists(path):
        return []
    entries = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under the benchmark fixture.

    Data-generation tests use this so they still run (and report a
    wall time) under ``pytest --benchmark-only``, which skips any test
    that never touches the fixture.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


def save_csv(filename: str, header: Sequence[str],
             columns: Sequence[np.ndarray]) -> str:
    """Write aligned columns as CSV under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    data = np.column_stack([np.asarray(c) for c in columns])
    np.savetxt(path, data, delimiter=",", header=",".join(header),
               comments="")
    return path
