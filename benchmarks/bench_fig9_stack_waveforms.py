"""Fig. 9: 6-NMOS stack voltage waveforms, QWM vs the reference.

The paper plots the QWM result "as straight solid lines connecting the
critical points" over the HSPICE dashed curves for the 6-transistor
stack taken from the Manchester carry chain's longest path, and reports
that QWM "follows quite closely".  The benchmark regenerates both wave
sets, saves them side by side, and bounds the deviation.
"""

import numpy as np
import pytest

from benchmarks.harness import (
    T_SWITCH,
    evaluate_qwm,
    format_table,
    run_once,
    run_spice,
    save_csv,
    save_result,
    stack_inputs,
)
from repro.circuit import builders

K = 6


@pytest.fixture(scope="module")
def experiment(tech, evaluator):
    # The paper takes this stack from the Manchester carry chain's
    # longest path (bits=5: five pass transistors + the cin pull-down).
    stage = builders.nmos_stack(tech, K, widths=[1e-6] * K, load=10e-15)
    inputs = stack_inputs(tech, K)
    initial = {n.name: tech.vdd for n in stage.internal_nodes}
    reference = run_spice(stage, tech, inputs, 1e-12, 700e-12, initial)
    solution = evaluator.evaluate(stage, "out", "fall", inputs,
                                  initial=initial)
    return stage, reference, solution


def test_fig9_waveform_match(benchmark, tech, experiment):
    stage, reference, solution = experiment
    run_once(benchmark, lambda: None)
    names = [f"n{i}" for i in range(1, K)] + ["out"]
    columns = [reference.times]
    header = ["time"]
    mask = reference.times > T_SWITCH + 4e-12
    rows = []
    for name in names:
        ref = reference.voltage(name)
        qwm = solution.waveforms[name].sample(reference.times)
        columns.extend([ref, qwm])
        header.extend([f"{name}_spice", f"{name}_qwm"])
        dev = float(np.max(np.abs(ref[mask] - qwm[mask])))
        rms = float(np.sqrt(np.mean((ref[mask] - qwm[mask]) ** 2)))
        rows.append([name, f"{dev:.3f} V", f"{rms:.3f} V"])
        assert dev < 0.45, name
    save_csv("fig9_waveforms.csv", header, columns)

    d_ref = reference.delay_50("out", tech.vdd, t_input=T_SWITCH)
    d_qwm = solution.delay(t_input=T_SWITCH)
    rows.append(["50% delay",
                 f"qwm {d_qwm * 1e12:.1f} ps",
                 f"ref {d_ref * 1e12:.1f} ps"])
    rows.append(["critical points", str(len(solution.critical_times)),
                 ""])
    save_result("fig9_summary.txt", format_table(
        "Fig 9: 6-NMOS stack, QWM piecewise waveforms vs reference",
        ["node", "max deviation", "rms deviation"], rows))
    assert abs(d_qwm - d_ref) / d_ref < 0.06


def test_fig9_qwm_cost(benchmark, tech, evaluator):
    stage = builders.nmos_stack(tech, K, widths=[1e-6] * K, load=10e-15)
    inputs = stack_inputs(tech, K)
    initial = {n.name: tech.vdd for n in stage.internal_nodes}
    benchmark.pedantic(
        evaluate_qwm, args=(stage, evaluator, inputs, "out"),
        kwargs={"initial": initial}, rounds=5, iterations=1)
