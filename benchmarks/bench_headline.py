"""Headline result: aggregate speedup and accuracy.

The paper's abstract: "a 31.6 times speed-up over SPICE transient
simulation with 1ps step size can be achieved, while maintaining an
average accuracy of 99%."  This bench aggregates a representative mix
of Table I gates and Table II stacks on this machine and reports the
same two aggregate numbers.  Absolute speedup depends on the host and
on both engines being pure Python here; the shape to reproduce is a
double-digit average speedup at 1 ps with high-90s accuracy.

The run executes under full telemetry and dumps the metrics registry to
``benchmarks/results/BENCH_headline.json`` (QWM vs SPICE step/NR/device
counters plus the headline gauges) — the artifact CI uploads per
commit.  Set ``BENCH_SMOKE=1`` to run the NAND2 experiment only and
skip the aggregate assertions (the CI smoke configuration).
"""

import os

import numpy as np
import pytest

from benchmarks.harness import (
    append_history,
    compare_engines,
    format_table,
    gate_inputs,
    run_once,
    save_metrics,
    save_result,
    stack_inputs,
)
from repro.analysis import AccuracyReport
from repro.circuit import builders
from repro.obs import ObsConfig, configure, disable, inc, set_gauge
from repro.resilience.ladder import QUALITY_ORDER

SMOKE = bool(os.environ.get("BENCH_SMOKE"))


def _mix(tech):
    experiments = []
    sizes = (2,) if SMOKE else (2, 3, 4)
    for n in sizes:
        experiments.append((
            f"nand{n}", builders.nand_gate(tech, n), gate_inputs(tech, n),
            "degraded", None, 150e-12 + 80e-12 * n))
    if SMOKE:
        return experiments
    for k in (5, 7, 9):
        stage = builders.nmos_stack(tech, k,
                                    rng=np.random.default_rng(k),
                                    load=10e-15)
        experiments.append((
            f"stack{k}", stage, stack_inputs(tech, k), "full",
            {node.name: tech.vdd for node in stage.internal_nodes},
            120e-12 + 130e-12 * k))
    return experiments


def test_headline_aggregate(benchmark, tech, evaluator):
    def run_all():
        rows = []
        for name, stage, inputs, precharge, initial, t_stop in _mix(tech):
            rows.append(compare_engines(
                stage, tech, evaluator, inputs, "out", t_stop,
                initial=initial, precharge=precharge, name=name))
        return rows

    configure(ObsConfig(enabled=True))
    try:
        rows = run_once(benchmark, run_all)
        report = AccuracyReport.from_errors(
            [r.error_percent for r in rows])
        mean_speedup = float(np.mean([r.speedup_1ps for r in rows]))

        set_gauge("bench.headline.mean_speedup_1ps", mean_speedup)
        set_gauge("bench.headline.accuracy_percent",
                  report.accuracy_percent)
        set_gauge("bench.headline.worst_error_percent",
                  report.worst_error_percent)
        set_gauge("bench.headline.circuits", len(rows))
        # Materialise the fallback-rung series at zero so the artifact
        # always carries them: a clean run dumps explicit zeros, and a
        # degraded run stands out as a diff against that baseline.
        for quality in QUALITY_ORDER:
            inc("resilience.arc.quality", 0, quality=quality)
            if quality != QUALITY_ORDER[-1]:
                inc("resilience.escalations", 0, rung=quality)
        save_metrics("BENCH_headline.json")
        append_history("headline", {
            "mean_speedup_1ps": mean_speedup,
            "accuracy_percent": report.accuracy_percent,
            "worst_error_percent": report.worst_error_percent,
            "circuits": len(rows),
            "qwm_total_seconds": float(sum(r.qwm_time for r in rows)),
        })
    finally:
        disable()

    table = format_table(
        "Headline: aggregate speedup and accuracy",
        ["quantity", "this repo", "paper"],
        [
            ["average speedup vs 1ps reference",
             f"{mean_speedup:.1f}x", "31.6x"],
            ["average accuracy",
             f"{report.accuracy_percent:.2f}%", "99%"],
            ["worst delay error",
             f"{report.worst_error_percent:.2f}%", "3.66%"],
            ["circuits", str(len(rows)), "22"],
        ])
    save_result("headline.txt", table)

    benchmark.extra_info["mean_speedup_1ps"] = mean_speedup
    benchmark.extra_info["accuracy_percent"] = report.accuracy_percent
    if SMOKE:
        pytest.skip("BENCH_SMOKE: metrics artifact written, aggregate "
                    "assertions skipped")
    assert mean_speedup > 4.0
    assert report.accuracy_percent > 93.0
