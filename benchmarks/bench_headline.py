"""Headline result: aggregate speedup and accuracy.

The paper's abstract: "a 31.6 times speed-up over SPICE transient
simulation with 1ps step size can be achieved, while maintaining an
average accuracy of 99%."  This bench aggregates a representative mix
of Table I gates and Table II stacks on this machine and reports the
same two aggregate numbers.  Absolute speedup depends on the host and
on both engines being pure Python here; the shape to reproduce is a
double-digit average speedup at 1 ps with high-90s accuracy.
"""

import numpy as np
import pytest

from benchmarks.harness import (
    compare_engines,
    format_table,
    gate_inputs,
    run_once,
    save_result,
    stack_inputs,
)
from repro.analysis import AccuracyReport
from repro.circuit import builders


def _mix(tech):
    experiments = []
    for n in (2, 3, 4):
        experiments.append((
            f"nand{n}", builders.nand_gate(tech, n), gate_inputs(tech, n),
            "degraded", None, 150e-12 + 80e-12 * n))
    for k in (5, 7, 9):
        stage = builders.nmos_stack(tech, k,
                                    rng=np.random.default_rng(k),
                                    load=10e-15)
        experiments.append((
            f"stack{k}", stage, stack_inputs(tech, k), "full",
            {node.name: tech.vdd for node in stage.internal_nodes},
            120e-12 + 130e-12 * k))
    return experiments


def test_headline_aggregate(benchmark, tech, evaluator):
    def run_all():
        rows = []
        for name, stage, inputs, precharge, initial, t_stop in _mix(tech):
            rows.append(compare_engines(
                stage, tech, evaluator, inputs, "out", t_stop,
                initial=initial, precharge=precharge, name=name))
        return rows

    rows = run_once(benchmark, run_all)
    report = AccuracyReport.from_errors([r.error_percent for r in rows])
    mean_speedup = float(np.mean([r.speedup_1ps for r in rows]))

    table = format_table(
        "Headline: aggregate speedup and accuracy",
        ["quantity", "this repo", "paper"],
        [
            ["average speedup vs 1ps reference",
             f"{mean_speedup:.1f}x", "31.6x"],
            ["average accuracy",
             f"{report.accuracy_percent:.2f}%", "99%"],
            ["worst delay error",
             f"{report.worst_error_percent:.2f}%", "3.66%"],
            ["circuits", str(len(rows)), "22"],
        ])
    save_result("headline.txt", table)

    benchmark.extra_info["mean_speedup_1ps"] = mean_speedup
    benchmark.extra_info["accuracy_percent"] = report.accuracy_percent
    assert mean_speedup > 4.0
    assert report.accuracy_percent > 93.0
