"""Headline result: aggregate speedup and accuracy.

The paper's abstract: "a 31.6 times speed-up over SPICE transient
simulation with 1ps step size can be achieved, while maintaining an
average accuracy of 99%."  This bench aggregates a representative mix
of Table I gates and Table II stacks on this machine and reports the
same two aggregate numbers.  Absolute speedup depends on the host and
on both engines being pure Python here; the shape to reproduce is a
double-digit average speedup at 1 ps with high-90s accuracy.

The run executes under full telemetry and dumps the metrics registry to
``benchmarks/results/BENCH_headline.json`` (QWM vs SPICE step/NR/device
counters plus the headline gauges) — the artifact CI uploads per
commit.  Set ``BENCH_SMOKE=1`` to run the NAND2 experiment only and
skip the aggregate assertions (the CI smoke configuration).  Set
``BENCH_PROFILE=1`` to additionally run under the phase profiler: the
artifact and the history entry then carry a ``phases`` self-time
section (the ``repro bench-diff`` attribution input) and a speedscope
flame-graph artifact is written next to the metrics dump.  Set
``BENCH_ACCURACY=1`` to embed the per-circuit error section into the
artifact and append the errors to the accuracy history ledger
(``benchmarks/results/ACCURACY_history.jsonl``, the ``repro
accuracy-diff`` input).
"""

import os
import time

import numpy as np
import pytest

from benchmarks.harness import (
    append_accuracy_history,
    append_history,
    compare_engines,
    evaluate_qwm,
    format_table,
    gate_inputs,
    run_once,
    save_metrics,
    save_result,
    save_speedscope,
    stack_inputs,
)
from repro.analysis import AccuracyReport
from repro.circuit import builders
from repro.obs import ObsConfig, configure, disable, inc, set_gauge
from repro.obs.profile import (
    ProfileConfig,
    configure_profile,
    disable_profile,
    phase_self_seconds,
    profiler,
)
from repro.resilience.ladder import QUALITY_ORDER

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
PROFILE = bool(os.environ.get("BENCH_PROFILE"))
ACCURACY = bool(os.environ.get("BENCH_ACCURACY"))


def _mix(tech):
    experiments = []
    sizes = (2,) if SMOKE else (2, 3, 4)
    for n in sizes:
        experiments.append((
            f"nand{n}", builders.nand_gate(tech, n), gate_inputs(tech, n),
            "degraded", None, 150e-12 + 80e-12 * n))
    if SMOKE:
        return experiments
    for k in (5, 7, 9):
        stage = builders.nmos_stack(tech, k,
                                    rng=np.random.default_rng(k),
                                    load=10e-15)
        experiments.append((
            f"stack{k}", stage, stack_inputs(tech, k), "full",
            {node.name: tech.vdd for node in stage.internal_nodes},
            120e-12 + 130e-12 * k))
    return experiments


def test_headline_aggregate(benchmark, tech, evaluator):
    def run_all():
        rows = []
        for name, stage, inputs, precharge, initial, t_stop in _mix(tech):
            rows.append(compare_engines(
                stage, tech, evaluator, inputs, "out", t_stop,
                initial=initial, precharge=precharge, name=name))
        return rows

    configure(ObsConfig(enabled=True))
    # Profile when asked (BENCH_PROFILE=1) or when an outer harness
    # (``repro profile benchmarks/bench_headline.py``) already enabled
    # the profiler — never re-configure an externally-owned ledger.
    own_profile = PROFILE and not profiler().enabled
    if own_profile:
        configure_profile(ProfileConfig(enabled=True))
    try:
        rows = run_once(benchmark, run_all)
        report = AccuracyReport.from_errors(
            [r.error_percent for r in rows])
        mean_speedup = float(np.mean([r.speedup_1ps for r in rows]))

        set_gauge("bench.headline.mean_speedup_1ps", mean_speedup)
        set_gauge("bench.headline.accuracy_percent",
                  report.accuracy_percent)
        set_gauge("bench.headline.worst_error_percent",
                  report.worst_error_percent)
        set_gauge("bench.headline.circuits", len(rows))
        # Materialise the fallback-rung series at zero so the artifact
        # always carries them: a clean run dumps explicit zeros, and a
        # degraded run stands out as a diff against that baseline.
        for quality in QUALITY_ORDER:
            inc("resilience.arc.quality", 0, quality=quality)
            if quality != QUALITY_ORDER[-1]:
                inc("resilience.escalations", 0, rung=quality)
        # Same treatment for the run-durability series: a clean bench
        # run pins the budget/journal counters at explicit zeros so any
        # clamped or journal-degraded run diffs against them.
        for level in ("no-spice", "bound"):
            inc("resilience.budget.clamped_stages", 0, level=level)
            inc("resilience.budget.clamped_arcs", 0, level=level)
        inc("resilience.journal.write_errors", 0)
        inc("resilience.journal.replayed_waves", 0)
        phases = (phase_self_seconds(profiler().to_json())
                  if profiler().enabled else None)
        # BENCH_ACCURACY=1: embed the per-circuit error section into
        # the metrics artifact and feed the accuracy history ledger
        # (the same errors the aggregate gauges summarize — the live
        # QWM-vs-1ps-SPICE comparison, not a separate solve).
        accuracy = None
        if ACCURACY:
            accuracy = {
                "errors_pct": {r.name: r.error_percent for r in rows},
                "mean_error_pct": report.average_error_percent,
                "worst_error_pct": report.worst_error_percent,
                "accuracy_percent": report.accuracy_percent,
            }
            append_accuracy_history("bench-headline", {
                r.name: {"delay_error_pct": r.error_percent}
                for r in rows})
        save_metrics("BENCH_headline.json", phases=phases,
                     accuracy=accuracy)
        append_history("headline", {
            "mean_speedup_1ps": mean_speedup,
            "accuracy_percent": report.accuracy_percent,
            "worst_error_percent": report.worst_error_percent,
            "circuits": len(rows),
            "qwm_total_seconds": float(sum(r.qwm_time for r in rows)),
        }, phases=phases)
        if profiler().enabled:
            save_speedscope("BENCH_headline.speedscope.json")
    finally:
        disable()
        if own_profile:
            disable_profile()

    table = format_table(
        "Headline: aggregate speedup and accuracy",
        ["quantity", "this repo", "paper"],
        [
            ["average speedup vs 1ps reference",
             f"{mean_speedup:.1f}x", "31.6x"],
            ["average accuracy",
             f"{report.accuracy_percent:.2f}%", "99%"],
            ["worst delay error",
             f"{report.worst_error_percent:.2f}%", "3.66%"],
            ["circuits", str(len(rows)), "22"],
        ])
    save_result("headline.txt", table)

    benchmark.extra_info["mean_speedup_1ps"] = mean_speedup
    benchmark.extra_info["accuracy_percent"] = report.accuracy_percent
    if SMOKE:
        pytest.skip("BENCH_SMOKE: metrics artifact written, aggregate "
                    "assertions skipped")
    assert mean_speedup > 4.0
    assert report.accuracy_percent > 93.0


def test_profile_overhead_under_budget(benchmark, tech, evaluator):
    """Profiling the headline QWM workload costs < 5 % wall time.

    Min-of-N timing of the same solve with the profiler off and on;
    the minimum is robust against scheduler noise, and a small absolute
    allowance keeps the gate meaningful on loaded CI hosts.
    """
    stage = builders.nand_gate(tech, 2)
    inputs = gate_inputs(tech, 2)

    def workload():
        for _ in range(3):
            evaluate_qwm(stage, evaluator, inputs, "out",
                         precharge="degraded")

    workload()  # warm the characterization cache

    def best_of(samples: int) -> float:
        best = float("inf")
        for _ in range(samples):
            t0 = time.perf_counter()
            workload()
            best = min(best, time.perf_counter() - t0)
        return best

    disable_profile()
    off_seconds = run_once(benchmark, best_of, 7)
    configure_profile(ProfileConfig(enabled=True))
    try:
        on_seconds = best_of(7)
        cells = profiler().stats()["cells"]
    finally:
        disable_profile()

    assert cells > 0, "profiler recorded nothing for the QWM workload"
    assert on_seconds < off_seconds * 1.05 + 1e-3, (
        f"profiling overhead too high: {off_seconds * 1e3:.2f}ms off "
        f"vs {on_seconds * 1e3:.2f}ms on")
