"""Ablation D: adaptive vs fixed-step reference cost.

The paper benchmarks HSPICE at user-fixed 1 ps / 10 ps steps; a
production engine adapts its step to the local truncation error.  This
bench brackets QWM between the fixed-step references and the adaptive
engine on the 6-stack: the adaptive run undercuts 1 ps substantially
while staying accurate, and QWM still undercuts all of them — its solve
count depends on K, not on integration error control.
"""

import pytest

from benchmarks.harness import (
    T_SWITCH,
    evaluate_qwm,
    format_table,
    run_once,
    run_spice,
    save_result,
    stack_inputs,
)
from repro.circuit import builders
from repro.spice import AdaptiveOptions, AdaptiveTransientSimulator

K = 6


def _experiment(tech):
    stage = builders.nmos_stack(tech, K, widths=[1e-6] * K, load=10e-15)
    inputs = stack_inputs(tech, K)
    initial = {n.name: tech.vdd for n in stage.internal_nodes}
    return stage, inputs, initial


def test_adaptive_engine_cost(benchmark, tech):
    stage, inputs, initial = _experiment(tech)
    sim = AdaptiveTransientSimulator(stage, tech, AdaptiveOptions(
        t_stop=700e-12))
    result = benchmark.pedantic(sim.run, args=(inputs,),
                                kwargs={"initial": initial}, rounds=2,
                                iterations=1)
    assert result.delay_50("out", tech.vdd, t_input=T_SWITCH) is not None


def test_adaptive_vs_fixed_vs_qwm(benchmark, tech, evaluator):
    stage, inputs, initial = _experiment(tech)

    def ladder():
        fixed_1ps = run_spice(stage, tech, inputs, 1e-12, 700e-12,
                              initial)
        fixed_10ps = run_spice(stage, tech, inputs, 10e-12, 700e-12,
                               initial)
        adaptive = AdaptiveTransientSimulator(
            stage, tech, AdaptiveOptions(t_stop=700e-12)).run(
                inputs, initial=initial)
        qwm = evaluate_qwm(stage, evaluator, inputs, "out",
                           initial=initial)
        return fixed_1ps, fixed_10ps, adaptive, qwm

    fixed_1ps, fixed_10ps, adaptive, qwm = run_once(benchmark, ladder)
    d_ref = fixed_1ps.delay_50("out", tech.vdd, t_input=T_SWITCH)

    def row(name, steps, wall, delay):
        err = abs(delay - d_ref) / d_ref * 100.0
        return [name, str(steps), f"{wall * 1e3:.2f} ms",
                f"{delay * 1e12:.2f} ps", f"{err:.2f}%"]

    rows = [
        row("fixed 1 ps", fixed_1ps.stats.steps,
            fixed_1ps.stats.wall_time, d_ref),
        row("fixed 10 ps", fixed_10ps.stats.steps,
            fixed_10ps.stats.wall_time,
            fixed_10ps.delay_50("out", tech.vdd, t_input=T_SWITCH)),
        row("adaptive (LTE)", adaptive.stats.steps,
            adaptive.stats.wall_time,
            adaptive.delay_50("out", tech.vdd, t_input=T_SWITCH)),
        row("QWM", qwm.stats.steps, qwm.stats.wall_time,
            qwm.delay(t_input=T_SWITCH)),
    ]
    save_result("ablation_adaptive.txt", format_table(
        "Ablation D: step-control ladder on the 6-stack",
        ["engine", "solve points", "wall time", "50% delay", "error"],
        rows))

    assert adaptive.stats.steps < fixed_1ps.stats.steps
    assert qwm.stats.steps < adaptive.stats.steps
