"""Table II: QWM vs the SPICE reference for random NMOS stacks.

Paper setup: "transistor stacks of lengths ranging from 5 to 10, with
randomly chosen transistor widths", three width configurations per
length.  Paper shape: average speedup > 50x @1ps and > 3x @10ps, delay
error averaging 1.2% with a 3.66% worst case.  Machine-independent
shape to reproduce: large 1 ps speedups that do not degrade with K
(QWM solves scale with K, the reference with the ever-longer discharge
window), small single-digit errors.
"""

import numpy as np
import pytest

from benchmarks.harness import (
    comparison_table,
    compare_engines,
    evaluate_qwm,
    run_once,
    save_result,
    stack_inputs,
)
from repro.circuit import builders

_ROWS = []

CONFIGS = [(k, cfg) for k in range(5, 11) for cfg in range(3)]


def _build(tech, k, cfg):
    rng = np.random.default_rng(1000 * k + cfg)
    stage = builders.nmos_stack(tech, k, load=10e-15, rng=rng)
    inputs = stack_inputs(tech, k)
    initial = {node.name: tech.vdd for node in stage.internal_nodes}
    t_stop = 120e-12 + 130e-12 * k
    return stage, inputs, initial, t_stop


@pytest.mark.parametrize("k,cfg", CONFIGS,
                         ids=[f"k{k}-ckt{c}" for k, c in CONFIGS])
def test_table2_stack(benchmark, tech, evaluator, k, cfg):
    stage, inputs, initial, t_stop = _build(tech, k, cfg)

    benchmark.pedantic(
        evaluate_qwm, args=(stage, evaluator, inputs, "out"),
        kwargs={"initial": initial}, rounds=3, iterations=1)

    row = compare_engines(stage, tech, evaluator, inputs, "out", t_stop,
                          initial=initial, name=f"{k} ckt{cfg}")
    _ROWS.append(row)
    benchmark.extra_info["speedup_1ps"] = row.speedup_1ps
    benchmark.extra_info["delay_error_percent"] = row.error_percent

    assert row.speedup_1ps > 3.0
    assert row.error_percent < 8.0


def test_table2_report(benchmark, tech):
    if not _ROWS:
        pytest.skip("stack rows not collected")

    def report():
        content = comparison_table(
            "Table II: QWM vs SPICE reference, random NMOS stacks "
            "(K=5..10)", _ROWS)
        save_result("table2_stacks.txt", content)
        errors = [r.error_percent for r in _ROWS]
        summary = (f"worst error {max(errors):.2f}% (paper: 3.66%), "
                   f"average error {np.mean(errors):.2f}% (paper: 1.2%)")
        save_result("table2_summary.txt", summary)

    run_once(benchmark, report)
