"""Related-work comparison: the methodology ladder of paper Section II.

Four engines on the same 6-stack: switch-level Elmore (Crystal/IRSIM),
successive chords (TETA), QWM, and the Newton-Raphson reference —
ordered by accuracy, with speed measured on this machine.  The shape
the paper argues: switch-level is fastest but crude; SC keeps accuracy
at integration cost; QWM keeps device-model accuracy at near-AWE cost.
"""

import pytest

from benchmarks.harness import (
    T_SWITCH,
    evaluate_qwm,
    format_table,
    run_once,
    run_spice,
    save_result,
    stack_inputs,
)
from repro.baselines import SwitchLevelTimer
from repro.baselines.sc_iteration import SCOptions, SuccessiveChordsSimulator
from repro.circuit import builders

K = 6


def _experiment(tech):
    stage = builders.nmos_stack(tech, K, widths=[1e-6] * K, load=10e-15)
    inputs = stack_inputs(tech, K)
    initial = {n.name: tech.vdd for n in stage.internal_nodes}
    return stage, inputs, initial


def test_switch_level_speed(benchmark, tech, library):
    stage, inputs, _ = _experiment(tech)
    timer = SwitchLevelTimer(tech, library)
    benchmark(timer.estimate, stage, "out", "fall", inputs)


def test_successive_chords_speed(benchmark, tech):
    stage, inputs, initial = _experiment(tech)
    sim = SuccessiveChordsSimulator(stage, tech, SCOptions(
        t_stop=700e-12, dt=1e-12))
    benchmark.pedantic(sim.run, args=(inputs,),
                       kwargs={"initial": initial}, rounds=1,
                       iterations=1)


def test_qwm_speed(benchmark, tech, evaluator):
    stage, inputs, initial = _experiment(tech)
    benchmark.pedantic(evaluate_qwm,
                       args=(stage, evaluator, inputs, "out"),
                       kwargs={"initial": initial}, rounds=3,
                       iterations=1)


def test_methodology_ladder(benchmark, tech, library, evaluator):
    stage, inputs, initial = _experiment(tech)

    def ladder():
        reference = run_spice(stage, tech, inputs, 1e-12, 700e-12,
                              initial)
        d_ref = reference.delay_50("out", tech.vdd, t_input=T_SWITCH)

        est = SwitchLevelTimer(tech, library).estimate(
            stage, "out", "fall", inputs)
        sc = SuccessiveChordsSimulator(stage, tech, SCOptions(
            t_stop=700e-12, dt=1e-12)).run(inputs, initial=initial)
        d_sc = sc.delay_50("out", tech.vdd, t_input=T_SWITCH)
        sol = evaluate_qwm(stage, evaluator, inputs, "out",
                           initial=initial)
        d_qwm = sol.delay(t_input=T_SWITCH)
        return reference, d_ref, est, sc, d_sc, sol, d_qwm

    reference, d_ref, est, sc, d_sc, sol, d_qwm = run_once(benchmark,
                                                           ladder)

    def err(d):
        return abs(d - d_ref) / d_ref * 100.0

    rows = [
        ["switch-level Elmore (Crystal/IRSIM)", "device->resistor",
         f"{est.delay * 1e12:.1f} ps", f"{err(est.delay):.1f}%"],
        ["successive chords (TETA)", "tabular + integration",
         f"{d_sc * 1e12:.1f} ps", f"{err(d_sc):.1f}%"],
        ["QWM (this paper)", "tabular + K matchings",
         f"{d_qwm * 1e12:.1f} ps", f"{err(d_qwm):.1f}%"],
        ["Newton-Raphson reference (1 ps)", "golden model",
         f"{d_ref * 1e12:.1f} ps", "-"],
    ]
    save_result("baselines_ladder.txt", format_table(
        "Related-work methodology ladder on the 6-stack",
        ["engine", "model fidelity", "50% delay", "delay error"],
        rows))
    # QWM must beat switch-level on accuracy.
    assert err(d_qwm) < err(est.delay)
