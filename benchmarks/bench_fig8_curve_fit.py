"""Fig. 8: I/V curve fitting — linear (saturation) + quadratic (triode).

The paper fits, per (Vs, Vg) grid point, ``Ids = s1*Vds + s0`` in
saturation and ``Ids = t2*Vds^2 + t1*Vds + t0`` in triode, storing 7
parameters.  The benchmark regenerates the fit at a representative grid
point, saves samples + both fitted branches, reports the fit error, and
times full device characterization (the model-build cost the paper
excludes from its transient-time comparison).
"""

import numpy as np

from benchmarks.harness import format_table, run_once, save_csv, save_result
from repro.devices import characterize_device, nmos_model
from repro.devices.characterize import fit_iv_curve


def test_fig8_fit_quality(benchmark, tech):
    model = nmos_model(tech)
    w, l = 2.0 * tech.wmin, tech.lmin
    vs, vg = 0.0, tech.vdd
    vdsat = model.vdsat(w, l, vg, vs + 2.0, vs)
    vth = model.threshold(vs)
    vds = np.linspace(0.0, tech.vdd, 67)
    ids = np.array([model.ids(w, l, vg, vs + v, vs) for v in vds])
    fit = run_once(benchmark, fit_iv_curve, vds, ids, vth, vdsat)

    fitted = np.array([fit.current(v) for v in vds])
    ion = float(np.max(ids))
    rms = float(np.sqrt(np.mean((fitted - ids) ** 2))) / ion
    worst = float(np.max(np.abs(fitted - ids))) / ion

    save_csv("fig8_curve_fit.csv", ["vds", "ids_sampled", "ids_fitted"],
             [vds, ids, fitted])
    rows = [
        ["region boundary vdsat", f"{fit.vdsat:.3f} V"],
        ["saturation fit", f"Ids = {fit.s1:.3e}*Vds + {fit.s0:.3e}"],
        ["triode fit",
         f"Ids = {fit.t2:.3e}*Vds^2 + {fit.t1:.3e}*Vds + {fit.t0:.3e}"],
        ["RMS error / Ion", f"{rms * 100:.3f}%"],
        ["worst error / Ion", f"{worst * 100:.3f}%"],
        ["stored parameters", "7 (s1 s0 t2 t1 t0 vth vdsat)"],
    ]
    save_result("fig8_summary.txt", format_table(
        "Fig 8: two-piece polynomial I/V fit at (Vs=0, Vg=vdd)",
        ["quantity", "value"], rows))

    # The two-piece polynomial is the paper's scheme; against our
    # strongly velocity-saturated golden model the triode branch keeps
    # ~1% RMS (BSIM3's triode curve is closer to quadratic).  This fit
    # error is part of QWM's reported accuracy, as in the paper.
    assert rms < 0.02
    assert worst < 0.06


def test_fig8_characterization_cost(benchmark, tech):
    model = nmos_model(tech)
    grid = benchmark.pedantic(
        characterize_device, args=(model, tech),
        kwargs={"grid_step": 0.1}, rounds=1, iterations=1)
    assert grid.n_parameters == 7 * grid.vs_values.size \
        * grid.vg_values.size
