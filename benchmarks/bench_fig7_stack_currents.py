"""Fig. 7: discharge currents of a 6-NMOS stack.

The paper's key observation: "each charge/discharge current waveform
has a single peak, called critical point, coinciding with the time when
the transistor above turns on."  The benchmark regenerates the six
current waveforms from the 1 ps reference simulation, verifies the
single-peak / bottom-up ordering, and checks the peaks line up with the
QWM turn-on critical points.
"""

import numpy as np
import pytest

from benchmarks.harness import (
    T_SWITCH,
    format_table,
    run_once,
    run_spice,
    save_csv,
    save_result,
    stack_inputs,
)
from repro.circuit import builders
from repro.spice.mna import StageEquations

K = 6


@pytest.fixture(scope="module")
def stack_run(tech):
    stage = builders.nmos_stack(tech, K, widths=[1e-6] * K, load=10e-15)
    inputs = stack_inputs(tech, K)
    initial = {n.name: tech.vdd for n in stage.internal_nodes}
    result = run_spice(stage, tech, inputs, 1e-12, 700e-12, initial)
    return stage, inputs, result


def _node_currents(stage, tech, result):
    """Discharge current I_k = C_k dV_k/dt per node (C at mid-swing)."""
    eq = StageEquations(stage, tech)
    names = [f"n{i}" for i in range(1, K)] + ["out"]
    mid = np.full(eq.n, 0.5 * tech.vdd)
    caps = eq.node_capacitances(mid)
    currents = {}
    for name in names:
        v = result.voltage(name)
        dv = np.gradient(v, result.times)
        currents[name] = -caps[eq.node_index(name)] * dv
    return names, currents


def test_fig7_single_peaks_orderly(benchmark, tech, evaluator, stack_run):
    stage, inputs, result = stack_run
    names, currents = run_once(benchmark, _node_currents, stage, tech,
                               result)
    mask = result.times > T_SWITCH + 4e-12  # skip the Miller spike

    peaks = []
    for name in names:
        c = currents[name][mask]
        t = result.times[mask]
        idx = int(np.argmax(c))
        peaks.append((name, float(t[idx]), float(c[idx])))
        # Single peak: rises before, falls after (coarse check at
        # quarter/three-quarter points of the hump).
        assert c[idx] > 0
    peak_times = [p[1] for p in peaks]
    assert peak_times == sorted(peak_times)

    # Peaks coincide with the QWM turn-on instants (upper transistor
    # gate drive = threshold): compare against the QWM schedule.
    sol = evaluator.evaluate(stage, "out", "fall", inputs)
    save_csv("fig7_currents.csv",
             ["time"] + names,
             [result.times] + [currents[n] for n in names])
    rows = []
    for (name, t_peak, i_peak) in peaks:
        rows.append([name, f"{t_peak * 1e12:.1f} ps",
                     f"{i_peak * 1e6:.1f} uA"])
    rows.append(["QWM criticals",
                 " ".join(f"{t * 1e12:.1f}" for t in
                          sol.critical_times[:K + 2]), "ps"])
    save_result("fig7_summary.txt", format_table(
        "Fig 7: 6-NMOS stack discharge-current peaks",
        ["node", "peak time", "peak current"], rows))

    # All but the output peak must match a QWM critical point within a
    # few ps (the output hump peaks at the end of the cascade).
    criticals = np.asarray(sol.critical_times)
    for name, t_peak, _ in peaks[:-1]:
        nearest = float(np.min(np.abs(criticals - t_peak)))
        assert nearest < 12e-12, (name, t_peak)


def test_fig7_reference_run_cost(benchmark, tech):
    stage = builders.nmos_stack(tech, K, widths=[1e-6] * K, load=10e-15)
    inputs = stack_inputs(tech, K)
    initial = {n.name: tech.vdd for n in stage.internal_nodes}

    benchmark.pedantic(
        run_spice, args=(stage, tech, inputs, 1e-12, 700e-12, initial),
        rounds=1, iterations=1)
