"""Fig. 5: the NMOS device-model I/V surface Ids(Vd, Vs).

The paper plots the projection of the NMOS device model: how the
channel current varies with the drain and source node voltages.  The
benchmark regenerates that surface from the golden analytic model,
saves it as CSV, and times the tabular model's bulk query rate (the
operation QWM leans on).
"""

import numpy as np

from benchmarks.harness import format_table, run_once, save_csv, save_result
from repro.devices import nmos_model


def test_fig5_surface_data(benchmark, tech, library):
    model = nmos_model(tech)
    w, l = 1e-6, tech.lmin
    vg = tech.vdd

    def sweep():
        axis = np.linspace(0.0, tech.vdd, 34)
        vd_grid, vs_grid, ids_grid = [], [], []
        for vs in axis:
            for vd in axis:
                vd_grid.append(vd)
                vs_grid.append(vs)
                ids_grid.append(model.ids(w, l, vg, vd, vs))
        return vd_grid, vs_grid, ids_grid

    vd_grid, vs_grid, ids_grid = run_once(benchmark, sweep)
    path = save_csv("fig5_iv_surface.csv", ["vd", "vs", "ids"],
                    [vd_grid, vs_grid, ids_grid])

    ids_arr = np.asarray(ids_grid)
    rows = [
        ["max |Ids|", f"{np.max(np.abs(ids_arr)) * 1e3:.3f} mA"],
        ["Ids at (vd=vdd, vs=0)",
         f"{model.ids(w, l, vg, tech.vdd, 0.0) * 1e3:.3f} mA"],
        ["Ids at (vd=0, vs=vdd)",
         f"{model.ids(w, l, vg, 0.0, tech.vdd) * 1e3:.3f} mA"],
        ["samples", str(len(ids_grid))],
        ["csv", path],
    ]
    save_result("fig5_summary.txt", format_table(
        "Fig 5: NMOS I/V surface (vg = vdd)", ["quantity", "value"],
        rows))
    # Antisymmetry of the surface under vd/vs exchange.
    a = model.ids(w, l, vg, 2.0, 1.0)
    b = model.ids(w, l, vg, 1.0, 2.0)
    assert b == -a


def test_fig5_table_query_rate(benchmark, tech, library):
    table = library.get("n")
    rng = np.random.default_rng(0)
    points = rng.uniform(0.0, tech.vdd, size=(200, 3))

    def bulk_query():
        total = 0.0
        for vg, va, vb in points:
            total += table.iv(1e-6, tech.lmin, vg, va, vb)
        return total

    benchmark(bulk_query)
