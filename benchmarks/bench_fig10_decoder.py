"""Fig. 10: memory decoder tree with long wires (AWE π macromodels).

The paper's decoder tree connects pass transistors through wires whose
length doubles per level; QWM first reduces each wire to a π macro via
AWE/moment matching.  Paper numbers: 6x speedup over the 10 ps
reference and 96.44% accuracy.  Shape to reproduce: QWM wins against
both step sizes, accuracy stays above ~90%, and the wire terminals show
the paper's "closely spaced waveform pairs".
"""

import numpy as np
import pytest

from benchmarks.harness import (
    T_SWITCH,
    evaluate_qwm,
    format_table,
    run_once,
    run_spice,
    save_csv,
    save_result,
)
from repro.circuit import builders
from repro.spice import ConstantSource, StepSource

LEVELS = 3
SELECTED_LEAF = "t111"


def _experiment(tech):
    stage = builders.decoder_tree(tech, levels=LEVELS,
                                  unit_wire_length=60e-6)
    inputs = {"phi": StepSource(0.0, tech.vdd, T_SWITCH)}
    for j in range(LEVELS):
        inputs[f"A{j}"] = ConstantSource(tech.vdd)
        inputs[f"A{j}b"] = ConstantSource(0.0)
    initial = {n.name: tech.vdd for n in stage.internal_nodes}
    return stage, inputs, initial


@pytest.fixture(scope="module")
def runs(tech, evaluator):
    stage, inputs, initial = _experiment(tech)
    ref_1ps = run_spice(stage, tech, inputs, 1e-12, 1200e-12, initial)
    ref_10ps = run_spice(stage, tech, inputs, 10e-12, 1200e-12, initial)
    solution = evaluator.evaluate(stage, SELECTED_LEAF, "fall", inputs,
                                  initial=initial)
    return stage, ref_1ps, ref_10ps, solution


def test_fig10_accuracy_and_speedup(benchmark, tech, runs):
    stage, ref_1ps, ref_10ps, solution = runs
    run_once(benchmark, lambda: None)
    d_ref = ref_1ps.delay_50(SELECTED_LEAF, tech.vdd, t_input=T_SWITCH,
                             direction="fall")
    d_qwm = solution.delay(t_input=T_SWITCH)
    error = abs(d_qwm - d_ref) / d_ref * 100.0
    speed_1ps = ref_1ps.stats.wall_time / solution.stats.wall_time
    speed_10ps = ref_10ps.stats.wall_time / solution.stats.wall_time

    # Wire-terminal waveform pairs (the paper's closely spaced curves):
    # each pi macro separates a transistor drain from the next tree node.
    path_nodes = solution.path.node_names
    columns = [ref_1ps.times]
    header = ["time"]
    for name in path_nodes:
        columns.append(ref_1ps.voltage(name))
        header.append(f"{name}_spice")
        columns.append(solution.waveforms[name].sample(ref_1ps.times))
        header.append(f"{name}_qwm")
    save_csv("fig10_decoder.csv", header, columns)

    # The wire ends move together: max gap across each pi macro stays
    # below half a volt once conducting.
    pairs = []
    for device, outer in zip(solution.path.devices, path_nodes):
        if device.kind.value == "wire":
            inner_idx = path_nodes.index(outer) - 1
            inner = path_nodes[inner_idx]
            mask = ref_1ps.times > T_SWITCH
            gap = float(np.max(np.abs(
                ref_1ps.voltage(inner)[mask]
                - ref_1ps.voltage(outer)[mask])))
            pairs.append([f"{inner} / {outer}", f"{gap:.3f} V"])

    rows = [
        ["levels / leaves", f"{LEVELS} / {2 ** LEVELS}"],
        ["path devices (K)", str(solution.path.length)],
        ["pi wire macros",
         str(sum(1 for d in solution.path.devices
                 if d.kind.value == "wire"))],
        ["reference delay", f"{d_ref * 1e12:.1f} ps"],
        ["QWM delay", f"{d_qwm * 1e12:.1f} ps"],
        ["accuracy", f"{100.0 - error:.2f}% (paper: 96.44%)"],
        ["speedup vs 1ps", f"{speed_1ps:.1f}x"],
        ["speedup vs 10ps", f"{speed_10ps:.1f}x (paper: 6x)"],
    ] + pairs
    save_result("fig10_summary.txt", format_table(
        "Fig 10: decoder tree with AWE pi wire macromodels",
        ["quantity", "value"], rows))

    assert 100.0 - error > 90.0
    assert speed_1ps > 3.0


def test_fig10_qwm_cost(benchmark, tech, evaluator):
    stage, inputs, initial = _experiment(tech)
    benchmark.pedantic(
        evaluate_qwm,
        args=(stage, evaluator, inputs, SELECTED_LEAF),
        kwargs={"initial": initial}, rounds=3, iterations=1)
