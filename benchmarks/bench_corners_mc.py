"""Sign-off workloads QWM's speed enables: corners and Monte Carlo.

Neither appears in the paper's evaluation, but both are the practical
payoff of a stage evaluator that costs K Newton solves: a 5-corner
re-characterize-and-retime pass and a 200-sample width-variation Monte
Carlo each finish in seconds where a SPICE-in-the-loop flow would take
minutes to hours.
"""

import pytest

from benchmarks.harness import (
    T_SWITCH,
    format_table,
    run_once,
    save_result,
    stack_inputs,
)
from repro.analysis import MonteCarloTiming
from repro.circuit import builders
from repro.core import WaveformEvaluator
from repro.devices import TableModelLibrary, all_corners, corner_spread


def test_corner_sweep(benchmark, tech):
    stage_for = lambda t: builders.nmos_stack(
        t, 6, widths=[1e-6] * 6, load=10e-15)

    def sweep():
        delays = {}
        for name, corner_tech in all_corners(tech).items():
            library = TableModelLibrary(corner_tech, grid_step=0.15)
            evaluator = WaveformEvaluator(corner_tech, library=library)
            stage = stage_for(corner_tech)
            sol = evaluator.evaluate(stage, "out", "fall",
                                     stack_inputs(corner_tech, 6))
            delays[name] = sol.delay(t_input=T_SWITCH)
        return delays

    delays = run_once(benchmark, sweep)
    slowest, fastest, spread = corner_spread(delays)
    rows = [[name, f"{delays[name] * 1e12:.2f} ps"]
            for name in sorted(delays)]
    rows.append(["spread", f"{spread * 100:.1f}% "
                 f"({fastest} -> {slowest})"])
    save_result("corners.txt", format_table(
        "Process-corner sweep: 6-stack fall delay (QWM, "
        "re-characterized per corner)",
        ["corner", "delay"], rows))
    assert delays["ff"] < delays["tt"] < delays["ss"]
    # NMOS-only path: the skewed corners split by their N letter.
    assert delays["fs"] < delays["tt"] < delays["sf"]


def test_monte_carlo_width_variation(benchmark, tech, evaluator,
                                     master_seed):
    stage = builders.nmos_stack(tech, 6, widths=[1e-6] * 6, load=10e-15)
    inputs = stack_inputs(tech, 6)
    mc = MonteCarloTiming(evaluator, width_sigma=0.05, seed=master_seed)

    dist = benchmark.pedantic(
        mc.run, args=(stage, "out", "fall", inputs),
        kwargs={"n_samples": 200, "t_input": T_SWITCH},
        rounds=1, iterations=1)

    save_result("monte_carlo.txt", format_table(
        "Monte Carlo: 200 width-variation samples (sigma_W = 5%), "
        "6-stack fall delay",
        ["quantity", "value"],
        [
            ["nominal", f"{dist.nominal * 1e12:.2f} ps"],
            ["mean", f"{dist.mean * 1e12:.2f} ps"],
            ["sigma", f"{dist.std * 1e12:.2f} ps "
             f"({dist.sigma_over_mean * 100:.2f}% of mean)"],
            ["p99.7 (sign-off)", f"{dist.quantile(0.997) * 1e12:.2f} ps"],
            ["samples", str(dist.samples.size)],
        ]))
    assert dist.mean == pytest.approx(dist.nominal, rel=0.05)
    assert 0.0 < dist.sigma_over_mean < 0.10
