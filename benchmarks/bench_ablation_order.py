"""Ablation B: waveform model order and critical-point density.

The paper closes with "more sophisticated waveform model and critical
point model may help further improve speed and accuracy".  This bench
sweeps the two knobs the engine exposes:

* ``waveform_order``: 1 = piecewise-linear voltage (constant current
  per region), 2 = the paper's piecewise-quadratic model;
* ``cascade_substeps``: extra matching points inside each turn-on
  region.

Reported per configuration: region count, Newton iterations, wall time,
delay error and waveform RMS against the 1 ps reference.
"""

import numpy as np
import pytest

from benchmarks.harness import (
    T_SWITCH,
    format_table,
    run_once,
    run_spice,
    save_result,
    stack_inputs,
)
from repro.analysis.accuracy import waveform_rms_error
from repro.circuit import builders
from repro.core import QWMOptions, WaveformEvaluator

K = 6

CONFIGS = [
    ("linear, 1 substep", 1, 1),
    ("linear, 2 substeps", 1, 2),
    ("quadratic, 1 substep", 2, 1),
    ("quadratic, 2 substeps", 2, 2),
    ("quadratic, 3 substeps", 2, 3),
]


@pytest.fixture(scope="module")
def reference(tech):
    stage = builders.nmos_stack(tech, K, widths=[1e-6] * K, load=10e-15)
    inputs = stack_inputs(tech, K)
    initial = {n.name: tech.vdd for n in stage.internal_nodes}
    result = run_spice(stage, tech, inputs, 1e-12, 700e-12, initial)
    return stage, inputs, initial, result


@pytest.mark.parametrize("label,order,substeps", CONFIGS,
                         ids=[c[0].replace(" ", "") for c in CONFIGS])
def test_ablation_config(benchmark, tech, library, reference, label,
                         order, substeps):
    stage, inputs, initial, ref = reference
    evaluator = WaveformEvaluator(
        tech, library=library,
        options=QWMOptions(waveform_order=order,
                           cascade_substeps=substeps))

    sol = benchmark.pedantic(
        evaluator.evaluate, args=(stage, "out", "fall", inputs),
        kwargs={"initial": initial}, rounds=3, iterations=1)

    d_ref = ref.delay_50("out", tech.vdd, t_input=T_SWITCH)
    d_qwm = sol.delay(t_input=T_SWITCH)
    err = abs(d_qwm - d_ref) / d_ref * 100.0
    rms = waveform_rms_error(sol.waveforms["out"], ref, "out",
                             normalize=tech.vdd)
    benchmark.extra_info.update({
        "regions": sol.stats.steps,
        "newton_iterations": sol.stats.newton_iterations,
        "delay_error_percent": err,
        "waveform_rms_over_vdd": rms,
    })
    _RESULTS.append([label, str(sol.stats.steps),
                     str(sol.stats.newton_iterations),
                     f"{err:.2f}%", f"{rms * 100:.2f}%"])
    assert err < 10.0


_RESULTS = []


def test_ablation_report(benchmark):
    if not _RESULTS:
        pytest.skip("no configurations collected")
    run_once(benchmark, save_result, "ablation_order.txt", format_table(
        "Ablation B: waveform order / matching-point density (6-stack)",
        ["configuration", "regions", "NR iters", "delay err",
         "waveform RMS/vdd"],
        _RESULTS))
