"""Table I: QWM vs the SPICE reference for minimum-sized logic gates.

Paper row set: inv, nand2, nand3, nand4.  Reported per circuit: the
reference transient time at 1 ps and 10 ps steps, the QWM time, the two
speedups, and the delay error against the 1 ps reference.  Paper
numbers (SUN Blade 100): nand average speedup >35x @1ps / ~3.7x @10ps,
error ~1.14%; the inverter is an outlier in the paper (626x) thanks to
a lucky initial guess.  The *shape* to reproduce: QWM beats the 1 ps
reference by a large factor, the 10 ps reference by a small one, with
single-digit error.
"""

import pytest

from benchmarks.harness import (
    T_SWITCH,
    comparison_table,
    compare_engines,
    evaluate_qwm,
    gate_inputs,
    run_once,
    save_result,
)
from repro.circuit import builders
from repro.spice import StepSource

_ROWS = []

GATES = [
    ("inv", 1),
    ("nand2", 2),
    ("nand3", 3),
    ("nand4", 4),
]


def _build(tech, name, n):
    if name == "inv":
        stage = builders.inverter(tech)
        inputs = {"a": StepSource(0.0, tech.vdd, T_SWITCH)}
    else:
        stage = builders.nand_gate(tech, n)
        inputs = gate_inputs(tech, n)
    t_stop = 150e-12 + 80e-12 * n
    return stage, inputs, t_stop


@pytest.mark.parametrize("name,n", GATES, ids=[g[0] for g in GATES])
def test_table1_gate(benchmark, tech, evaluator, name, n):
    stage, inputs, t_stop = _build(tech, name, n)
    precharge = "degraded" if name != "inv" else "full"

    benchmark.pedantic(
        evaluate_qwm, args=(stage, evaluator, inputs, "out"),
        kwargs={"precharge": precharge}, rounds=3, iterations=1)

    row = compare_engines(stage, tech, evaluator, inputs, "out",
                          t_stop, precharge=precharge, name=name)
    _ROWS.append(row)
    benchmark.extra_info["speedup_1ps"] = row.speedup_1ps
    benchmark.extra_info["speedup_10ps"] = row.speedup_10ps
    benchmark.extra_info["delay_error_percent"] = row.error_percent

    # Shape assertions (see DESIGN.md section 7).
    assert row.speedup_1ps > 3.0
    assert row.error_percent < 8.0


def test_table1_report(benchmark, tech):
    if not _ROWS:
        pytest.skip("gate rows not collected")
    run_once(benchmark, save_result, "table1_gates.txt", comparison_table(
        "Table I: QWM vs SPICE reference, minimum-sized gates", _ROWS))
