"""Parallel STA engine: backend/worker sweep and cache effectiveness.

Two questions, answered on the 3-bit decoder (the repo's largest
levelized design):

1. What does the worker pool buy?  Serial vs thread/process pools at
   1/2/4 workers.  Note the honest caveat: this container exposes a
   single CPU core (``os.cpu_count() == 1``), so no wall-clock speedup
   is *possible* here — the sweep instead verifies the dispatch
   overhead stays small and records per-backend timings for machines
   with real cores.  The arrivals are asserted bit-identical across
   every configuration, which is the property the engine actually
   guarantees.

2. What does the stage-result cache buy?  The decoder instantiates the
   same inverter/NAND shapes many times; canonical-form keying lets one
   solved arc serve every isomorphic stage, and a warm cache serves the
   whole run without a single QWM region solve.
"""

import os
import time

import pytest

from benchmarks.harness import format_table, save_metrics, save_result
from repro.analysis import StaticTimingAnalyzer
from repro.analysis.parallel import ExecutionConfig, StageResultCache
from repro.circuit import builders, extract_stages

DECODER_BITS = 3


def _graph(tech):
    return extract_stages(builders.decoder_netlist(tech,
                                                   bits=DECODER_BITS),
                          tech=tech)


def _analyze(tech, library, graph, execution=None, cache=None):
    analyzer = StaticTimingAnalyzer(tech, library=library,
                                    execution=execution, cache=cache)
    start = time.perf_counter()
    result = analyzer.analyze(graph)
    return result, time.perf_counter() - start


def test_backend_sweep_identical_arrivals(benchmark, tech, library):
    graph = _graph(tech)
    reference, t_serial = _analyze(tech, library, graph)

    configs = [("serial x1", ExecutionConfig())]
    for backend in ("thread", "process"):
        for workers in (2, 4):
            configs.append((f"{backend} x{workers}",
                            ExecutionConfig(workers=workers,
                                            backend=backend)))

    rows = [["plain serial", f"{t_serial * 1e3:.1f} ms", "-", "ref"]]
    timings = {}

    def sweep():
        for label, config in configs:
            result, elapsed = _analyze(tech, library, graph,
                                       execution=config)
            timings[label] = (result, elapsed)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for label, (result, elapsed) in timings.items():
        identical = all(
            result.arrivals[e].time == a.time
            for e, a in reference.arrivals.items())
        assert identical, f"{label} diverged from serial arrivals"
        rows.append([label, f"{elapsed * 1e3:.1f} ms",
                     f"{t_serial / elapsed:.2f}x", "identical"])

    cores = os.cpu_count() or 1
    note = (f"(machine exposes {cores} CPU core(s); speedup > 1 is "
            f"not expected below 2 cores — this sweep verifies "
            f"dispatch overhead and bit-identical arrivals)")
    save_result("parallel_backends.txt", format_table(
        f"Parallel STA backends: {DECODER_BITS}-bit decoder, "
        f"{len(graph.stages)} stages {note}",
        ["configuration", "wall", "vs serial", "arrivals"], rows))
    save_metrics("BENCH_parallel.json")


def test_cache_reuse_and_warm_run(benchmark, tech, library):
    graph = _graph(tech)
    cache = StageResultCache()
    execution = ExecutionConfig(cache=True)

    cold, t_cold = _analyze(tech, library, graph, execution=execution,
                            cache=cache)
    cold_hits, cold_misses = cache.hits, cache.misses
    cold_steps = cold.stats.steps
    assert cold_steps > 0

    def warm():
        return _analyze(tech, library, graph, execution=execution,
                        cache=cache)

    warm_result, t_warm = benchmark.pedantic(warm, rounds=1,
                                             iterations=1)
    warm_steps = warm_result.stats.steps

    identical = all(
        warm_result.arrivals[e].time == a.time
        for e, a in cold.arrivals.items())
    assert identical, "warm-cache arrivals diverged"
    # The whole point: a warm cache answers every arc without solving.
    assert warm_steps == 0
    # >= 10x fewer QWM solves on the warm rerun (it is in fact 0).
    assert warm_steps * 10 <= cold_steps

    arcs = cold_hits + cold_misses
    rows = [
        ["stages", str(len(graph.stages)), ""],
        ["arcs looked up (cold)", str(arcs), ""],
        ["cold misses (QWM solved)", str(cold_misses),
         f"{t_cold * 1e3:.1f} ms"],
        ["cold hits (isomorphic reuse)", str(cold_hits), ""],
        ["cold QWM regions", str(cold_steps), ""],
        ["warm QWM regions", str(warm_steps),
         f"{t_warm * 1e3:.1f} ms"],
        ["warm speedup", f"{t_cold / max(t_warm, 1e-9):.1f}x", ""],
    ]
    save_result("parallel_cache.txt", format_table(
        f"Stage-result cache: {DECODER_BITS}-bit decoder "
        f"(canonical-form keying)",
        ["quantity", "value", "wall"], rows))
    assert cold_hits > 0, "decoder should reuse isomorphic stages"
