"""Ablation A: Thomas + Sherman-Morrison vs dense LU (paper IV-B).

"We observe tridiagonal method gives almost twice speedup over LU
decomposition or other traditional linear system solvers."  This bench
times both linear-solve paths on synthetic bordered-tridiagonal systems
of QWM shape, and end-to-end on the QWM engine itself.
"""

import numpy as np
import pytest

from benchmarks.harness import format_table, run_once, save_result, \
    stack_inputs
from repro.circuit import builders
from repro.core import QWMOptions, WaveformEvaluator
from repro.linalg import TridiagonalMatrix, solve_bordered_tridiagonal


def _system(rng, n):
    matrix = TridiagonalMatrix(
        lower=rng.uniform(-1, 1, n - 1),
        diag=rng.uniform(3, 4, n),
        upper=rng.uniform(-1, 1, n - 1))
    extra = rng.uniform(-0.5, 0.5, n)
    rhs = rng.uniform(-1, 1, n)
    return matrix, extra, rhs


@pytest.mark.parametrize("n", [8, 16, 32, 64])
def test_structured_solve(benchmark, n):
    rng = np.random.default_rng(n)
    systems = [_system(rng, n) for _ in range(64)]

    def structured():
        total = 0.0
        for matrix, extra, rhs in systems:
            total += solve_bordered_tridiagonal(matrix, extra, rhs)[0]
        return total

    benchmark(structured)


@pytest.mark.parametrize("n", [8, 16, 32, 64])
def test_dense_solve(benchmark, n):
    rng = np.random.default_rng(n)
    systems = [_system(rng, n) for _ in range(64)]
    dense_systems = []
    for matrix, extra, rhs in systems:
        dense = matrix.to_dense()
        dense[:, -1] += extra
        dense_systems.append((dense, rhs))

    def dense_lu():
        total = 0.0
        for dense, rhs in dense_systems:
            total += np.linalg.solve(dense, rhs)[0]
        return total

    benchmark(dense_lu)


def test_end_to_end_solver_choice(benchmark, tech, library):
    """QWM on a 10-stack with and without the structured solver."""
    import time

    stage = builders.nmos_stack(tech, 10, widths=[1e-6] * 10,
                                load=10e-15)
    inputs = stack_inputs(tech, 10)
    initial = {n.name: tech.vdd for n in stage.internal_nodes}

    def run(use_sm):
        ev = WaveformEvaluator(
            tech, library=library,
            options=QWMOptions(use_sherman_morrison=use_sm))
        t0 = time.perf_counter()
        sol = ev.evaluate(stage, "out", "fall", inputs, initial=initial)
        return time.perf_counter() - t0, sol.delay()

    def compare():
        t_sm, d_sm = run(True)
        t_lu, d_lu = run(False)
        return t_sm, t_lu, d_sm, d_lu

    t_sm, t_lu, d_sm, d_lu = run_once(benchmark, compare)
    save_result("ablation_solver.txt", format_table(
        "Ablation A: structured vs dense linear solves inside QWM (K=10)",
        ["solver", "QWM wall time", "delay"],
        [
            ["Thomas + Sherman-Morrison", f"{t_sm * 1e3:.2f} ms",
             f"{d_sm * 1e12:.2f} ps"],
            ["dense LU", f"{t_lu * 1e3:.2f} ms",
             f"{d_lu * 1e12:.2f} ps"],
            ["ratio", f"{t_lu / t_sm:.2f}x (paper: ~2x at scale)", ""],
        ]))
    # Identical mathematics -> identical answers.
    assert d_sm == pytest.approx(d_lu, rel=1e-6)
