"""Ablation C: reference step-size sweep.

The paper compares against HSPICE at 1 ps and 10 ps because "the
user-specified step size has an impact on the Hspice simulation time".
This bench sweeps the reference engine's step size on the 6-stack,
showing the linear cost/step trade and the delay drift that makes the
1 ps run the accuracy anchor — the context for QWM's constant cost.
"""

import pytest

from benchmarks.harness import (
    T_SWITCH,
    format_table,
    run_once,
    run_spice,
    save_result,
    stack_inputs,
)
from repro.circuit import builders

K = 6
STEPS = [0.5e-12, 1e-12, 2e-12, 5e-12, 10e-12]

_ROWS = []


def _experiment(tech):
    stage = builders.nmos_stack(tech, K, widths=[1e-6] * K, load=10e-15)
    inputs = stack_inputs(tech, K)
    initial = {n.name: tech.vdd for n in stage.internal_nodes}
    return stage, inputs, initial


@pytest.mark.parametrize("dt", STEPS,
                         ids=[f"{dt * 1e12:g}ps" for dt in STEPS])
def test_stepsize(benchmark, tech, dt):
    stage, inputs, initial = _experiment(tech)
    result = benchmark.pedantic(
        run_spice, args=(stage, tech, inputs, dt, 700e-12, initial),
        rounds=1, iterations=1)
    delay = result.delay_50("out", tech.vdd, t_input=T_SWITCH)
    _ROWS.append([f"{dt * 1e12:g} ps", str(result.stats.steps),
                  f"{result.stats.wall_time:.4f} s",
                  f"{delay * 1e12:.2f} ps"])
    benchmark.extra_info["delay_ps"] = delay * 1e12


def test_stepsize_report(benchmark):
    if not _ROWS:
        pytest.skip("no step sizes collected")
    run_once(benchmark, save_result, "ablation_stepsize.txt",
             format_table(
                 "Ablation C: reference engine step-size sweep (6-stack)",
                 ["step", "steps", "transient time", "50% delay"],
                 _ROWS))
