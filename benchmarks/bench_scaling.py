"""Complexity scaling: QWM cost is linear in K (paper Section I).

"We achieve fast simulation speed ... the circuit only needs to be
solved as a system of algebraic equations at K critical points, where K
is the number of transistors."  This bench sweeps stack length K = 2..12
and records QWM's region count, Newton iterations and table queries —
all should grow linearly in K — against the reference engine's cost,
which grows with the discharge window (roughly quadratic in K for a
stack, since both the step count and the matrix size grow).
"""

import numpy as np
import pytest

from benchmarks.harness import (
    T_SWITCH,
    evaluate_qwm,
    format_table,
    run_once,
    run_spice,
    save_result,
    stack_inputs,
)
from repro.circuit import builders

LENGTHS = [2, 4, 6, 8, 10, 12]

_ROWS = []


def _experiment(tech, k):
    stage = builders.nmos_stack(tech, k, widths=[1e-6] * k, load=10e-15)
    inputs = stack_inputs(tech, k)
    initial = {n.name: tech.vdd for n in stage.internal_nodes}
    t_stop = 120e-12 + 130e-12 * k
    return stage, inputs, initial, t_stop


@pytest.mark.parametrize("k", LENGTHS, ids=[f"K{k}" for k in LENGTHS])
def test_scaling_point(benchmark, tech, evaluator, k):
    stage, inputs, initial, t_stop = _experiment(tech, k)
    sol = benchmark.pedantic(
        evaluate_qwm, args=(stage, evaluator, inputs, "out"),
        kwargs={"initial": initial}, rounds=3, iterations=1)
    ref = run_spice(stage, tech, inputs, 1e-12, t_stop, initial)
    _ROWS.append((k, sol.stats.steps, sol.stats.newton_iterations,
                  sol.stats.device_evaluations, sol.stats.wall_time,
                  ref.stats.steps, ref.stats.device_evaluations,
                  ref.stats.wall_time))
    benchmark.extra_info["regions"] = sol.stats.steps
    benchmark.extra_info["table_queries"] = sol.stats.device_evaluations


def test_scaling_report(benchmark):
    if len(_ROWS) < 3:
        pytest.skip("scaling points not collected")

    def report():
        rows = [[str(k), str(regions), str(nr), str(queries),
                 f"{wall * 1e3:.1f} ms", str(ref_steps),
                 str(ref_evals), f"{ref_wall * 1e3:.1f} ms"]
                for (k, regions, nr, queries, wall, ref_steps,
                     ref_evals, ref_wall) in _ROWS]
        save_result("scaling.txt", format_table(
            "Scaling with stack length K (QWM linear, reference "
            "~quadratic)",
            ["K", "QWM regions", "QWM NR", "QWM queries", "QWM time",
             "ref steps", "ref evals", "ref time"], rows))

    run_once(benchmark, report)
    # Linearity check: regions per K stays within a band across the
    # sweep (regions = cascade substeps * (K-1) + milestones).
    ks = np.array([r[0] for r in _ROWS], dtype=float)
    regions = np.array([r[1] for r in _ROWS], dtype=float)
    slope, intercept = np.polyfit(ks, regions, 1)
    predicted = slope * ks + intercept
    assert np.all(np.abs(regions - predicted) <= 3)
    # Reference device evaluations grow superlinearly in K.
    ref_evals = np.array([r[6] for r in _ROWS], dtype=float)
    assert ref_evals[-1] / ref_evals[0] > (ks[-1] / ks[0]) ** 1.5
