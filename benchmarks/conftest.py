"""Benchmark fixtures: shared characterized technology + result sink."""

import pytest

from repro.core import WaveformEvaluator
from repro.devices import CMOSP35, TableModelLibrary


def pytest_addoption(parser):
    parser.addoption(
        "--seed", type=int, default=0,
        help="master RNG seed for every randomized benchmark "
             "(Monte Carlo, random stacks); one integer reproduces "
             "the whole run")


@pytest.fixture(scope="session")
def master_seed(request):
    return int(request.config.getoption("--seed"))


@pytest.fixture(scope="session")
def tech():
    return CMOSP35


@pytest.fixture(scope="session")
def library(tech):
    lib = TableModelLibrary(tech)
    lib.get("n")
    lib.get("p")
    return lib


@pytest.fixture(scope="session")
def evaluator(tech, library):
    return WaveformEvaluator(tech, library=library)
