"""Benchmark fixtures: shared characterized technology + result sink."""

import pytest

from repro.core import WaveformEvaluator
from repro.devices import CMOSP35, TableModelLibrary


@pytest.fixture(scope="session")
def tech():
    return CMOSP35


@pytest.fixture(scope="session")
def library(tech):
    lib = TableModelLibrary(tech)
    lib.get("n")
    lib.get("p")
    return lib


@pytest.fixture(scope="session")
def evaluator(tech, library):
    return WaveformEvaluator(tech, library=library)
