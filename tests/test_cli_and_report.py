"""Tests for the timing reports and the CLI."""

import pytest

from repro.analysis import IncrementalTimer
from repro.analysis.report import (
    arrival_report,
    corner_report,
    critical_path_report,
    design_summary,
)
from repro.circuit import extract_stages
from repro.cli import main, parse_source_spec
from repro.io import parse_spice_netlist
from repro.spice import ConstantSource, RampSource, StepSource

CHAIN_DECK = """
* two inverters
Mp0 n0 a VDD VDD pmos W=2u L=0.35u
Mn0 n0 a 0 0 nmos W=1u L=0.35u
Mp1 y n0 VDD VDD pmos W=2u L=0.35u
Mn1 y n0 0 0 nmos W=1u L=0.35u
Cy y 0 5f
.input a
.output y
.end
"""

INV_DECK = """
Mp out a VDD VDD pmos W=2u L=0.35u
Mn out a 0 0 nmos W=1u L=0.35u
Cout out 0 5f
.input a
.output out
"""


@pytest.fixture(scope="module")
def sta_result(tech, library):
    netlist = parse_spice_netlist(CHAIN_DECK, tech, "chain")
    graph = extract_stages(netlist, tech=tech)
    timer = IncrementalTimer(tech, graph, library=library)
    return graph, timer.analyze()


class TestReports:
    def test_arrival_report_lists_events(self, sta_result):
        _, result = sta_result
        text = arrival_report(result)
        assert "y" in text and "rise" in text
        assert "primary input" in text

    def test_arrival_report_limit(self, sta_result):
        _, result = sta_result
        text = arrival_report(result, limit=2)
        # header(3) + 2 rows
        assert len(text.splitlines()) == 5

    def test_critical_path_sums(self, sta_result):
        _, result = sta_result
        text = critical_path_report(result)
        assert "data arrival" in text
        assert f"{result.worst.time * 1e12:9.2f} ps" in text

    def test_slack_met_and_violated(self, sta_result):
        _, result = sta_result
        met = critical_path_report(result, required=1e-9)
        assert "MET" in met
        violated = critical_path_report(result, required=1e-12)
        assert "VIOLATED" in violated

    def test_corner_report(self):
        text = corner_report({"tt": 100e-12, "ss": 130e-12,
                              "ff": 80e-12})
        assert "slowest" in text and "fastest" in text
        assert "62.5%" in text  # (130-80)/80

    def test_design_summary(self, sta_result):
        graph, result = sta_result
        text = design_summary(graph, result)
        assert "2 logic stages" in text
        assert "4 transistors" in text

    def test_design_summary_reports_qwm_cost(self, sta_result):
        graph, result = sta_result
        stats = result.stats
        assert stats.steps > 0
        assert stats.newton_iterations >= stats.steps
        assert stats.device_evaluations > 0
        text = design_summary(graph, result)
        assert "QWM cost" in text
        assert f"{stats.steps} regions" in text
        assert f"{stats.newton_iterations} Newton iterations" in text


class TestSourceSpec:
    def test_dc(self):
        name, src = parse_source_spec("a=dc:3.3")
        assert name == "a"
        assert isinstance(src, ConstantSource)
        assert src.value(0) == pytest.approx(3.3)

    def test_step_with_suffixes(self):
        _, src = parse_source_spec("x=step:0:3.3:20p")
        assert isinstance(src, StepSource)
        assert src.value(19e-12) == 0.0
        assert src.value(21e-12) == pytest.approx(3.3)

    def test_ramp(self):
        _, src = parse_source_spec("x=ramp:0:3.3:10p:40p")
        assert isinstance(src, RampSource)
        assert src.value(30e-12) == pytest.approx(3.3 * 0.5)

    @pytest.mark.parametrize("bad", ["noequals", "a=step:1", "a=warp:1:2"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_source_spec(bad)


class TestCli:
    def test_sta_command(self, tmp_path, capsys):
        deck = tmp_path / "chain.sp"
        deck.write_text(CHAIN_DECK)
        code = main(["sta", str(deck), "--required", "500p"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Critical path" in out
        assert "MET" in out

    def test_sta_violated_exit_code(self, tmp_path, capsys):
        deck = tmp_path / "chain.sp"
        deck.write_text(CHAIN_DECK)
        code = main(["sta", str(deck), "--required", "1p"])
        assert code == 1

    def test_simulate_command(self, tmp_path, capsys):
        deck = tmp_path / "inv.sp"
        deck.write_text(INV_DECK)
        code = main(["simulate", str(deck),
                     "--input", "a=step:0:3.3:20p",
                     "--t-stop", "150p", "--no-plot"])
        out = capsys.readouterr().out
        assert code == 0
        assert "50% at" in out

    def test_simulate_plot(self, tmp_path, capsys):
        deck = tmp_path / "inv.sp"
        deck.write_text(INV_DECK)
        code = main(["simulate", str(deck),
                     "--input", "a=step:0:3.3:20p",
                     "--t-stop", "100p", "--width", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "legend" in out

    def test_simulate_rejects_multistage(self, tmp_path, capsys):
        deck = tmp_path / "chain.sp"
        deck.write_text(CHAIN_DECK)
        code = main(["simulate", str(deck), "--no-plot"])
        assert code == 2
        assert "single-stage" in capsys.readouterr().err

    def test_missing_deck(self, capsys):
        code = main(["sta", "/nonexistent/deck.sp"])
        assert code == 2

    def test_characterize_command(self, capsys):
        code = main(["characterize", "--polarity", "n",
                     "--grid-step", "0.8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "n-table" in out
        assert "Ion(n)" in out


class TestCliStats:
    """The ``repro stats`` cost-breakdown command."""

    ARGS = ["stats", "--circuit", "nand2", "--grid-step", "0.4"]

    def test_text_breakdown_and_tree(self, capsys):
        code = main(self.ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "QWM cost breakdown: nand2" in out
        assert "regions solved" in out
        assert "newton iterations" in out
        assert "/ region" in out
        assert "sherman-morrison" in out
        assert "wall-time tree" in out
        assert "qwm.solve" in out
        assert "qwm.region" in out

    def test_json_document(self, capsys):
        import json as json_mod

        code = main(self.ARGS + ["--json"])
        out = capsys.readouterr().out
        assert code == 0
        document = json_mod.loads(out)
        assert document["circuit"] == "nand2"
        stats = document["stats"]
        assert stats["regions"] > 0
        assert stats["newton_iterations"] >= stats["regions"]
        assert stats["device_evaluations"] > 0
        # Cross-check: the histogram saw exactly one observation per
        # region and the device counter matches the stats field.
        metrics = document["metrics"]["metrics"]
        hist = metrics["qwm.newton.iterations"]["series"][0]
        assert hist["count"] == stats["regions"]
        evals = metrics["device.table.evaluations"]["series"][0]
        assert evals["value"] == stats["device_evaluations"]

    def test_deck_input(self, tmp_path, capsys):
        deck = tmp_path / "inv.sp"
        deck.write_text(INV_DECK)
        code = main(["stats", str(deck), "--grid-step", "0.4",
                     "--direction", "rise"])
        out = capsys.readouterr().out
        assert code == 0
        assert "QWM cost breakdown: inv.sp" in out
        assert "(switching a)" in out

    def test_rejects_unknown_input(self, capsys):
        code = main(self.ARGS + ["--input", "zz"])
        assert code == 2
        assert "unknown input" in capsys.readouterr().err

    def test_metrics_and_trace_export(self, tmp_path, capsys):
        import json as json_mod

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        code = main(["--metrics", str(metrics_path),
                     "--trace", str(trace_path)] + self.ARGS)
        capsys.readouterr()
        assert code == 0
        dump = json_mod.loads(metrics_path.read_text())
        hist = dump["metrics"]["qwm.newton.iterations"]["series"][0]
        assert hist["count"] > 0
        evals = dump["metrics"]["device.table.evaluations"]["series"][0]
        assert evals["value"] >= 1
        trace = json_mod.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "qwm.solve" in names
        # The CLI tears telemetry back down after exporting.
        from repro.obs import telemetry
        assert not telemetry().enabled
