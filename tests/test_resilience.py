"""Resilience: escalation ladder, fault injection, chaos matrix.

Covers the contract DESIGN.md §10 states: a failed stage-arc solve
degrades ``qwm → qwm-retry → spice → bounded`` instead of killing the
run, every arrival is tagged with the rung that produced it, the
verdict "unsensitizable" (None) never escalates, and each injectable
fault class is absorbed deterministically by the rung the chaos matrix
expects.
"""

import json
import os
import pickle

import pytest

from repro.analysis import StaticTimingAnalyzer
from repro.circuit import builders, extract_stages
from repro.core import QWMOptions
from repro.linalg.newton import NewtonConvergenceError
from repro.resilience import faults
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    StageTimeoutError,
)
from repro.resilience.ladder import (
    QUALITY_ORDER,
    EscalationPolicy,
    merge_quality,
    perturbed_options,
)


@pytest.fixture(scope="module")
def decoder_graph(tech):
    return extract_stages(builders.decoder_netlist(tech, bits=2),
                          tech=tech)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """Every test starts and ends without an installed fault plan."""
    faults.uninstall()
    yield
    faults.uninstall()


# ----------------------------------------------------------------------
# Fault specs and plans.
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("no_such_kind")
        with pytest.raises(ValueError):
            FaultSpec("nan_table", fraction=1.5)
        with pytest.raises(ValueError):
            FaultSpec("newton_nonconverge", nth=0)
        with pytest.raises(ValueError):
            FaultSpec("nan_table", polarity="x")

    def test_plan_json_roundtrip(self):
        plan = FaultPlan((
            FaultSpec("newton_nonconverge", stage="s0",
                      rungs=("qwm", "qwm-retry"), count=3),
            FaultSpec("nan_table", fraction=0.5, polarity="p"),
        ), seed=7)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == 7
        assert clone.specs == plan.specs

    def test_plan_pickles(self):
        plan = FaultPlan((FaultSpec("worker_crash", stage="s0"),),
                         seed=3)
        plan.note_fired(0)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.specs == plan.specs
        assert clone.fired("worker_crash") == 1

    def test_arm_counting_nth_and_count(self):
        plan = FaultPlan((FaultSpec("newton_nonconverge", nth=2),
                          FaultSpec("newton_nonconverge", count=1)))
        # nth=2: only the second gated call fires.
        assert not plan._arm(0)
        assert plan._arm(0)
        assert not plan._arm(0)
        # count=1: only the first firing applies.
        assert plan._arm(1)
        assert not plan._arm(1)
        assert plan.fired("newton_nonconverge") == 2

    def test_installed_restores_previous(self):
        outer = faults.install(FaultPlan(seed=1))
        inner = FaultPlan(seed=2)
        with faults.installed(inner):
            assert faults.active_plan() is inner
        assert faults.active_plan() is outer


class TestScopes:
    def test_scope_noop_without_plan(self):
        with faults.scope(stage="s0", rung="qwm"):
            assert faults.current_scope() == {}

    def test_scope_and_default_with_plan(self):
        with faults.installed(FaultPlan()):
            with faults.scope(stage="s0", rung="spice"):
                # A default never overrides what is already in scope,
                # but fills genuinely absent keys.
                with faults.scope_default(rung="qwm", extra=1):
                    ctx = faults.current_scope()
                    assert ctx["rung"] == "spice"
                    assert ctx["extra"] == 1
            assert faults.current_scope() == {}

    def test_newton_gate_respects_stage_and_rung(self):
        spec = FaultSpec("newton_nonconverge", stage="s0",
                         rungs=("qwm",))
        with faults.installed(FaultPlan((spec,))):
            with faults.scope(stage="other", rung="qwm"):
                assert not faults.newton_should_fail()
            with faults.scope(stage="s0", rung="spice"):
                assert not faults.newton_should_fail()
            with faults.scope(stage="s0", rung="qwm"):
                assert faults.newton_should_fail()

    def test_worker_gate_noop_in_parent(self):
        spec = FaultSpec("worker_crash", stage="s0")
        with faults.installed(FaultPlan((spec,))):
            # Not a marked worker process: must NOT crash.
            faults.worker_gate("s0")

    def test_stage_timeout_needs_arc_scope(self):
        spec = FaultSpec("stage_timeout", timeout_seconds=0.0)
        with faults.installed(FaultPlan((spec,))):
            faults.check_stage_timeout()  # no arc scope: no-op
            import time
            with faults.scope(stage="s0",
                              arc_start=time.perf_counter()):
                with pytest.raises(StageTimeoutError) as info:
                    faults.check_stage_timeout()
        assert info.value.stage == "s0"


# ----------------------------------------------------------------------
# Ladder mechanics.
# ----------------------------------------------------------------------
class TestLadderUnits:
    def test_quality_merge_is_worst_of(self):
        assert merge_quality(None, None) is None
        assert merge_quality("qwm", None) == "qwm"
        assert merge_quality("qwm", "spice") == "spice"
        assert merge_quality("bounded", "qwm-retry") == "bounded"
        # Rank order matches the documented ladder.
        assert QUALITY_ORDER == ("qwm", "qwm-retry", "spice", "bounded")

    def test_perturbed_options_relax_and_refine(self):
        base = QWMOptions()
        p1 = perturbed_options(base, 1)
        p2 = perturbed_options(base, 2)
        assert p1.cascade_substeps > base.cascade_substeps
        assert p2.cascade_substeps > p1.cascade_substeps
        assert p1.newton.abstol > base.newton.abstol
        assert p1.newton.max_iterations > base.newton.max_iterations
        assert p1.max_retries > base.max_retries

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            EscalationPolicy(qwm_retries=-1)
        with pytest.raises(ValueError):
            EscalationPolicy(stage_timeout=0.0)


class TestLadderRungs:
    """Stage-arc evaluation under injected failures, one rung at a time."""

    @pytest.fixture()
    def inverter(self, tech):
        return builders.inverter(tech)

    def _arc(self, tech, library, stage):
        sta = StaticTimingAnalyzer(tech, library=library)
        return sta.stage_arc(stage, stage.outputs[0].name, "fall",
                             list(stage.inputs)[0])

    def test_clean_arc_is_qwm(self, tech, library, inverter):
        arc = self._arc(tech, library, inverter)
        assert arc is not None and arc[2] == "qwm"

    @pytest.mark.parametrize("rungs,expected", [
        (("qwm",), "qwm-retry"),
        (("qwm", "qwm-retry"), "spice"),
        (("qwm", "qwm-retry", "spice"), "bounded"),
    ])
    def test_injected_failure_lands_on_next_rung(
            self, tech, library, inverter, rungs, expected):
        spec = FaultSpec("newton_nonconverge", stage=inverter.name,
                         rungs=rungs)
        with faults.installed(FaultPlan((spec,))):
            arc = self._arc(tech, library, inverter)
        assert arc is not None
        delay, _, quality = arc
        assert quality == expected
        assert delay > 0

    def test_spice_rung_delay_close_to_qwm(self, tech, library,
                                           inverter):
        clean = self._arc(tech, library, inverter)
        spec = FaultSpec("newton_nonconverge", stage=inverter.name,
                         rungs=("qwm", "qwm-retry"))
        with faults.installed(FaultPlan((spec,))):
            degraded = self._arc(tech, library, inverter)
        assert degraded[2] == "spice"
        # Different engine, same physics: the degraded answer is an
        # estimate, not garbage.
        assert degraded[0] == pytest.approx(clean[0], rel=0.25)

    def test_unsensitizable_arc_stays_none(self, tech, library):
        # A pure NMOS stack cannot rise; the ladder must trust the
        # "no transition" verdict and NOT escalate to an invented
        # bound.
        stack = builders.nmos_stack(tech, 2, widths=[1e-6] * 2)
        sta = StaticTimingAnalyzer(tech, library=library)
        assert sta.stage_arc(stack, "out", "rise", "g1") is None

    def test_stage_timeout_fault_degrades_to_bound(self, tech, library,
                                                   inverter):
        spec = FaultSpec("stage_timeout", stage=inverter.name,
                         timeout_seconds=0.0)
        with faults.installed(FaultPlan((spec,))):
            arc = self._arc(tech, library, inverter)
        assert arc is not None and arc[2] == "bounded"

    def test_disabled_ladder_restores_legacy_none(self, tech, library,
                                                  inverter):
        """``enabled=False`` is the pre-ladder behavior: a broken solve
        surfaces as the historical silent None arc (QWM's per-region
        fallbacks absorb the Newton failures, the waveform never
        crosses mid-rail, no rung recovers it)."""
        sta = StaticTimingAnalyzer(
            tech, library=library,
            resilience=EscalationPolicy(enabled=False))
        spec = FaultSpec("newton_nonconverge", stage=inverter.name)
        with faults.installed(FaultPlan((spec,))):
            legacy = sta.stage_arc(inverter, inverter.outputs[0].name,
                                   "fall", list(inverter.inputs)[0])
            recovered = self._arc(tech, library, inverter)
        assert legacy is None
        assert recovered is not None and recovered[2] != "qwm"


# ----------------------------------------------------------------------
# Satellite hooks: adaptive budget, dc-fallback narrowing, cache store.
# ----------------------------------------------------------------------
class TestAdaptiveBudget:
    def test_step_budget_raises_structured(self, tech):
        from repro.spice import (AdaptiveOptions,
                                 AdaptiveTransientSimulator, StepSource,
                                 TransientBudgetExceeded)

        inv = builders.inverter(tech)
        simulator = AdaptiveTransientSimulator(
            inv, tech, AdaptiveOptions(t_stop=250e-12, max_steps=5))
        with pytest.raises(TransientBudgetExceeded) as info:
            simulator.run({"a": StepSource(0.0, tech.vdd, 20e-12)})
        assert info.value.attempts >= 5
        assert info.value.t_reached < 250e-12

    def test_budget_validation(self):
        from repro.spice import AdaptiveOptions

        with pytest.raises(ValueError):
            AdaptiveOptions(max_steps=0)
        with pytest.raises(ValueError):
            AdaptiveOptions(max_wall_seconds=0.0)


class TestDcFallback:
    def _evaluate(self, tech, library):
        from repro.core import WaveformEvaluator
        from repro.spice import StepSource

        inv = builders.inverter(tech)
        evaluator = WaveformEvaluator(tech, library=library)
        return evaluator.evaluate(
            inv, "out", "fall",
            {"a": StepSource(0.0, tech.vdd, 0.0)}, precharge="dc")

    def test_numerical_dc_failure_degrades(self, tech, library,
                                           monkeypatch):
        import numpy as np

        import repro.spice.dc as dc

        def boom(*args, **kwargs):
            raise NewtonConvergenceError(
                "dc blew up", last_x=np.zeros(1),
                last_residual_norm=float("inf"))

        monkeypatch.setattr(dc, "solve_dc", boom)
        solution = self._evaluate(tech, library)
        assert solution.delay() is not None

    def test_programming_error_propagates(self, tech, library,
                                          monkeypatch):
        import repro.spice.dc as dc

        def boom(*args, **kwargs):
            raise TypeError("wrong arguments")

        monkeypatch.setattr(dc, "solve_dc", boom)
        with pytest.raises(TypeError):
            self._evaluate(tech, library)


class TestStoreHardening:
    def _store_with_entries(self, tmp_path):
        from repro.analysis.parallel import StageResultCache, arc_cache_key

        path = str(tmp_path / "store.json")
        cache = StageResultCache(path=path)
        cache.put(arc_cache_key("fp", "out", "fall", "a", None),
                  (1e-11, 2e-11, "qwm"))
        cache.put(arc_cache_key("fp", "out", "rise", "a", None), None)
        cache.save()
        return path

    def test_truncated_store_quarantined(self, tmp_path):
        from repro.analysis.parallel import StageResultCache

        path = self._store_with_entries(tmp_path)
        faults.truncate_file(path, keep_fraction=0.5)
        reloaded = StageResultCache(path=path)
        assert len(reloaded) == 0
        assert (tmp_path / "store.json.corrupt").exists()

    def test_version_mismatch_quarantined(self, tmp_path):
        """A store from another schema version cannot be trusted as
        data (its key layout may not mean what this code assumes), so
        it quarantines exactly like corrupt JSON."""
        from repro.analysis.parallel import StageResultCache

        path = self._store_with_entries(tmp_path)
        with open(path) as handle:
            document = json.load(handle)
        document["version"] = 99
        with open(path, "w") as handle:
            json.dump(document, handle)
        reloaded = StageResultCache(path=path)
        assert len(reloaded) == 0
        assert (tmp_path / "store.json.corrupt").exists()

    def test_save_merges_concurrent_writer(self, tmp_path):
        """Entries persisted by another process since our load survive
        a save (ours win on conflict)."""
        from repro.analysis.parallel import StageResultCache, arc_cache_key

        path = self._store_with_entries(tmp_path)
        other = StageResultCache(path=path)
        other.put(arc_cache_key("fp2", "out", "rise", "b", None),
                  (3e-11, 4e-11, "qwm"))
        other.save()
        merged = StageResultCache(path=path)
        assert len(merged) == 3

    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        path = self._store_with_entries(tmp_path)
        assert not os.path.exists(path + ".tmp")

    def test_intact_store_roundtrips(self, tmp_path):
        from repro.analysis.parallel import StageResultCache, arc_cache_key

        path = self._store_with_entries(tmp_path)
        reloaded = StageResultCache(path=path)
        assert len(reloaded) == 2
        hit = reloaded.get(arc_cache_key("fp", "out", "fall", "a", None))
        assert hit == (1e-11, 2e-11, "qwm")


# ----------------------------------------------------------------------
# Full-run degradation: the acceptance criterion.
# ----------------------------------------------------------------------
class TestAnalyzeDegradation:
    def test_permanent_failure_is_contained(self, tech, library,
                                            decoder_graph):
        """One permanently non-converging stage: the run completes,
        its arrivals are tagged with the absorbing rung, and every
        arrival outside its fanout is bit-identical to a clean run."""
        from repro.resilience.chaos import _fanout_nets, _leaf_stage

        clean = StaticTimingAnalyzer(tech, library=library).analyze(
            decoder_graph)
        target = _leaf_stage(decoder_graph)
        spec = FaultSpec("newton_nonconverge", stage=target,
                         rungs=("qwm", "qwm-retry"))
        with faults.installed(FaultPlan((spec,))):
            injected = StaticTimingAnalyzer(
                tech, library=library).analyze(decoder_graph)

        assert injected.worst is not None
        affected = _fanout_nets(decoder_graph, target)
        assert affected
        degraded = injected.degraded()
        assert degraded
        for event, arrival in degraded.items():
            assert event[0] in affected
            assert arrival.quality in ("spice", "bounded")
        for event, reference in clean.arrivals.items():
            if event[0] in affected:
                continue
            assert injected.arrivals[event].time == reference.time

    def test_quality_propagates_downstream(self, tech, library,
                                           decoder_graph):
        """An arrival fed by a degraded predecessor inherits (at
        least) the predecessor's rung."""
        # Target a *non*-leaf stage: the first stage that feeds
        # another stage.
        consumed = set()
        for stage in decoder_graph.stages:
            consumed.update(stage.inputs)
        target = next(s for s in sorted(decoder_graph.stages,
                                        key=lambda s: s.name)
                      if any(o.name in consumed for o in s.outputs))
        from repro.resilience.chaos import _fanout_nets

        spec = FaultSpec("newton_nonconverge", stage=target.name,
                         rungs=("qwm", "qwm-retry"))
        with faults.installed(FaultPlan((spec,))):
            result = StaticTimingAnalyzer(
                tech, library=library).analyze(decoder_graph)
        cone = _fanout_nets(decoder_graph, target.name)
        downstream = cone - {o.name for o in target.outputs}
        assert downstream
        degraded_nets = {e[0] for e in result.degraded()}
        # The fault's own outputs degrade, and at least one
        # transitively-fed net inherits the tag.
        assert {o.name for o in target.outputs} & degraded_nets
        assert downstream & degraded_nets


# ----------------------------------------------------------------------
# The chaos matrix.
# ----------------------------------------------------------------------
SERIAL_SCENARIOS = ["baseline", "newton-transient", "newton-persistent",
                    "newton-exhaustive", "stage-timeout",
                    "cache-truncate"]


class TestChaosMatrix:
    def test_serial_scenarios_absorbed(self, tech, library):
        from repro.resilience.chaos import run_matrix

        report = run_matrix(seed=0, tech=tech, library=library,
                            only=SERIAL_SCENARIOS)
        for outcome in report.outcomes:
            assert outcome.absorbed, (outcome.name, outcome.absorbed_by,
                                      outcome.error)
        assert [o.name for o in report.outcomes] == SERIAL_SCENARIOS

    def test_nan_table_absorbed_and_deterministic(self, tech, library):
        from repro.resilience.chaos import run_matrix

        first = run_matrix(seed=0, tech=tech, library=library,
                           only=["nan-table"])
        second = run_matrix(seed=0, tech=tech, library=library,
                            only=["nan-table"])
        a, b = first.outcomes[0], second.outcomes[0]
        assert a.absorbed and b.absorbed
        assert a.absorbed_by == b.absorbed_by
        assert a.degraded_events == b.degraded_events

    @pytest.mark.slow
    def test_worker_scenarios_absorbed(self, tech, library):
        from repro.resilience.chaos import run_matrix

        report = run_matrix(seed=0, tech=tech, library=library,
                            only=["worker-crash", "worker-hang"])
        for outcome in report.outcomes:
            assert outcome.absorbed, (outcome.name, outcome.absorbed_by,
                                      outcome.error)
            assert outcome.redispatches >= 1
            # Serial re-dispatch is the same arithmetic: every single
            # arrival matches the baseline bit for bit.
            assert outcome.unaffected_identical

    def test_unknown_scenario_rejected(self, tech, library):
        from repro.resilience.chaos import run_matrix

        with pytest.raises(ValueError):
            run_matrix(tech=tech, library=library, only=["nope"])

    def test_report_json_shape(self, tech, library):
        from repro.resilience.chaos import format_report, run_matrix

        report = run_matrix(seed=0, tech=tech, library=library,
                            only=["baseline"])
        document = report.to_json()
        assert document["absorbed_all"] is True
        assert document["outcomes"][0]["name"] == "baseline"
        text = format_report(report)
        assert "baseline" in text and "scenarios absorbed" in text


# ----------------------------------------------------------------------
# CLI.
# ----------------------------------------------------------------------
class TestChaosCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "worker-crash" in out and "nan-table" in out

    def test_single_scenario_json(self, tech, library, capsys,
                                  monkeypatch):
        from repro.cli import main
        import repro.resilience.chaos as chaos_mod

        # Reuse the session library (the CLI would otherwise
        # re-characterize from scratch).
        original = chaos_mod.run_matrix

        def with_library(**kwargs):
            kwargs.setdefault("tech", tech)
            kwargs.setdefault("library", library)
            return original(**kwargs)

        monkeypatch.setattr(chaos_mod, "run_matrix", with_library)
        code = main(["chaos", "--scenario", "newton-transient",
                     "--json"])
        out = capsys.readouterr().out
        assert code == 0
        document = json.loads(out)
        assert document["absorbed_all"] is True
        assert document["outcomes"][0]["absorbed_by"] == "qwm-retry"

    def test_sta_no_escalation_flag(self, tmp_path, capsys):
        from repro.cli import main

        deck = tmp_path / "inv.sp"
        deck.write_text(
            "Mp out a VDD VDD pmos W=2u L=0.35u\n"
            "Mn out a 0 0 nmos W=1u L=0.35u\n"
            "Cout out 0 5f\n"
            ".input a\n.output out\n")
        assert main(["sta", str(deck), "--no-escalation"]) == 0
        out = capsys.readouterr().out
        assert "Arrival report" in out
