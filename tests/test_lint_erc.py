"""ERC rule pack: structural checks on broken netlists and stages."""

import pytest

from repro.circuit import builders
from repro.circuit.netlist import GND_NODE, VDD_NODE, LogicStage
from repro.circuit.stage import FlatNetlist
from repro.circuit.validate import StageValidationError, validate_stage
from repro.lint import (
    LintContext,
    LintRunner,
    Severity,
    lint_netlist,
    lint_stage,
)


def make_inverter_netlist(name="inv"):
    net = FlatNetlist(name, vdd=3.3)
    net.add_pmos("Mp", gate="a", src=VDD_NODE, snk="out",
                 w=2e-6, l=0.35e-6)
    net.add_nmos("Mn", gate="a", src="out", snk=GND_NODE,
                 w=1e-6, l=0.35e-6)
    net.mark_input("a")
    net.mark_output("out")
    return net


def rules_of(report):
    return set(report.rule_ids)


class TestNetlistRules:
    def test_clean_inverter_has_no_diagnostics(self):
        report = lint_netlist(make_inverter_netlist())
        assert report.ok
        assert len(report) == 0

    def test_floating_gate(self):
        net = make_inverter_netlist()
        net.add_nmos("Mx", gate="nowhere", src="out", snk=GND_NODE,
                     w=1e-6, l=0.35e-6)
        report = lint_netlist(net)
        assert "ERC001-floating-gate" in rules_of(report)
        (diag,) = [d for d in report if d.rule.startswith("ERC001")]
        assert diag.severity is Severity.ERROR
        assert "Mx" in diag.message and "nowhere" in diag.message
        assert diag.location.element == "Mx"

    def test_gate_driven_by_other_stage_is_not_floating(self):
        net = make_inverter_netlist()
        net.add_pmos("Mp2", gate="out", src=VDD_NODE, snk="y",
                     w=2e-6, l=0.35e-6)
        net.add_nmos("Mn2", gate="out", src="y", snk=GND_NODE,
                     w=1e-6, l=0.35e-6)
        net.mark_output("y")
        assert lint_netlist(net).ok

    def test_pole_unreachable_island(self):
        net = make_inverter_netlist()
        net.add_nmos("Mi", gate="a", src="isl1", snk="isl2",
                     w=1e-6, l=0.35e-6)
        report = lint_netlist(net)
        assert "ERC003-pole-unreachable" in rules_of(report)

    def test_nonpositive_geometry(self):
        net = make_inverter_netlist()
        net.add_nmos("Mz", gate="a", src="out", snk=GND_NODE,
                     w=0.0, l=0.35e-6)
        report = lint_netlist(net)
        assert "ERC004-nonpositive-geometry" in rules_of(report)
        # Broken geometry also aborts stage extraction; that failure is
        # itself surfaced instead of crashing the lint run.
        assert "ERC008-stage-extraction" in rules_of(report)

    def test_missing_primary_outputs_is_a_warning(self):
        net = make_inverter_netlist()
        net.primary_outputs.clear()
        report = lint_netlist(net)
        # The design-level finding is a warning; the extracted stage
        # additionally errors (it really has no observable node).
        netlist_level = [d for d in report
                         if d.rule.startswith("ERC005")
                         and d.location.scope == "netlist"]
        assert netlist_level and all(
            d.severity is Severity.WARNING for d in netlist_level)
        stage_level = [d for d in report
                       if d.rule.startswith("ERC005")
                       and d.location.scope == "stage"]
        assert stage_level and all(
            d.severity is Severity.ERROR for d in stage_level)

    def test_empty_netlist(self):
        report = lint_netlist(FlatNetlist("empty", vdd=3.3))
        assert "ERC006-empty-stage" in rules_of(report)

    def test_mixed_polarity_pull_warns(self):
        net = make_inverter_netlist()
        net.add_nmos("Mup", gate="a", src=VDD_NODE, snk="out",
                     w=1e-6, l=0.35e-6)
        report = lint_netlist(net)
        warns = [d for d in report if d.rule.startswith("ERC007")]
        assert warns and warns[0].severity is Severity.WARNING
        assert "Mup" in warns[0].message


class TestStageRules:
    def test_clean_nand3_stage_has_zero_diagnostics(self, tech):
        stage = builders.nand_gate(tech, 3)
        report = lint_stage(stage, tech=tech)
        assert report.ok
        assert len(report) == 0

    def test_dangling_node(self, tech):
        stage = builders.nand_gate(tech, 2)
        stage.add_node("orphan")
        report = lint_stage(stage)
        assert "ERC002-dangling-node" in rules_of(report)

    def test_stage_island_unreachable_from_poles(self, tech):
        stage = builders.nand_gate(tech, 2)
        stage.add_nmos("Mi", src="isl1", snk="isl2", gate="a0",
                       w=1e-6, l=tech.lmin)
        report = lint_stage(stage)
        assert "ERC003-pole-unreachable" in rules_of(report)

    def test_stage_without_outputs(self, tech):
        stage = builders.nand_gate(tech, 2)
        for node in stage.outputs:
            node.is_output = False
        report = lint_stage(stage)
        assert "ERC005-missing-output" in rules_of(report)


class TestRunnerControls:
    def test_disable_by_id_fullid_and_slug(self, tech):
        stage = builders.nand_gate(tech, 2)
        stage.add_node("orphan")
        for token in ("ERC002", "ERC002-dangling-node", "dangling-node"):
            report = LintRunner(packs=("erc",), disable=(token,)).run(
                LintContext.from_stage(stage))
            assert "ERC002-dangling-node" not in rules_of(report)

    def test_severity_override(self, tech):
        stage = builders.nand_gate(tech, 2)
        stage.add_node("orphan")
        runner = LintRunner(packs=("erc",),
                            severity_overrides={"ERC002": "info"})
        report = runner.run(LintContext.from_stage(stage))
        (diag,) = [d for d in report if d.rule.startswith("ERC002")]
        assert diag.severity is Severity.INFO
        assert report.ok

    def test_pack_filter(self, tech):
        stage = builders.nand_gate(tech, 2)
        runner = LintRunner(packs=("erc",))
        assert all(r.pack == "erc" for r in runner.rules)
        assert len(runner.rules) == 8

    def test_min_severity_drops_warnings(self):
        net = make_inverter_netlist()
        net.primary_outputs.clear()
        report = LintRunner(min_severity=Severity.ERROR).run(
            LintContext.from_netlist(net))
        assert not report.warnings and not report.infos
        # Only the stage-level error survives the severity floor.
        assert [d.rule for d in report] == ["ERC005-missing-output"]


class TestValidateStageCompat:
    """validate_stage keeps its legacy exception contract."""

    def test_clean_stage_passes(self, tech):
        validate_stage(builders.nand_gate(tech, 3))

    def test_dangling_node_message_and_diagnostics(self, tech):
        stage = builders.nand_gate(tech, 2)
        stage.add_node("orphan")
        with pytest.raises(StageValidationError, match="dangling"):
            validate_stage(stage)
        try:
            validate_stage(stage)
        except StageValidationError as exc:
            assert [d.rule for d in exc.diagnostics] == [
                "ERC002-dangling-node"]

    def test_missing_outputs_toggle(self, tech):
        stage = builders.nand_gate(tech, 2)
        for node in stage.outputs:
            node.is_output = False
        with pytest.raises(StageValidationError, match="no marked"):
            validate_stage(stage)
        validate_stage(stage, require_outputs=False)

    def test_empty_stage_message(self, tech):
        with pytest.raises(StageValidationError, match="no circuit"):
            validate_stage(LogicStage("empty", vdd=tech.vdd))
