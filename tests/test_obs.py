"""Tests for the telemetry subsystem (repro.obs)."""

import json
import threading
import time

import pytest

from repro.circuit import builders
from repro.obs import (
    NOOP_SPAN,
    MetricsRegistry,
    ObsConfig,
    Telemetry,
    configure,
    disable,
    format_span_tree,
    inc,
    observe,
    set_gauge,
    span,
    telemetry,
)
from repro.obs.metrics import ITERATION_BUCKETS
from repro.obs.sinks import JsonlSink, StderrSink, make_sink
from repro.obs.trace import Tracer
from repro.spice import StepSource


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with the disabled default bundle."""
    disable()
    yield
    disable()


class TestConfig:
    def test_defaults_disabled(self):
        config = ObsConfig()
        assert not config.enabled
        assert config.sink == "null"

    def test_rejects_unknown_sink(self):
        with pytest.raises(ValueError, match="sink"):
            ObsConfig(sink="syslog")

    def test_jsonl_needs_path(self):
        with pytest.raises(ValueError, match="sink_path"):
            ObsConfig(sink="jsonl")

    def test_rejects_non_positive_bounds(self):
        with pytest.raises(ValueError):
            ObsConfig(trace_limit=0)
        with pytest.raises(ValueError):
            ObsConfig(max_series=0)


class TestTracer:
    def test_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sorted(tracer.records(), key=lambda r: r.name)
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["a"].parent_id == by_name["root"].span_id
        assert by_name["b"].parent_id == by_name["root"].span_id

    def test_timing_is_monotone(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.003)
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["inner"].duration >= 0.003
        assert by_name["outer"].duration >= by_name["inner"].duration

    def test_attrs_at_entry_and_via_set(self):
        tracer = Tracer()
        with tracer.span("work", {"k": 3}) as sp:
            sp.set(result="ok")
        (record,) = tracer.records()
        assert record.attrs == {"k": 3, "result": "ok"}

    def test_disabled_returns_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is NOOP_SPAN
        with tracer.span("x") as sp:
            sp.set(ignored=True)
        assert tracer.records() == []

    def test_limit_drops_and_counts(self):
        tracer = Tracer(limit=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert tracer.stats() == {"recorded": 2, "dropped": 3}

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()

        def worker():
            with tracer.span("threaded"):
                pass

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        by_name = {r.name: r for r in tracer.records()}
        # The other thread's span must NOT parent under main's root.
        assert by_name["threaded"].parent_id is None

    def test_chrome_export_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("qwm.region", {"k": 2}):
            pass
        path = tracer.export_chrome(str(tmp_path / "trace.json"))
        document = json.loads(open(path).read())
        (event,) = document["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "qwm.region"
        assert event["cat"] == "qwm"
        assert event["args"] == {"k": 2}
        assert event["dur"] >= 0.0

    def test_format_span_tree_merges_siblings(self):
        tracer = Tracer()
        with tracer.span("solve"):
            for _ in range(3):
                with tracer.span("region"):
                    pass
        text = format_span_tree(tracer.records())
        assert "solve" in text
        assert "region x3" in text
        assert "ms" in text


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="up"):
            registry.counter("a").inc(-1)

    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("cache")
        counter.inc(result="hit")
        counter.inc(result="hit")
        counter.inc(result="miss")
        assert counter.value(result="hit") == 2
        assert counter.value(result="miss") == 1
        assert counter.total() == 3

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("speedup")
        gauge.set(10.0)
        gauge.set(31.6)
        assert gauge.value() == pytest.approx(31.6)

    def test_histogram_bucketing(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 10.0, 99.0):
            hist.observe(value)
        snap = hist.snapshot()
        # le=1 gets 0.5 and 1.0 (boundary inclusive), le=5 gets 3.0,
        # le=10 gets 10.0, +Inf gets 99.0.
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(113.5)

    def test_histogram_rejects_bad_buckets(self):
        from repro.obs.metrics import Histogram

        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            Histogram(registry, "h1", "", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h2", buckets=(3.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h3", buckets=(1.0, float("inf")))
        # Empty buckets through the registry mean "use the defaults".
        hist = registry.histogram("h4", buckets=())
        assert hist.buckets == ITERATION_BUCKETS

    def test_catalog_supplies_buckets_and_help(self):
        registry = MetricsRegistry()
        hist = registry.histogram("qwm.newton.iterations")
        assert hist.buckets == ITERATION_BUCKETS
        assert "Newton" in hist.help

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="registered as counter"):
            registry.histogram("x")

    def test_label_cardinality_cap(self):
        registry = MetricsRegistry(max_series=2)
        counter = registry.counter("c")
        for i in range(5):
            counter.inc(series=i)
        assert len(counter.labelsets()) == 2
        assert registry.dropped_series == 3
        # Established series still accept observations.
        counter.inc(series=0)
        assert counter.value(series=0) == 2

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        registry.gauge("g").set(5.0)
        assert registry.counter("c").value() == 0
        assert registry.histogram("h").snapshot() is None

    def test_json_dump_and_file_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("evals").inc(7)
        registry.histogram("iters", buckets=(1.0, 2.0)).observe(1.5)
        path = registry.export_json(str(tmp_path / "metrics.json"))
        document = json.loads(open(path).read())
        assert document["metrics"]["evals"]["series"][0]["value"] == 7
        hist = document["metrics"]["iters"]["series"][0]
        assert hist["counts"] == [0, 1, 0]
        assert document["dropped_series"] == 0

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("device.table.evaluations").inc(3)
        hist = registry.histogram("qwm.newton.iterations",
                                  buckets=(1.0, 5.0))
        hist.observe(2.0)
        hist.observe(7.0)
        text = registry.to_prometheus()
        assert "# TYPE device_table_evaluations counter" in text
        assert "device_table_evaluations 3.0" in text
        assert 'qwm_newton_iterations_bucket{le="1"} 0' in text
        assert 'qwm_newton_iterations_bucket{le="5"} 1' in text
        assert 'qwm_newton_iterations_bucket{le="+Inf"} 2' in text
        assert "qwm_newton_iterations_sum 9.0" in text
        assert "qwm_newton_iterations_count 2" in text

    def test_reset_clears_everything(self):
        registry = MetricsRegistry(max_series=1)
        registry.counter("c").inc(a=1)
        registry.counter("c").inc(a=2)  # dropped
        registry.reset()
        assert registry.names() == []
        assert registry.dropped_series == 0


class TestSinks:
    def test_make_sink_dispatch(self, tmp_path):
        assert type(make_sink(ObsConfig())).__name__ == "NullSink"
        assert isinstance(make_sink(ObsConfig(sink="stderr")), StderrSink)
        jsonl = make_sink(ObsConfig(
            sink="jsonl", sink_path=str(tmp_path / "out.jsonl")))
        assert isinstance(jsonl, JsonlSink)
        jsonl.close()

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        bundle = configure(ObsConfig(enabled=True, sink="jsonl",
                                     sink_path=path))
        with span("qwm.region", k=1):
            pass
        with span("qwm.region", k=2):
            pass
        bundle.close()
        lines = [json.loads(line)
                 for line in open(path).read().splitlines()]
        assert len(lines) == 2
        assert all(line["kind"] == "span" for line in lines)
        assert [line["attrs"]["k"] for line in lines] == [1, 2]

    def test_stderr_sink_formats_spans(self):
        import io

        stream = io.StringIO()
        sink = StderrSink(stream=stream)
        sink.emit("span", {"name": "qwm.solve", "duration": 1e-3,
                           "attrs": {"k": 2}})
        text = stream.getvalue()
        assert "[obs] span qwm.solve" in text
        assert "k=2" in text


class TestModuleHelpers:
    def test_disabled_helpers_record_nothing(self):
        assert span("anything") is NOOP_SPAN
        inc("c")
        observe("h", 1.0)
        set_gauge("g", 1.0)
        bundle = telemetry()
        assert bundle.metrics.names() == []
        assert bundle.tracer.records() == []

    def test_configure_swaps_bundle(self):
        first = configure(ObsConfig(enabled=True))
        assert telemetry() is first
        with span("x"):
            inc("c")
        second = disable()
        assert telemetry() is second
        assert not second.enabled
        # New bundle starts empty; recording stopped.
        inc("c")
        assert second.metrics.names() == []

    def test_telemetry_export_helpers(self, tmp_path):
        bundle = configure(ObsConfig(enabled=True))
        with span("s"):
            inc("c", 4)
        trace_path = bundle.export_trace(str(tmp_path / "t.json"))
        metrics_path = bundle.export_metrics(str(tmp_path / "m.json"))
        assert json.loads(open(trace_path).read())["traceEvents"]
        dump = json.loads(open(metrics_path).read())
        assert dump["metrics"]["c"]["series"][0]["value"] == 4


def _nand3_sources(tech):
    sources = {"a0": StepSource(0.0, tech.vdd, 0.0)}
    sources.update({f"a{i}": tech.vdd for i in (1, 2)})
    return sources


class TestSolverIntegration:
    def test_nand3_metrics_match_solution_stats(self, tech, evaluator):
        stage = builders.nand_gate(tech, 3)
        bundle = configure(ObsConfig(enabled=True))
        try:
            solution = evaluator.evaluate(
                stage, output="out", direction="fall",
                inputs=_nand3_sources(tech))
            registry = bundle.metrics
            hist = registry.get("qwm.newton.iterations").snapshot()
            assert hist["count"] == solution.stats.steps
            evals = registry.get("device.table.evaluations").total()
            assert evals == solution.stats.device_evaluations
            assert evals >= 1
            solves = registry.get("linalg.solve.sherman_morrison")
            assert solves.total() > 0
            names = {r.name for r in bundle.tracer.records()}
            assert {"engine.evaluate", "qwm.solve",
                    "qwm.region"} <= names
        finally:
            disable()

    def test_device_evaluations_counted_incrementally(self, tech,
                                                      evaluator):
        """Satellite check: stats come from the table's own counter."""
        stage = builders.nand_gate(tech, 3)
        tables = {evaluator.library.get("n"), evaluator.library.get("p")}
        before = sum(t.query_count for t in tables)
        solution = evaluator.evaluate(stage, output="out",
                                      direction="fall",
                                      inputs=_nand3_sources(tech))
        after = sum(t.query_count for t in tables)
        assert solution.stats.device_evaluations == after - before
        assert solution.stats.device_evaluations > 0

    def test_disabled_overhead_under_budget(self, tech, evaluator):
        """Disabled-mode instrumentation costs <5% of a NAND3 solve.

        Measured as (per-call cost of the disabled helpers) x (a
        generous over-estimate of instrumentation call sites per
        solve), against the solve's own wall time.
        """
        n_calls = 20000
        start = time.perf_counter()
        for _ in range(n_calls):
            with span("x"):
                pass
            inc("c")
            observe("h", 1.0)
        per_op = (time.perf_counter() - start) / n_calls

        stage = builders.nand_gate(tech, 3)
        solution = evaluator.evaluate(stage, output="out",
                                      direction="fall",
                                      inputs=_nand3_sources(tech))
        stats = solution.stats
        # Call sites per solve: one span+2 observes+2 incs per region,
        # one inc per Newton iteration (linalg), plus a fixed handful —
        # then doubled for margin.
        ops = 2 * (6 * stats.steps + stats.newton_iterations + 20)
        overhead = ops * per_op
        assert overhead < 0.05 * stats.wall_time, (
            f"disabled telemetry overhead {overhead * 1e6:.1f}us vs "
            f"solve {stats.wall_time * 1e6:.1f}us")


class TestPrometheusExposition:
    """Wire-format conformance for the text exposition 0.0.4."""

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("files.scanned").inc(
            2, path='a"b\\c\nd', kind="netlist")
        text = registry.to_prometheus()
        assert ('files_scanned{kind="netlist",'
                'path="a\\"b\\\\c\\nd"} 2.0') in text
        # The escaped payload still fits on one physical line.
        lines = [ln for ln in text.splitlines()
                 if ln.startswith("files_scanned{")]
        assert len(lines) == 1

    def test_round_trip_parse_back(self):
        registry = MetricsRegistry()
        registry.counter("solves").inc(4, gate="nand2")
        registry.counter("solves").inc(1, gate="inv")
        registry.gauge("speedup").set(31.6)
        parsed = {}
        for line in registry.to_prometheus().splitlines():
            if line.startswith("#") or not line.strip():
                continue
            name, value = line.rsplit(" ", 1)
            parsed[name] = float(value)
        assert parsed['solves{gate="nand2"}'] == 4.0
        assert parsed['solves{gate="inv"}'] == 1.0
        assert parsed["speedup"] == 31.6

    def test_histogram_buckets_cumulative_and_ordered(self):
        registry = MetricsRegistry()
        hist = registry.histogram("iters", buckets=(1.0, 3.0, 8.0))
        for value in (0.5, 2.0, 2.5, 5.0, 99.0):
            hist.observe(value)
        lines = [ln for ln in registry.to_prometheus().splitlines()
                 if ln.startswith("iters_bucket")]
        bounds = [ln.split('le="')[1].split('"')[0] for ln in lines]
        counts = [float(ln.rsplit(" ", 1)[1]) for ln in lines]
        # Buckets appear in ascending order ending at +Inf, and the
        # counts are cumulative (monotone non-decreasing).
        assert bounds == ["1", "3", "8", "+Inf"]
        assert counts == sorted(counts)
        assert counts[-1] == 5.0
        text = registry.to_prometheus()
        assert "iters_sum" in text and "iters_count 5" in text


class TestTraceDropVisibility:
    def test_dropped_spans_feed_counter_and_tree_footer(self):
        configure(ObsConfig(enabled=True, trace_limit=2))
        for _ in range(5):
            with span("s"):
                pass
        bundle = telemetry()
        assert bundle.tracer.stats() == {"recorded": 2, "dropped": 3}
        assert bundle.metrics.counter("obs.trace.dropped").value() == 3
        text = format_span_tree(bundle.tracer.records(),
                                dropped=bundle.tracer.stats()["dropped"])
        assert "trace truncated: 3 spans dropped" in text

    def test_no_footer_when_nothing_dropped(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        text = format_span_tree(tracer.records(), dropped=0)
        assert "truncated" not in text
