"""Tests for channel-connected stage extraction."""

import pytest

from repro.circuit import FlatNetlist, builders, extract_stages
from repro.circuit.netlist import GND_NODE, VDD_NODE


def _inverter_netlist(tech, name="inv", inp="a", out="y"):
    net = FlatNetlist(name, vdd=tech.vdd)
    net.add_pmos(f"{name}_p", gate=inp, src=VDD_NODE, snk=out,
                 w=2e-6, l=tech.lmin)
    net.add_nmos(f"{name}_n", gate=inp, src=out, snk=GND_NODE,
                 w=1e-6, l=tech.lmin)
    net.mark_input(inp)
    net.mark_output(out)
    return net


class TestSingleStage:
    def test_inverter_is_one_stage(self, tech):
        graph = extract_stages(_inverter_netlist(tech))
        assert len(graph.stages) == 1
        stage = graph.stages[0]
        assert len(stage.transistors) == 2
        assert [n.name for n in stage.outputs] == ["y"]

    def test_load_caps_transferred(self, tech):
        net = _inverter_netlist(tech)
        net.set_load("y", 7e-15)
        graph = extract_stages(net)
        assert graph.stages[0].node("y").load_cap == pytest.approx(7e-15)


class TestChain:
    def test_two_inverters_two_stages(self, tech):
        net = FlatNetlist("chain", vdd=tech.vdd)
        net.add_pmos("p1", "a", VDD_NODE, "m", 2e-6, tech.lmin)
        net.add_nmos("n1", "a", "m", GND_NODE, 1e-6, tech.lmin)
        net.add_pmos("p2", "m", VDD_NODE, "y", 2e-6, tech.lmin)
        net.add_nmos("n2", "m", "y", GND_NODE, 1e-6, tech.lmin)
        net.mark_input("a")
        net.mark_output("y")
        graph = extract_stages(net)
        assert len(graph.stages) == 2
        # m drives a gate -> it is an output of its stage.
        driver = graph.driver_of["m"]
        assert "m" in [n.name for n in driver.outputs]
        order = [s.name for s in graph.topological_order()]
        assert order.index(driver.name) < order.index(
            graph.stage_of_net["y"].name)

    def test_graph_edges(self, tech):
        net = FlatNetlist("chain", vdd=tech.vdd)
        net.add_nmos("n1", "a", "m", GND_NODE, 1e-6, tech.lmin)
        net.add_pmos("p1", "a", VDD_NODE, "m", 1e-6, tech.lmin)
        net.add_nmos("n2", "m", "y", GND_NODE, 1e-6, tech.lmin)
        net.add_pmos("p2", "m", VDD_NODE, "y", 1e-6, tech.lmin)
        net.mark_output("y")
        graph = extract_stages(net)
        assert graph.graph.number_of_edges() == 1


class TestPassTransistorMerge:
    def test_fig1_merges_nand_wire_pass(self, tech):
        net = builders.pass_transistor_netlist(tech)
        graph = extract_stages(net)
        assert len(graph.stages) == 2
        big = max(graph.stages, key=lambda s: len(s.transistors))
        # NAND (4 devices) + pass transistor, joined through the wire.
        assert len(big.transistors) == 5
        assert len(big.wires) == 1
        assert "z" in [n.name for n in big.outputs]

    def test_pass_gate_net_still_cuts(self, tech):
        # sel drives only a gate: it must NOT merge stages.
        net = builders.pass_transistor_netlist(tech)
        graph = extract_stages(net)
        assert "sel" not in graph.stage_of_net


class TestErrors:
    def test_wire_to_supply_rejected(self, tech):
        net = FlatNetlist("bad", vdd=tech.vdd)
        net.add_wire("w", VDD_NODE, "x", 1e-6, 1e-6)
        net.add_nmos("n", "g", "x", GND_NODE, 1e-6, tech.lmin)
        with pytest.raises(ValueError):
            extract_stages(net)

    def test_supply_to_supply_transistor_rejected(self, tech):
        net = FlatNetlist("bad", vdd=tech.vdd)
        net.add_nmos("n", "g", VDD_NODE, GND_NODE, 1e-6, tech.lmin)
        with pytest.raises(ValueError):
            extract_stages(net)


class TestNets:
    def test_nets_collects_everything(self, tech):
        net = builders.pass_transistor_netlist(tech)
        nets = net.nets
        for expected in ("a", "b", "sel", "x", "y", "z", "out",
                         VDD_NODE, GND_NODE):
            assert expected in nets
