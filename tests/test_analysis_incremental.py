"""Tests for incremental STA and sizing sensitivity."""

import pytest

from repro.analysis import (
    IncrementalTimer,
    SizingSensitivity,
    clone_stage,
    stage_signature,
)
from repro.circuit import builders, extract_stages
from repro.circuit.netlist import GND_NODE, VDD_NODE
from repro.circuit.stage import FlatNetlist
from repro.core import WaveformEvaluator
from repro.spice import ConstantSource, StepSource


def _inverter_chain(tech, stages=4):
    net = FlatNetlist("chain", vdd=tech.vdd)
    prev = "a"
    for i in range(stages):
        out = f"n{i}" if i < stages - 1 else "y"
        net.add_pmos(f"p{i}", gate=prev, src=VDD_NODE, snk=out,
                     w=2e-6, l=tech.lmin)
        net.add_nmos(f"m{i}", gate=prev, src=out, snk=GND_NODE,
                     w=1e-6, l=tech.lmin)
        prev = out
    net.mark_input("a")
    net.mark_output("y")
    net.set_load("y", 5e-15)
    return extract_stages(net, tech=tech)


class TestStageSignature:
    def test_stable_for_unchanged_stage(self, tech):
        a = builders.nand_gate(tech, 2)
        b = builders.nand_gate(tech, 2)
        assert stage_signature(a) == stage_signature(b)

    def test_changes_with_width(self, tech):
        a = builders.nand_gate(tech, 2)
        b = builders.nand_gate(tech, 2, wn=3e-6)
        assert stage_signature(a) != stage_signature(b)

    def test_changes_with_load(self, tech):
        a = builders.nand_gate(tech, 2, load=1e-15)
        b = builders.nand_gate(tech, 2, load=9e-15)
        assert stage_signature(a) != stage_signature(b)


class TestIncrementalTimer:
    @pytest.fixture
    def timer(self, tech, library):
        return IncrementalTimer(tech, _inverter_chain(tech),
                                library=library)

    def test_first_pass_evaluates_everything(self, timer):
        result = timer.analyze()
        assert result.worst is not None
        assert timer.last_stats.arcs_evaluated > 0
        assert timer.last_stats.arcs_cached == 0

    def test_repeat_pass_is_fully_cached(self, timer):
        first = timer.analyze()
        second = timer.analyze()
        assert timer.last_stats.arcs_evaluated == 0
        assert timer.last_stats.arcs_cached > 0
        assert second.worst.time == pytest.approx(first.worst.time)

    def test_resize_invalidates_locally(self, timer):
        timer.analyze()
        total = timer.last_stats.total
        # Resize a device in the LAST stage of the 4-inverter chain.
        graph = timer.graph
        last = graph.stage_of_net["y"]
        device = next(e.name for e in last.transistors
                      if e.kind.polarity == "n")
        timer.resize_transistor(last.name, device, 2e-6)
        timer.analyze()
        # Dirty: the resized stage + its upstream driver (load change);
        # the first two stages of the chain stay cached.
        assert timer.last_stats.arcs_evaluated < total
        assert timer.last_stats.arcs_cached > 0

    def test_resize_changes_worst_arrival(self, timer):
        before = timer.analyze().worst.time
        graph = timer.graph
        last = graph.stage_of_net["y"]
        device = next(e.name for e in last.transistors
                      if e.kind.polarity == "n")
        timer.resize_transistor(last.name, device, 4e-6)
        after = timer.analyze().worst.time
        assert after != pytest.approx(before, rel=1e-3)

    def test_incremental_matches_full_reanalysis(self, tech, library,
                                                 timer):
        timer.analyze()
        graph = timer.graph
        last = graph.stage_of_net["y"]
        device = next(e.name for e in last.transistors
                      if e.kind.polarity == "n")
        timer.resize_transistor(last.name, device, 3e-6)
        incremental = timer.analyze()
        fresh = IncrementalTimer(tech, graph, library=library).analyze()
        assert incremental.worst.time == pytest.approx(fresh.worst.time,
                                                       rel=1e-9)

    def test_set_load_dirties_driver(self, timer):
        timer.analyze()
        timer.set_load("y", 20e-15)
        timer.analyze()
        assert timer.last_stats.arcs_evaluated > 0

    def test_set_load_unknown_net_rejected(self, timer):
        with pytest.raises(KeyError):
            timer.set_load("ghost", 1e-15)

    def test_resize_validation(self, timer):
        graph = timer.graph
        last = graph.stage_of_net["y"]
        with pytest.raises(ValueError):
            timer.resize_transistor(last.name, "m3", -1.0)


class TestCloneStage:
    def test_clone_is_independent(self, tech):
        stage = builders.nand_gate(tech, 2)
        copy = clone_stage(stage, {"MN0": 5e-6})
        assert copy.edge("MN0").w == pytest.approx(5e-6)
        assert stage.edge("MN0").w != pytest.approx(5e-6)
        assert copy.node("out").load_cap == stage.node("out").load_cap
        assert [n.name for n in copy.outputs] == ["out"]

    def test_unknown_device_rejected(self, tech):
        with pytest.raises(KeyError):
            clone_stage(builders.inverter(tech), {"ghost": 1e-6})


class TestSensitivity:
    @pytest.fixture(scope="class")
    def sens(self, tech, library):
        return SizingSensitivity(WaveformEvaluator(tech, library=library))

    def _inputs(self, tech, k):
        inputs = {"g1": StepSource(0, tech.vdd, 0)}
        inputs.update({f"g{j}": ConstantSource(tech.vdd)
                       for j in range(2, k + 1)})
        return inputs

    def test_upsizing_path_device_helps(self, tech, sens):
        st = builders.nmos_stack(tech, 3, widths=[1e-6] * 3,
                                 load=10e-15)
        result = sens.device(st, "M1", "out", "fall",
                             self._inputs(tech, 3))
        assert result.sensitivity < 0  # wider -> faster
        assert result.nominal_delay > 0

    def test_bottom_device_most_sensitive(self, tech, sens):
        st = builders.nmos_stack(tech, 4, widths=[1e-6] * 4,
                                 load=10e-15)
        results = sens.all_path_devices(st, "out", "fall",
                                        self._inputs(tech, 4))
        by_name = {r.device: abs(r.normalized) for r in results}
        assert by_name["M1"] == max(by_name.values())

    def test_non_transistor_rejected(self, tech, sens):
        stage = builders.decoder_tree(tech, levels=1)
        with pytest.raises(ValueError):
            sens.device(stage, "W1", "t1", "fall", {
                "phi": ConstantSource(tech.vdd),
                "A0": ConstantSource(tech.vdd),
                "A0b": ConstantSource(0.0)})

    def test_rel_step_validated(self, tech, library):
        with pytest.raises(ValueError):
            SizingSensitivity(WaveformEvaluator(tech, library=library),
                              rel_step=0.9)
