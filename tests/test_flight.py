"""Flight recorder: ledger, debug bundles, deterministic replay, reports."""

import copy
import math

import numpy as np
import pytest

from repro.circuit import builders
from repro.core import WaveformEvaluator
from repro.core.qwm import QWMOptions
from repro.linalg.newton import FAILURE_REASONS, NewtonOptions
from repro.obs import (
    FlightConfig,
    FlightRecorder,
    configure_flight,
    disable_flight,
    flight,
    render_report,
    summarize_ledger,
)
from repro.obs import bundles as fb
from repro.spice import ConstantSource, PWLSource, RampSource, StepSource


@pytest.fixture(autouse=True)
def clean_flight():
    """Every test starts and ends with the disabled default recorder."""
    disable_flight()
    yield
    disable_flight()


def nand_inputs(tech, n):
    """Worst-case NAND stimulus: bottom input steps, rest held high."""
    inputs = {"a0": StepSource(0.0, tech.vdd, 0.0)}
    inputs.update({f"a{i}": ConstantSource(tech.vdd)
                   for i in range(1, n)})
    return inputs


# ----------------------------------------------------------------------
# Recorder mechanics
# ----------------------------------------------------------------------
class TestRecorder:
    def test_disabled_by_default(self):
        assert not flight().enabled

    def test_config_validation(self):
        with pytest.raises(ValueError, match="event_limit"):
            FlightConfig(event_limit=0)
        with pytest.raises(ValueError, match="max_bundles"):
            FlightConfig(max_bundles=-1)
        # None means unbounded, explicitly legal.
        FlightConfig(event_limit=None)

    def test_event_limit_drops_and_counts(self):
        rec = FlightRecorder(FlightConfig(enabled=True, event_limit=3))
        for i in range(5):
            rec.record("x", value=i)
        stats = rec.stats()
        assert stats["recorded"] == 3
        assert stats["dropped"] == 2
        assert rec.to_json()["dropped"] == 2

    def test_context_frames_merge_and_unwind(self):
        rec = FlightRecorder(FlightConfig(enabled=True))
        with rec.context(stage="s1", output="out"):
            with rec.context(arc_input="a0"):
                sid = rec.begin_solve(direction="fall")
            assert rec.current_context() == {"stage": "s1",
                                             "output": "out"}
        assert rec.current_context() == {}
        (begin,) = [e for e in rec.events() if e.kind == "solve_begin"]
        assert begin.solve_id == sid
        assert begin.data["stage"] == "s1"
        assert begin.data["arc_input"] == "a0"
        assert begin.data["direction"] == "fall"

    def test_force_capture_consumed_once(self):
        rec = FlightRecorder(FlightConfig(enabled=True))
        rec.force_capture("golden_band_violation")
        assert rec.consume_force_capture() == "golden_band_violation"
        assert rec.consume_force_capture() is None

    def test_solve_failure_stash_consumed_once(self):
        rec = FlightRecorder(FlightConfig(enabled=True))
        rec.note_solve_failure(7, {"active": 1, "tau": 0.0})
        failure = rec.take_solve_failure()
        assert failure["solve_id"] == 7
        assert failure["active"] == 1
        assert rec.take_solve_failure() is None

    def test_arc_provenance_half_open_range(self):
        rec = FlightRecorder(FlightConfig(enabled=True))
        first = rec.next_solve_id()
        rec.begin_solve()
        rec.begin_solve()
        rec.note_arc_result("fp/arc", first, rec.next_solve_id())
        rec.note_cache_hit("fp/arc")
        rec.note_cache_hit("fp/arc")
        prov = rec.provenance()["fp/arc"]
        assert prov["solve_ids"] == [1, 2]
        assert prov["hits"] == 2
        (hit, _) = [e for e in rec.events() if e.kind == "cache_hit"]
        assert hit.data["origin_solve_ids"] == [1, 2]

    def test_bundle_slot_budget(self):
        rec = FlightRecorder(FlightConfig(enabled=True, max_bundles=2))
        assert rec.claim_bundle_slot()
        assert rec.claim_bundle_slot()
        assert not rec.claim_bundle_slot()
        assert rec.stats()["bundles"] == 2


# ----------------------------------------------------------------------
# Ledger capture on a real solve + report aggregation
# ----------------------------------------------------------------------
class TestLedgerAndReport:
    def test_solve_records_full_lifecycle(self, tech, library):
        rec = configure_flight(FlightConfig(enabled=True))
        stage = builders.nand_gate(tech, 2)
        evaluator = WaveformEvaluator(tech, library=library)
        evaluator.evaluate(stage, "out", "fall", nand_inputs(tech, 2))
        kinds = {e.kind for e in rec.events()}
        assert {"solve_begin", "newton", "region_solved",
                "solve_end"} <= kinds
        (begin,) = [e for e in rec.events() if e.kind == "solve_begin"]
        assert begin.data["stage"] == "nand2"
        assert begin.data["direction"] == "fall"
        newtons = [e for e in rec.events() if e.kind == "newton"]
        # Every newton event carries the exact region-start state a
        # replay needs, plus the full iteration trajectory.
        for event in newtons:
            for key in ("u", "i", "caps", "guess", "trajectory",
                        "outcome", "tau", "active", "order"):
                assert key in event.data
        converged = [e for e in newtons
                     if e.data["outcome"] == "converged"]
        assert converged
        entry = converged[0].data["trajectory"][0]
        assert set(entry) == {"iteration", "residual_norm",
                              "step_norm", "shrink"}

    def test_summary_and_report_render(self, tech, library):
        rec = configure_flight(FlightConfig(enabled=True))
        stage = builders.nand_gate(tech, 2)
        evaluator = WaveformEvaluator(tech, library=library)
        evaluator.evaluate(stage, "out", "fall", nand_inputs(tech, 2))
        summary = summarize_ledger(rec)
        assert summary["solves"] == 1
        assert summary["regions_solved"] > 0
        assert summary["regions_failed"] == 0
        assert summary["iteration_distribution"]["mean"] > 0
        assert summary["worst_regions"]
        text = render_report(summary)
        for section in ("fallback histogram", "newton iterations",
                        "worst regions", "cache attribution"):
            assert section in text

    def test_disabled_recorder_stays_empty(self, tech, library):
        stage = builders.nand_gate(tech, 2)
        evaluator = WaveformEvaluator(tech, library=library)
        evaluator.evaluate(stage, "out", "fall", nand_inputs(tech, 2))
        assert flight().events() == []
        assert flight().stats()["solves"] == 0


# ----------------------------------------------------------------------
# Bundle serialization round-trips
# ----------------------------------------------------------------------
class TestBundleSerialization:
    def test_stage_round_trip(self, tech):
        stage = builders.aoi21_gate(tech)
        rebuilt = fb.stage_from_json(fb.stage_to_json(stage))
        assert rebuilt.name == stage.name
        assert rebuilt.vdd == stage.vdd
        assert {n.name for n in rebuilt.outputs} == \
            {n.name for n in stage.outputs}
        assert len(rebuilt.edges) == len(stage.edges)
        by_name = {e.name: e for e in rebuilt.edges}
        for edge in stage.edges:
            twin = by_name[edge.name]
            assert twin.kind == edge.kind
            assert twin.w == edge.w and twin.l == edge.l
            assert twin.gate_input == edge.gate_input
        for node in stage.nodes:
            twin = rebuilt.node(node.name)
            assert twin.load_cap == node.load_cap

    @pytest.mark.parametrize("source", [
        ConstantSource(3.3),
        StepSource(0.0, 3.3, 2e-11),
        RampSource(3.3, 0.0, 1e-11, 4e-11),
        PWLSource([(0.0, 0.0), (1e-11, 3.3), (5e-11, 1.1)]),
    ])
    def test_source_round_trip(self, source):
        rebuilt = fb.source_from_json(fb.source_to_json(source))
        assert type(rebuilt) is type(source)
        for t in (0.0, 7e-12, 3e-11, 1e-10):
            assert rebuilt.value(t) == source.value(t)

    def test_options_round_trip(self):
        options = QWMOptions(
            newton=NewtonOptions(max_iterations=17, abstol=1e-9),
            max_retries=2)
        rebuilt = fb.options_from_json(fb.options_to_json(options))
        assert rebuilt == options

    def test_tech_round_trip(self, tech):
        rebuilt = fb.tech_from_json(fb.tech_to_json(tech))
        assert rebuilt == tech

    def test_grid_round_trip_rebuilds_derived_planes(self, library):
        grid = library.get("n").grid
        rebuilt = fb.grid_from_json(fb.grid_to_json(grid))
        np.testing.assert_array_equal(rebuilt.vs_values, grid.vs_values)
        np.testing.assert_array_equal(rebuilt.vg_values, grid.vg_values)
        np.testing.assert_array_equal(rebuilt.vth_plane, grid.vth_plane)
        np.testing.assert_array_equal(rebuilt.vdsat_plane,
                                      grid.vdsat_plane)
        assert rebuilt.fits[0][0] == grid.fits[0][0]

    def test_replay_library_serves_only_bundled_slices(self, tech,
                                                       library):
        entry = fb.grid_to_json(library.get("n").grid)
        entry["length"] = tech.lmin
        replay_lib = fb.ReplayLibrary(tech, library.grid_step, [entry])
        model = replay_lib.get("n", tech.lmin)
        reference = library.get("n", tech.lmin)
        assert model.iv(tech.wmin, tech.lmin, tech.vdd, tech.vdd, 0.0) \
            == reference.iv(tech.wmin, tech.lmin, tech.vdd, tech.vdd,
                            0.0)
        with pytest.raises(KeyError, match="not self-contained"):
            replay_lib.get("p", tech.lmin)


# ----------------------------------------------------------------------
# Failure bundles and bit-for-bit replay
# ----------------------------------------------------------------------
class TestFailureBundleReplay:
    def test_starved_newton_bundle_replays_identically(
            self, tech, library, tmp_path):
        """The acceptance path: forced Newton failure -> bundle ->
        replay reproduces the recorded trajectories bit-for-bit."""
        configure_flight(FlightConfig(
            enabled=True, capture_bundles=True,
            bundle_dir=str(tmp_path)))
        options = QWMOptions(newton=NewtonOptions(max_iterations=2))
        evaluator = WaveformEvaluator(tech, library=library,
                                      options=options)
        stage = builders.nand_gate(tech, 3)
        try:
            evaluator.evaluate(stage, "out", "fall",
                               nand_inputs(tech, 3))
        except Exception:
            pass  # the bundle matters, not the solve outcome

        files = sorted(tmp_path.glob("*.json"))
        assert files, "expected a solve-failure bundle"
        bundle = fb.load_bundle(str(files[0]))
        assert bundle["reason"] == "solve_failure"
        assert bundle["failure"]["reasons"]
        assert all(r in FAILURE_REASONS + ("non_advancing_time",)
                   for r in bundle["failure"]["reasons"])
        assert bundle["grids"], "bundle must carry the table slices"

        result = fb.replay_bundle(bundle)
        assert result.mode == "region"
        assert result.attempts, "no newton events for failing region"
        assert result.identical, result.render()
        assert "bit-for-bit identical: True" in result.render()

    def test_replay_detects_divergence(self, tech, library, tmp_path):
        configure_flight(FlightConfig(
            enabled=True, capture_bundles=True,
            bundle_dir=str(tmp_path)))
        options = QWMOptions(newton=NewtonOptions(max_iterations=2))
        evaluator = WaveformEvaluator(tech, library=library,
                                      options=options)
        stage = builders.nand_gate(tech, 3)
        try:
            evaluator.evaluate(stage, "out", "fall",
                               nand_inputs(tech, 3))
        except Exception:
            pass
        bundle = fb.load_bundle(str(sorted(tmp_path.glob("*.json"))[0]))
        # Corrupt a recorded residual inside the failing region (the
        # only region replay compares); replay must flag it.
        failure = bundle["failure"]
        for event in bundle["ledger"]["events"]:
            data = event["data"]
            if (event["kind"] == "newton"
                    and data.get("active") == failure["active"]
                    and data.get("tau") == failure["tau"]
                    and data["trajectory"]):
                data["trajectory"][0]["residual_norm"] *= 2.0
                break
        else:
            pytest.fail("no newton event recorded for failing region")
        result = fb.replay_bundle(bundle)
        assert not result.identical
        assert "DIVERGED" in result.render()


# ----------------------------------------------------------------------
# Golden-suite forced capture
# ----------------------------------------------------------------------
class TestGoldenCapture:
    def test_band_violation_writes_replayable_bundle(
            self, tech, library, tmp_path):
        from repro.analysis import golden

        case = golden.GoldenCase(circuit="inv", direction="fall",
                                 switching_input="a", held=None,
                                 input_slew=0.0, load=2e-15)
        evaluator = WaveformEvaluator(tech, library=library)
        delay, slew = golden.qwm_measure(case, tech, evaluator)
        # A fabricated reference far outside the band forces a diff
        # failure without paying for a SPICE run.
        record = golden.GoldenRecord(case=case, spice_delay=10 * delay,
                                     spice_slew=None,
                                     qwm_delay=10 * delay,
                                     qwm_slew=slew)
        configure_flight(FlightConfig(
            enabled=True, capture_bundles=True,
            bundle_dir=str(tmp_path)))
        diffs = golden.check([record], tech, evaluator=evaluator)
        assert not diffs[0].ok

        files = sorted(tmp_path.glob("*.json"))
        assert files, "band violation should have written a bundle"
        bundle = fb.load_bundle(str(files[0]))
        assert bundle["reason"] == "golden_band_violation"
        assert bundle["extra"]["golden_case"] == case.name
        assert bundle["extra"]["delay_error_pct"] > 10.0
        assert bundle["failure"] is None

        result = fb.replay_bundle(bundle)
        assert result.mode == "solve"
        assert result.solution_delay is not None

    def test_no_capture_when_disabled(self, tech, library, tmp_path):
        from repro.analysis import golden

        case = golden.GoldenCase(circuit="inv", direction="fall",
                                 switching_input="a", held=None,
                                 input_slew=0.0, load=2e-15)
        evaluator = WaveformEvaluator(tech, library=library)
        delay, _ = golden.qwm_measure(case, tech, evaluator)
        record = golden.GoldenRecord(case=case, spice_delay=10 * delay,
                                     spice_slew=None,
                                     qwm_delay=10 * delay,
                                     qwm_slew=None)
        diffs = golden.check([record], tech, evaluator=evaluator)
        assert not diffs[0].ok
        assert list(tmp_path.glob("*.json")) == []


# ----------------------------------------------------------------------
# Corrupted-table taxonomy: non-finite residuals
# ----------------------------------------------------------------------
class TestCorruptedTableFixture:
    def test_nan_table_slice_hits_non_finite_taxonomy(
            self, tech, library, tmp_path):
        from repro.devices.table_model import TableDeviceModel

        entry = fb.grid_to_json(library.get("n").grid)
        for row in entry["fits"]:
            for fit in row:
                fit[0] = math.nan  # saturation slope -> NaN currents
        bad_grid = fb.grid_from_json(entry)

        class CorruptLibrary:
            """Serves a NaN-poisoned NMOS slice, everything else real."""

            def __init__(self, base):
                self.tech = base.tech
                self.grid_step = base.grid_step
                self._base = base

            def get(self, polarity, l=None):
                if polarity == "n":
                    return TableDeviceModel(bad_grid, self.tech.nmos)
                return self._base.get(polarity, l)

        rec = configure_flight(FlightConfig(
            enabled=True, capture_bundles=True,
            bundle_dir=str(tmp_path)))
        evaluator = WaveformEvaluator(tech,
                                      library=CorruptLibrary(library))
        stage = builders.nand_gate(tech, 2)
        try:
            evaluator.evaluate(stage, "out", "fall",
                               nand_inputs(tech, 2), precharge="full")
        except Exception:
            pass
        reasons = set()
        for event in rec.events():
            if event.kind == "newton":
                reasons.add(event.data["outcome"])
            elif event.kind == "region_failed":
                reasons.update(event.data["reasons"])
        assert "non_finite_residual" in reasons


# ----------------------------------------------------------------------
# Cache attribution through the parallel engine
# ----------------------------------------------------------------------
class TestCacheAttribution:
    def test_cache_hits_carry_provenance(self, tech, library):
        from repro.analysis import StaticTimingAnalyzer
        from repro.analysis.parallel import (ExecutionConfig,
                                             StageResultCache)
        from repro.circuit import extract_stages

        rec = configure_flight(FlightConfig(enabled=True))
        netlist = builders.decoder_netlist(tech, bits=2)
        graph = extract_stages(netlist, tech=tech)
        analyzer = StaticTimingAnalyzer(
            tech, library=library,
            execution=ExecutionConfig(workers=2, backend="thread",
                                      cache=True),
            cache=StageResultCache())
        analyzer.analyze(graph)

        prov = rec.provenance()
        assert prov, "arc results should have been attributed"
        hits = sum(p["hits"] for p in prov.values())
        assert hits > 0, "identical decoder stages should hit the cache"
        for key, entry in prov.items():
            if entry["hits"]:
                # Every hit points back at the solves that computed it.
                assert entry["solve_ids"], key
        kinds = {e.kind for e in rec.events()}
        assert "cache_hit" in kinds and "arc_result" in kinds
