"""Tests for the interconnect substrate: RC trees, Elmore, AWE, π."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect import (
    RCTree,
    admittance_moments,
    awe_from_moments,
    elmore_delays,
    pi_of_tree,
    reduce_to_pi,
    uniform_line_pi,
    voltage_moments,
    wire_chain_pi,
)


class TestRCTree:
    def test_chain_construction(self):
        tree = RCTree.from_chain([100.0, 200.0], [1e-15, 2e-15])
        assert len(tree) == 3
        assert tree.parent("n1") == "n0"
        assert tree.resistance("n1") == 200.0
        assert tree.total_cap == pytest.approx(3e-15)

    def test_duplicate_node_rejected(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 1.0, 1.0)
        with pytest.raises(ValueError):
            tree.add_node("a", "in", 1.0, 1.0)

    def test_unknown_parent_rejected(self):
        tree = RCTree("in")
        with pytest.raises(ValueError):
            tree.add_node("a", "ghost", 1.0, 1.0)

    def test_add_cap(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 1.0, 1e-15)
        tree.add_cap("a", 1e-15)
        assert tree.cap("a") == pytest.approx(2e-15)

    def test_downstream_cap(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 1.0, 1e-15)
        tree.add_node("b", "a", 1.0, 2e-15)
        tree.add_node("c", "a", 1.0, 3e-15)
        down = tree.downstream_cap()
        assert down["a"] == pytest.approx(6e-15)
        assert down["b"] == pytest.approx(2e-15)

    def test_mismatched_chain_rejected(self):
        with pytest.raises(ValueError):
            RCTree.from_chain([1.0], [1e-15, 2e-15])


class TestElmore:
    def test_single_rc(self):
        tree = RCTree.from_chain([1000.0], [1e-12])
        assert elmore_delays(tree)["n0"] == pytest.approx(1e-9)

    def test_two_segment_ladder(self):
        tree = RCTree.from_chain([100.0, 100.0], [1e-15, 1e-15])
        d = elmore_delays(tree)
        # T(n0) = 100*(C0+C1); T(n1) = T(n0) + 100*C1.
        assert d["n0"] == pytest.approx(100 * 2e-15)
        assert d["n1"] == pytest.approx(100 * 2e-15 + 100 * 1e-15)

    def test_branching_tree_shares_upstream(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 100.0, 1e-15)
        tree.add_node("b", "a", 50.0, 1e-15)
        tree.add_node("c", "a", 70.0, 2e-15)
        d = elmore_delays(tree)
        assert d["b"] == pytest.approx(100 * 4e-15 + 50 * 1e-15)
        assert d["c"] == pytest.approx(100 * 4e-15 + 70 * 2e-15)

    def test_uniform_line_limit(self):
        # Distributed limit: far-end Elmore of a uniform line is RC/2.
        n = 200
        tree = RCTree.from_chain([1000.0 / n] * n, [1e-12 / n] * n)
        far = elmore_delays(tree)[f"n{n - 1}"]
        assert far == pytest.approx(0.5e-9, rel=0.02)

    def test_moments_order_validation(self):
        tree = RCTree.from_chain([1.0], [1.0])
        with pytest.raises(ValueError):
            voltage_moments(tree, 0)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 999), n=st.integers(1, 12))
    def test_first_admittance_moment_is_total_cap(self, seed, n):
        rng = np.random.default_rng(seed)
        tree = RCTree.from_chain(rng.uniform(10, 1000, n),
                                 rng.uniform(0.1e-15, 5e-15, n))
        moments = admittance_moments(tree, 3)
        assert moments[0] == pytest.approx(tree.total_cap, rel=1e-12)
        assert moments[1] < 0  # A2 always negative for RC
        assert moments[2] > 0  # A3 always positive


class TestAWE:
    def test_recovers_single_pole(self):
        # H(s) = 1/(1 - s/p), p = -1e9: m_q = p^-q.
        p = -1e9
        moments = [p ** -q for q in range(4)]
        approx = awe_from_moments(moments, order=1)
        assert approx.poles[0] == pytest.approx(p, rel=1e-9)
        assert np.real(approx.residues[0]) == pytest.approx(1.0)

    def test_recovers_two_poles(self):
        p1, p2 = -1e9, -5e9
        k1, k2 = 0.7, 0.3
        moments = [k1 * p1 ** -q + k2 * p2 ** -q for q in range(6)]
        approx = awe_from_moments(moments, order=2)
        got = sorted(np.real(approx.poles))
        assert got[0] == pytest.approx(p2, rel=1e-6)
        assert got[1] == pytest.approx(p1, rel=1e-6)

    def test_step_response_limits(self):
        p = -1e9
        moments = [p ** -q for q in range(4)]
        approx = awe_from_moments(moments, order=1)
        t = np.array([0.0, 1e-7])
        resp = approx.step_response(t, v_final=3.3)
        assert resp[0] == pytest.approx(0.0, abs=1e-9)
        assert resp[1] == pytest.approx(3.3, rel=1e-6)

    def test_moment_consistency(self):
        p1, p2 = -2e9, -9e9
        moments = [0.5 * p1 ** -q + 0.5 * p2 ** -q for q in range(6)]
        approx = awe_from_moments(moments, order=2)
        for q in range(4):
            assert approx.transfer_moment(q) == pytest.approx(
                moments[q], rel=1e-6)

    def test_order_reduction_on_degenerate_input(self):
        # Single-pole data requested at order 2: Hankel is singular; AWE
        # must fall back to one stable pole.
        p = -1e9
        moments = [p ** -q for q in range(6)]
        approx = awe_from_moments(moments, order=2)
        assert approx.order == 1

    def test_dominant_time_constant(self):
        p1, p2 = -1e9, -8e9
        moments = [0.6 * p1 ** -q + 0.4 * p2 ** -q for q in range(6)]
        approx = awe_from_moments(moments, order=2)
        assert approx.dominant_time_constant == pytest.approx(1e-9,
                                                              rel=1e-6)

    def test_insufficient_moments_rejected(self):
        from repro.interconnect.awe import transfer_moments_to_poles

        with pytest.raises(ValueError):
            transfer_moments_to_poles([1.0, -1.0], order=2)


class TestPiModel:
    def test_uniform_line_closed_form(self):
        pi = uniform_line_pi(1000.0, 1e-12)
        assert pi.c_near == pytest.approx(1e-12 / 6.0, rel=1e-9)
        assert pi.c_far == pytest.approx(5e-12 / 6.0, rel=1e-9)
        assert pi.r == pytest.approx(12.0 * 1000.0 / 25.0, rel=1e-9)

    def test_fine_ladder_approaches_closed_form(self):
        n = 100
        pi = wire_chain_pi([1000.0 / n] * n, [1e-12 / n] * n)
        closed = uniform_line_pi(1000.0, 1e-12)
        assert pi.r == pytest.approx(closed.r, rel=0.02)
        assert pi.c_far == pytest.approx(closed.c_far, rel=0.02)

    def test_pi_preserves_three_moments(self):
        tree = RCTree.from_chain([100.0, 300.0, 50.0],
                                 [1e-15, 3e-15, 0.5e-15])
        moments = admittance_moments(tree, 3)
        pi = pi_of_tree(tree)
        got = pi.admittance_moments()
        for a, b in zip(moments, got):
            assert b == pytest.approx(a, rel=1e-9)

    def test_total_cap_preserved(self):
        tree = RCTree.from_chain([10.0, 10.0], [1e-15, 1e-15])
        pi = pi_of_tree(tree)
        assert pi.total_cap == pytest.approx(tree.total_cap, rel=1e-12)

    def test_pure_cap_degenerates(self):
        pi = reduce_to_pi([1e-12, 0.0, 0.0])
        assert pi.r == 0.0
        assert pi.c_near == pytest.approx(1e-12)

    def test_invalid_moments_rejected(self):
        with pytest.raises(ValueError):
            reduce_to_pi([-1.0, 0.0, 0.0])
        with pytest.raises(ValueError):
            reduce_to_pi([1.0, 0.0])

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 999), n=st.integers(1, 10))
    def test_pi_moment_match_property(self, seed, n):
        rng = np.random.default_rng(seed)
        rs = rng.uniform(1.0, 500.0, n)
        cs = rng.uniform(0.1e-15, 10e-15, n)
        tree = RCTree.from_chain(rs, cs)
        pi = wire_chain_pi(rs, cs)
        if pi.r == 0.0:
            return
        moments = admittance_moments(tree, 3)
        got = pi.admittance_moments()
        for a, b in zip(moments, got):
            assert b == pytest.approx(a, rel=1e-6)
