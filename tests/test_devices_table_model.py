"""Tests for the tabular device model (the QWM-side model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import CMOSP35, TableModelLibrary

TECH = CMOSP35
W, L = 1e-6, TECH.lmin


def fd(f, x, h=2e-4):
    return (f(x + h) - f(x - h)) / (2.0 * h)


@pytest.fixture(scope="module")
def ntab(library):
    return library.get("n")


@pytest.fixture(scope="module")
def ptab(library):
    return library.get("p")


class TestAccuracy:
    def test_matches_golden_within_two_percent(self, ntab, nmos):
        ion = nmos.ids(W, L, TECH.vdd, TECH.vdd, 0.0)
        rng = np.random.default_rng(7)
        worst = 0.0
        for _ in range(300):
            vg, va, vb = rng.uniform(0.0, TECH.vdd, 3)
            err = abs(ntab.iv(W, L, vg, va, vb) - nmos.ids(W, L, vg, va, vb))
            worst = max(worst, err / ion)
        assert worst < 0.02

    def test_pmos_matches_golden(self, ptab, pmos):
        ion = abs(pmos.ids(W, L, 0.0, TECH.vdd, 0.0))
        rng = np.random.default_rng(8)
        for _ in range(200):
            vg, va, vb = rng.uniform(0.0, TECH.vdd, 3)
            err = abs(ptab.iv(W, L, vg, va, vb) - pmos.ids(W, L, vg, va, vb))
            assert err < 0.02 * ion

    def test_on_current_sign_nmos(self, ntab):
        assert ntab.iv(W, L, TECH.vdd, TECH.vdd, 0.0) > 1e-4
        assert ntab.iv(W, L, TECH.vdd, 0.0, TECH.vdd) < -1e-4

    def test_on_current_sign_pmos(self, ptab):
        assert ptab.iv(W, L, 0.0, TECH.vdd, 0.0) > 1e-5
        assert ptab.iv(W, L, 0.0, 0.0, TECH.vdd) < -1e-5

    def test_width_scaling(self, ntab):
        i1 = ntab.iv(1e-6, L, 2.5, 3.0, 0.0)
        i2 = ntab.iv(3e-6, L, 2.5, 3.0, 0.0)
        assert i2 == pytest.approx(3.0 * i1, rel=1e-12)

    def test_wrong_length_rejected(self, ntab):
        with pytest.raises(ValueError):
            ntab.iv(W, 2 * L, 2.0, 1.0, 0.0)


class TestDerivatives:
    # Points sit inside the characterization grid: at the grid edges the
    # model's one-sided derivative is correct but a centered FD stencil
    # straddles the clamp and reads half of it.
    @pytest.mark.parametrize("vg,va,vb", [
        (2.0, 1.5, 0.4), (3.25, 3.0, 0.2), (2.5, 0.7, 1.9), (1.2, 2.0, 1.0),
    ])
    def test_nmos_query_derivatives(self, ntab, vg, va, vb):
        q = ntab.iv_query(W, L, vg, va, vb)
        assert q.g_gate == pytest.approx(
            fd(lambda x: ntab.iv(W, L, x, va, vb), vg), abs=3e-5)
        assert q.g_src == pytest.approx(
            fd(lambda x: ntab.iv(W, L, vg, x, vb), va), abs=3e-5)
        assert q.g_snk == pytest.approx(
            fd(lambda x: ntab.iv(W, L, vg, va, x), vb), abs=3e-5)

    @pytest.mark.parametrize("vg,va,vb", [
        (1.0, 3.0, 1.5), (0.2, 3.25, 0.5), (1.5, 1.0, 2.8),
    ])
    def test_pmos_query_derivatives(self, ptab, vg, va, vb):
        q = ptab.iv_query(W, L, vg, va, vb)
        assert q.g_gate == pytest.approx(
            fd(lambda x: ptab.iv(W, L, x, va, vb), vg), abs=3e-5)
        assert q.g_src == pytest.approx(
            fd(lambda x: ptab.iv(W, L, vg, x, vb), va), abs=3e-5)
        assert q.g_snk == pytest.approx(
            fd(lambda x: ptab.iv(W, L, vg, va, x), vb), abs=3e-5)

    @settings(max_examples=40, deadline=None)
    @given(vg=st.floats(0.2, 3.1), va=st.floats(0.2, 3.1),
           vb=st.floats(0.2, 3.1))
    def test_swap_antisymmetry_property(self, ntab, vg, va, vb):
        # vds = 0 exactly is degenerate: the fitted intercept t0 (a sub-
        # microamp fitting residual) breaks the sign flip there.
        if abs(va - vb) < 1e-6:
            return
        fwd = ntab.iv(W, L, vg, va, vb)
        rev = ntab.iv(W, L, vg, vb, va)
        assert rev == pytest.approx(-fwd, rel=1e-9, abs=2e-8)


class TestThresholdAndCaps:
    def test_threshold_tracks_body_effect(self, ntab):
        low = ntab.threshold(TECH.vdd, 0.0, 0.0)
        high = ntab.threshold(TECH.vdd, 2.0, 2.0)
        assert high > low
        assert low == pytest.approx(TECH.nmos.vth0, abs=0.02)

    def test_pmos_threshold_magnitude(self, ptab):
        # PMOS source at vdd -> zero body bias -> vth0 magnitude.
        assert ptab.threshold(0.0, TECH.vdd, TECH.vdd) == pytest.approx(
            TECH.pmos.vth0, abs=0.02)

    def test_vdsat_positive_when_on(self, ntab):
        assert ntab.vdsat(TECH.vdd, 0.0, 3.3) > 0.1

    def test_cap_interfaces(self, ntab):
        assert ntab.srccap(W, L) > 0
        assert ntab.snkcap(W, L) > 0
        assert ntab.inputcap(W, L) > 0
        # Gate cap should exceed a single junction cap at this size.
        assert ntab.inputcap(W, L) > 0.2 * ntab.srccap(W, L)

    def test_query_counter_increments(self, ntab):
        before = ntab.query_count
        ntab.iv(W, L, 1.0, 2.0, 0.0)
        assert ntab.query_count == before + 1


class TestLibrary:
    def test_caches_by_polarity_and_length(self, tech):
        lib = TableModelLibrary(tech, grid_step=0.8)
        a = lib.get("n")
        b = lib.get("n")
        assert a is b
        assert len(lib) == 1
        lib.get("p")
        assert len(lib) == 2

    def test_new_length_gets_new_table(self, tech):
        lib = TableModelLibrary(tech, grid_step=0.8)
        a = lib.get("n")
        c = lib.get("n", l=2 * tech.lmin)
        assert a is not c
        assert c.grid.l_ref == pytest.approx(2 * tech.lmin)

    def test_rejects_bad_polarity(self, tech):
        lib = TableModelLibrary(tech)
        with pytest.raises(ValueError):
            lib.get("x")

    def test_golden_access(self, tech):
        lib = TableModelLibrary(tech)
        assert lib.golden("n").polarity == "n"
        assert lib.golden("p").polarity == "p"
