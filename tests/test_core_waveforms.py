"""Tests for piecewise-quadratic waveform objects."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PiecewiseQuadraticWaveform, QuadraticPiece


class TestQuadraticPiece:
    def test_evaluation(self):
        p = QuadraticPiece(t0=0.0, t1=2.0, v0=1.0, slope=2.0, curve=0.5)
        assert p.value(0.0) == 1.0
        assert p.value(1.0) == pytest.approx(1.0 + 2.0 + 0.5)
        assert p.derivative(1.0) == pytest.approx(2.0 + 1.0)
        assert p.end_value() == pytest.approx(1.0 + 4.0 + 2.0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            QuadraticPiece(t0=1.0, t1=1.0, v0=0.0, slope=0.0, curve=0.0)

    def test_linear_crossing(self):
        p = QuadraticPiece(t0=0.0, t1=10.0, v0=0.0, slope=1.0, curve=0.0)
        assert p.crossing(5.0) == pytest.approx(5.0)
        assert p.crossing(20.0) is None

    def test_quadratic_crossing_earliest_root(self):
        # v(t) = t^2 - 4t + 3 = (t-1)(t-3): level 0 hit first at t=1.
        p = QuadraticPiece(t0=0.0, t1=10.0, v0=3.0, slope=-4.0, curve=1.0)
        assert p.crossing(0.0) == pytest.approx(1.0)

    def test_flat_piece_no_crossing(self):
        p = QuadraticPiece(t0=0.0, t1=1.0, v0=2.0, slope=0.0, curve=0.0)
        assert p.crossing(1.0) is None


class TestWaveform:
    @pytest.fixture
    def falling(self):
        # 3.3 -> 1.3 -> 0.3 over two pieces.
        return PiecewiseQuadraticWaveform([
            QuadraticPiece(0.0, 1.0, 3.3, -2.0, 0.0),
            QuadraticPiece(1.0, 2.0, 1.3, -1.0, 0.0),
        ])

    def test_holds_outside_span(self, falling):
        assert falling.value(-1.0) == 3.3
        assert falling.value(10.0) == pytest.approx(0.3)
        assert falling.derivative(-1.0) == 0.0

    def test_value_inside(self, falling):
        assert falling.value(0.5) == pytest.approx(2.3)
        assert falling.value(1.5) == pytest.approx(0.8)

    def test_crossing_spans_pieces(self, falling):
        assert falling.crossing_time(2.0) == pytest.approx(0.65)
        assert falling.crossing_time(1.0) == pytest.approx(1.3)
        assert falling.crossing_time(0.1) is None

    def test_breakpoints(self, falling):
        np.testing.assert_allclose(falling.breakpoints, [0.0, 1.0, 2.0])

    def test_sampling(self, falling):
        samples = falling.sample(np.array([0.0, 0.5, 1.0, 2.0]))
        np.testing.assert_allclose(samples, [3.3, 2.3, 1.3, 0.3],
                                   atol=1e-12)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PiecewiseQuadraticWaveform([])

    def test_rejects_overlapping_pieces(self):
        with pytest.raises(ValueError):
            PiecewiseQuadraticWaveform([
                QuadraticPiece(0.0, 2.0, 1.0, 0.0, 0.0),
                QuadraticPiece(1.0, 3.0, 1.0, 0.0, 0.0),
            ])

    @settings(max_examples=50, deadline=None)
    @given(v0=st.floats(0.1, 3.3), slope=st.floats(-5.0, -0.1),
           curve=st.floats(-1.0, 1.0))
    def test_crossing_consistency_property(self, v0, slope, curve):
        # Whenever a crossing is reported, evaluating there returns the
        # level (round trip).
        wave = PiecewiseQuadraticWaveform([
            QuadraticPiece(0.0, 1.0, v0, slope, curve)])
        level = v0 / 2.0
        t = wave.crossing_time(level)
        if t is not None:
            assert wave.value(t) == pytest.approx(level, abs=1e-9)

    def test_continuity_of_qwm_style_chain(self):
        # Pieces built the way the scheduler records them chain
        # continuously when linked through end values.
        pieces = []
        v, t = 3.3, 0.0
        for dt, slope, curve in [(0.3, -4.0, 1.0), (0.5, -2.0, 0.5),
                                 (0.7, -1.0, 0.2)]:
            pieces.append(QuadraticPiece(t, t + dt, v, slope, curve))
            v = pieces[-1].end_value()
            t += dt
        wave = PiecewiseQuadraticWaveform(pieces)
        for boundary in wave.breakpoints[1:-1]:
            left = wave.value(boundary - 1e-12)
            right = wave.value(boundary + 1e-12)
            assert left == pytest.approx(right, abs=1e-6)


class TestWaveformAlgebra:
    def _ramp_wave(self):
        # 3.3 -> 0 linearly over [0, 1].
        return PiecewiseQuadraticWaveform([
            QuadraticPiece(0.0, 1.0, 3.3, -3.3, 0.0)])

    def test_integral_of_linear_fall(self):
        wave = self._ramp_wave()
        assert wave.integral(0.0, 1.0) == pytest.approx(3.3 / 2.0)

    def test_integral_includes_flat_extensions(self):
        wave = self._ramp_wave()
        # 1s of leading flat 3.3 plus the ramp plus 1s trailing flat 0.
        assert wave.integral(-1.0, 2.0) == pytest.approx(3.3 + 1.65)

    def test_integral_of_quadratic(self):
        wave = PiecewiseQuadraticWaveform([
            QuadraticPiece(0.0, 2.0, 0.0, 0.0, 1.0)])  # v = t^2
        assert wave.integral(0.0, 2.0) == pytest.approx(8.0 / 3.0)

    def test_integral_validates_order(self):
        with pytest.raises(ValueError):
            self._ramp_wave().integral(1.0, 0.0)

    def test_average(self):
        assert self._ramp_wave().average(0.0, 1.0) == pytest.approx(1.65)

    def test_shifted_preserves_shape(self):
        wave = self._ramp_wave()
        moved = wave.shifted(5.0)
        assert moved.value(5.5) == pytest.approx(wave.value(0.5))
        assert moved.t_start == pytest.approx(5.0)

    def test_tangent_ramp_of_linear_fall(self):
        wave = self._ramp_wave()
        fit = wave.tangent_ramp(3.3)
        assert fit is not None
        t_start, t_rise, v0, v1 = fit
        assert v0 == pytest.approx(3.3)
        assert v1 == 0.0
        assert t_start == pytest.approx(0.0, abs=1e-9)
        assert t_rise == pytest.approx(1.0, rel=1e-6)

    def test_tangent_ramp_rising(self):
        wave = PiecewiseQuadraticWaveform([
            QuadraticPiece(0.0, 2.0, 0.0, 1.65, 0.0)])  # 0 -> 3.3
        fit = wave.tangent_ramp(3.3)
        t_start, t_rise, v0, v1 = fit
        assert (v0, v1) == (0.0, 3.3)
        assert t_rise == pytest.approx(2.0, rel=1e-6)

    def test_tangent_ramp_none_for_static(self):
        wave = PiecewiseQuadraticWaveform([
            QuadraticPiece(0.0, 1.0, 3.3, 0.0, 0.0)])
        assert wave.tangent_ramp(3.3) is None
