"""The ``code`` rule pack: determinism/concurrency static analysis.

Three layers of coverage:

* rule unit tests over synthetic sources (``CodeContext.from_sources``),
* the baseline mechanism (new finding fails, baselined passes, stale
  entry warns),
* the seeded-mutation test required by the issue: copy ``src/repro`` to
  a temp tree, inject an unordered-set iteration into
  ``analysis/parallel.py``, and assert DET001 catches it.
"""

import json
import os
import shutil

import pytest

import repro
from repro.cli import main
from repro.lint import (
    Baseline,
    BaselineEntry,
    CodeContext,
    LintContext,
    LintRunner,
    STALE_BASELINE_ID,
    default_scan_root,
    lint_code,
    to_sarif,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_code_rules(sources, **runner_kwargs):
    """Lint a dict of {relpath: source} with the code pack only."""
    code = CodeContext.from_sources(sources)
    runner_kwargs.setdefault("packs", ["code"])
    runner = LintRunner(**runner_kwargs)
    return runner.run(LintContext.from_code(code))


def rules_hit(report):
    return {d.rule for d in report}


# ---------------------------------------------------------------------------
# Determinism family


def test_det001_flags_set_iteration_into_list():
    report = run_code_rules({"analysis/acc.py": (
        "def collect(items):\n"
        "    seen = set(items)\n"
        "    out = []\n"
        "    for item in seen:\n"
        "        out.append(item)\n"
        "    return out\n"
    )})
    assert "DET001-unordered-iteration" in rules_hit(report)
    (diag,) = [d for d in report if d.rule.startswith("DET001")]
    assert diag.location.container == "analysis/acc.py"
    assert diag.location.element == "collect"


def test_det001_sorted_iteration_is_clean():
    report = run_code_rules({"analysis/acc.py": (
        "def collect(items):\n"
        "    seen = set(items)\n"
        "    out = []\n"
        "    for item in sorted(seen):\n"
        "        out.append(item)\n"
        "    return out\n"
    )})
    assert "DET001-unordered-iteration" not in rules_hit(report)


def test_det001_order_insensitive_reduction_is_clean():
    # sum() over a set is order-independent; no finding.
    report = run_code_rules({"analysis/acc.py": (
        "def total(items):\n"
        "    seen = set(items)\n"
        "    return sum(v for v in seen) + len(seen)\n"
    )})
    assert "DET001-unordered-iteration" not in rules_hit(report)


def test_det002_unseeded_rng_flagged_seeded_ok():
    report = run_code_rules({"analysis/jitter.py": (
        "import random\n"
        "import numpy as np\n"
        "def noisy():\n"
        "    return random.random()\n"
        "def seeded():\n"
        "    rng = np.random.default_rng(1234)\n"
        "    return rng.normal()\n"
    )})
    hits = [d for d in report if d.rule.startswith("DET002")]
    assert len(hits) == 1
    assert hits[0].location.element == "noisy"


def test_det002_exempt_in_chaos_harness():
    report = run_code_rules({"resilience/chaos.py": (
        "import random\n"
        "def shake():\n"
        "    return random.random()\n"
    )})
    assert "DET002-unseeded-rng" not in rules_hit(report)


def test_det003_wall_clock_in_result_code():
    report = run_code_rules({"core/solve.py": (
        "import time\n"
        "def solve(x):\n"
        "    return x + time.time()\n"
    )})
    assert "DET003-wall-clock" in rules_hit(report)


def test_det003_metrics_sink_is_exempt():
    report = run_code_rules({"analysis/timed.py": (
        "import time\n"
        "def solve(x, metrics):\n"
        "    start = time.monotonic()\n"
        "    y = x * 2\n"
        "    metrics.observe('solve_s', time.monotonic() - start)\n"
        "    return y\n"
    )})
    assert "DET003-wall-clock" not in rules_hit(report)


def test_det004_float_equality_in_kernel_only():
    src = ("def check(v):\n"
           "    return v == 0.5\n")
    kernel = run_code_rules({"linalg/cmp.py": src})
    outside = run_code_rules({"io/cmp.py": src})
    assert "DET004-float-equality" in rules_hit(kernel)
    assert "DET004-float-equality" not in rules_hit(outside)


def test_det005_unsorted_listdir():
    report = run_code_rules({"analysis/scan.py": (
        "import os\n"
        "def decks(root):\n"
        "    return [f for f in os.listdir(root)]\n"
        "def decks_sorted(root):\n"
        "    return sorted(os.listdir(root))\n"
    )})
    hits = [d for d in report if d.rule.startswith("DET005")]
    assert len(hits) == 1
    assert hits[0].location.element == "decks"


# ---------------------------------------------------------------------------
# Concurrency family


WORKER_GLOBAL = (
    "from concurrent.futures import ThreadPoolExecutor\n"
    "_CACHE = {}\n"
    "def _work(key):\n"
    "    _CACHE[key] = key * 2\n"
    "    return _CACHE[key]\n"
    "def run_all(keys):\n"
    "    with ThreadPoolExecutor() as pool:\n"
    "        futures = [pool.submit(_work, k) for k in keys]\n"
    "    return [f.result() for f in futures]\n"
)


def test_conc001_worker_mutates_module_global():
    report = run_code_rules({"analysis/pool.py": WORKER_GLOBAL})
    hits = [d for d in report if d.rule.startswith("CONC001")]
    assert hits and hits[0].location.element == "_work"


def test_conc001_lock_guard_is_exempt():
    report = run_code_rules({"analysis/pool.py": (
        "import threading\n"
        "from concurrent.futures import ThreadPoolExecutor\n"
        "_CACHE = {}\n"
        "_LOCK = threading.Lock()\n"
        "def _work(key):\n"
        "    with _LOCK:\n"
        "        _CACHE[key] = key * 2\n"
        "    return key\n"
        "def run_all(keys):\n"
        "    with ThreadPoolExecutor() as pool:\n"
        "        return [pool.submit(_work, k) for k in keys]\n"
    )})
    assert "CONC001-worker-global-mutation" not in rules_hit(report)


def test_conc003_bare_except_is_error():
    report = run_code_rules({"analysis/sweep.py": (
        "def run(solver):\n"
        "    try:\n"
        "        return solver()\n"
        "    except:\n"
        "        pass\n"
    )})
    hits = [d for d in report if d.rule.startswith("CONC003")]
    assert hits and hits[0].severity.name == "ERROR"


def test_conc004_environ_write_flagged():
    report = run_code_rules({"analysis/cfg.py": (
        "import os\n"
        "def configure(n):\n"
        "    os.environ['OMP_NUM_THREADS'] = str(n)\n"
    )})
    assert "CONC004-env-mutation" in rules_hit(report)


def test_code001_unparseable_source():
    report = run_code_rules({"analysis/broken.py": "def oops(:\n"})
    assert "CODE001-unparseable-source" in rules_hit(report)


# ---------------------------------------------------------------------------
# Baseline mechanism (satellite 3)


def baselined_report():
    return run_code_rules({"analysis/acc.py": (
        "def collect(items):\n"
        "    for item in set(items):\n"
        "        print(item)\n"
    )})


def test_baseline_new_finding_fails():
    report = baselined_report()
    result = Baseline().apply(report)
    assert result.report.errors
    assert not result.suppressed and not result.stale


def test_baseline_matched_finding_is_suppressed():
    report = baselined_report()
    entry = BaselineEntry(rule="DET001", path="analysis/acc.py",
                          symbol="collect", reason="test fixture")
    result = Baseline([entry]).apply(report)
    assert not result.report.errors
    assert len(result.suppressed) == 1
    assert not result.stale


def test_baseline_stale_entry_warns():
    report = run_code_rules({"analysis/ok.py": "x = 1\n"})
    entry = BaselineEntry(rule="DET001", path="analysis/gone.py",
                          symbol="collect", reason="fixed long ago")
    result = Baseline([entry]).apply(report)
    assert result.stale == [entry]
    assert any(d.rule == STALE_BASELINE_ID
               for d in result.report.warnings)


def test_baseline_empty_reason_rejected(tmp_path):
    path = tmp_path / "base.json"
    path.write_text(json.dumps({
        "schema_version": 1,
        "entries": [{"rule": "DET001", "path": "a.py",
                     "symbol": "f", "reason": "  "}],
    }))
    with pytest.raises(ValueError, match="justification"):
        Baseline.load(str(path))


def test_baseline_roundtrip(tmp_path):
    entry = BaselineEntry(rule="DET004", path="core/x.py",
                          symbol="f", reason="rail tag compare")
    path = tmp_path / "base.json"
    path.write_text(json.dumps(Baseline([entry]).to_json()))
    loaded = Baseline.load(str(path))
    assert loaded.entries == [entry]


# ---------------------------------------------------------------------------
# Self-scan and the seeded-mutation acceptance test


def test_self_scan_is_clean_under_checked_in_baseline():
    report = lint_code(default_scan_root())
    baseline = Baseline.load(os.path.join(REPO_ROOT,
                                          ".lint-baseline.json"))
    result = baseline.apply(report)
    assert not result.report.errors, \
        result.report.format_text()
    assert not result.report.warnings, \
        result.report.format_text()
    assert not result.stale


MUTATION = (
    "\n\n"
    "def _merge_pending_nets(pending):\n"
    "    pending = set(pending)\n"
    "    merged = []\n"
    "    for net in pending:\n"
    "        merged.append(net)\n"
    "    return merged\n"
)


def test_seeded_mutation_in_parallel_is_caught(tmp_path):
    """Inject an unordered-set iteration into analysis/parallel.py."""
    scan = tmp_path / "repro"
    shutil.copytree(os.path.dirname(repro.__file__), scan,
                    ignore=shutil.ignore_patterns("__pycache__"))
    target = scan / "analysis" / "parallel.py"
    target.write_text(target.read_text() + MUTATION)

    report = lint_code(str(scan))
    # The pre-existing accepted findings still appear (no baseline
    # here), plus exactly one new DET001 in the mutated function.
    det = [d for d in report if d.rule.startswith("DET001")]
    assert len(det) == 1
    assert det[0].location.container.endswith("analysis/parallel.py")
    assert det[0].location.element == "_merge_pending_nets"


def test_unmutated_copy_has_no_det001(tmp_path):
    scan = tmp_path / "repro"
    shutil.copytree(os.path.dirname(repro.__file__), scan,
                    ignore=shutil.ignore_patterns("__pycache__"))
    report = lint_code(str(scan))
    assert not [d for d in report if d.rule.startswith("DET001")]


# ---------------------------------------------------------------------------
# CLI integration


def test_cli_code_json_and_sarif(tmp_path, capsys):
    sarif_path = tmp_path / "out.sarif"
    code = main(["lint", "--code",
                 "--baseline",
                 os.path.join(REPO_ROOT, ".lint-baseline.json"),
                 "--format", "json",
                 "--sarif", str(sarif_path),
                 "--fail-on", "warning"])
    data = json.loads(capsys.readouterr().out)
    assert code == 0
    assert data["schema_version"] == 2
    assert data["diagnostics"] == []
    assert data["baseline"]["suppressed"] == 5
    assert data["baseline"]["stale"] == 0

    sarif = json.loads(sarif_path.read_text())
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    # The five baselined findings are present but marked suppressed.
    assert len(run["results"]) == 5
    assert all(r["suppressions"][0]["kind"] == "external"
               for r in run["results"])


def test_cli_code_fails_on_new_finding(tmp_path, capsys):
    scan = tmp_path / "repro"
    (scan / "analysis").mkdir(parents=True)
    (scan / "analysis" / "bad.py").write_text(
        "def emit(nets):\n"
        "    for net in set(nets):\n"
        "        print(net)\n")
    code = main(["lint", "--code", "--root", str(scan),
                 "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET001-unordered-iteration" in out


def test_cli_lint_requires_deck_or_code(capsys):
    assert main(["lint"]) == 2


def test_sarif_physical_location_prefix():
    report = run_code_rules({"analysis/acc.py": (
        "def collect(items):\n"
        "    for item in set(items):\n"
        "        print(item)\n"
    )})
    sarif = to_sarif(report)
    (run,) = sarif["runs"]
    uri = run["results"][0]["locations"][0][
        "physicalLocation"]["artifactLocation"]["uri"]
    assert uri == "src/repro/analysis/acc.py"
