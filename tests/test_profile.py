"""Phase-level cost-attribution profiler (``repro.obs.profile``).

Pins down the ledger arithmetic (self vs cumulative time, op
accumulation, merge commutativity), the disabled-mode overhead budget,
the parallel-backend merge contract (process workers agree with the
serial engine bit-for-bit on every operation count), the speedscope /
collapsed-stack exports, and the CLI surfaces (``repro profile``,
``repro stats`` resilience section, ``repro bench-diff`` phase
attribution).
"""

import json
import time

import pytest

from repro.analysis import StaticTimingAnalyzer
from repro.analysis.parallel import ExecutionConfig
from repro.circuit import builders, extract_stages
from repro.cli import main
from repro.obs.profile import (
    LEDGER_FORMAT,
    NOOP_PHASE,
    PhaseProfiler,
    ProfileConfig,
    configure_profile,
    disable_profile,
    export_speedscope,
    phase_self_seconds,
    profile_add,
    profile_phase,
    profiler,
    render_profile,
    summarize_profile,
    to_collapsed,
    to_speedscope,
)
from repro.spice import ConstantSource, StepSource


@pytest.fixture(autouse=True)
def _profiler_off():
    """Every test starts and ends with the module profiler disabled."""
    disable_profile()
    yield
    disable_profile()


def _cells_by_path(ledger):
    return {tuple(cell["path"]): cell for cell in ledger["cells"]}


# ----------------------------------------------------------------------
# Ledger arithmetic
# ----------------------------------------------------------------------
class TestLedger:
    def test_nesting_splits_self_and_cumulative(self):
        prof = PhaseProfiler(ProfileConfig(enabled=True))
        with prof.phase("outer"):
            time.sleep(0.002)
            with prof.phase("inner"):
                time.sleep(0.005)
        cells = _cells_by_path(prof.to_json())
        outer = cells[("outer",)]
        inner = cells[("outer", "inner")]
        assert outer["calls"] == 1 and inner["calls"] == 1
        # The child's wall time is excluded from the parent's self time.
        assert inner["self_seconds"] >= 0.004
        assert outer["self_seconds"] < inner["self_seconds"]
        summary = summarize_profile(prof.to_json())
        frames = {f["frame"]: f for f in summary["frames"]}
        outer_cum = frames["outer"]["cum_seconds"]
        inner_cum = frames["inner"]["cum_seconds"]
        assert outer_cum >= inner_cum
        assert outer_cum == pytest.approx(
            outer["self_seconds"] + inner["self_seconds"])

    def test_tag_joins_into_frame_label(self):
        prof = PhaseProfiler(ProfileConfig(enabled=True))
        with prof.phase("qwm.phase3", tag="crossing"):
            pass
        assert ("qwm.phase3:crossing",) in _cells_by_path(prof.to_json())

    def test_ops_accumulate_within_a_frame(self):
        prof = PhaseProfiler(ProfileConfig(enabled=True))
        with prof.phase("solve") as frame:
            frame.count("newton_iterations", 3)
            frame.count("newton_iterations", 2)
            frame.count("regions")
        ops = _cells_by_path(prof.to_json())[("solve",)]["ops"]
        assert ops == {"newton_iterations": 5, "regions": 1}

    def test_add_attributes_to_current_frame_or_root(self):
        prof = PhaseProfiler(ProfileConfig(enabled=True))
        with prof.phase("outer"):
            prof.add("solves", 2)
        prof.add("cache_hits", root="sta.cache")
        cells = _cells_by_path(prof.to_json())
        assert cells[("outer",)]["ops"] == {"solves": 2}
        assert cells[("sta.cache",)]["ops"] == {"cache_hits": 1}

    def test_merge_is_commutative(self):
        def payload(n):
            prof = PhaseProfiler(ProfileConfig(enabled=True))
            with prof.phase("a") as frame:
                frame.count("x", n)
                with prof.phase("b"):
                    prof.add("y", n)
            return prof.drain()

        one, two = payload(1), payload(2)
        ab = PhaseProfiler(ProfileConfig(enabled=True))
        ba = PhaseProfiler(ProfileConfig(enabled=True))
        ab.merge(one), ab.merge(two)
        ba.merge(two), ba.merge(one)
        assert ab.to_json() == ba.to_json()
        merged = _cells_by_path(ab.to_json())
        assert merged[("a",)]["ops"] == {"x": 3}
        assert merged[("a", "b")]["ops"] == {"y": 3}
        assert merged[("a",)]["calls"] == 2

    def test_drain_snapshots_and_resets(self):
        prof = PhaseProfiler(ProfileConfig(enabled=True))
        with prof.phase("a"):
            pass
        first = prof.drain()
        assert first["format"] == LEDGER_FORMAT
        assert len(first["cells"]) == 1
        assert prof.stats() == {"cells": 0, "dropped": 0}
        assert prof.drain()["cells"] == []

    def test_max_cells_cap_counts_drops(self):
        prof = PhaseProfiler(ProfileConfig(enabled=True, max_cells=2))
        for root in ("a", "b", "c", "d"):
            prof.add("x", root=root)
        stats = prof.stats()
        assert stats["cells"] == 2
        assert stats["dropped"] == 2
        assert prof.to_json()["dropped_cells"] == 2

    def test_disabled_helpers_are_noops(self):
        assert not profiler().enabled
        assert profile_phase("x", tag="y") is NOOP_PHASE
        with profile_phase("x") as frame:
            frame.count("op")
        profile_add("op")
        assert profiler().stats() == {"cells": 0, "dropped": 0}


# ----------------------------------------------------------------------
# Overhead budget: <1% of a solve with the profiler off.
# ----------------------------------------------------------------------
def _nand3_sources(tech):
    sources = {"a0": StepSource(0.0, tech.vdd, 0.0)}
    for name in ("a1", "a2"):
        sources[name] = ConstantSource(tech.vdd)
    return sources


def test_disabled_overhead_under_one_percent(tech, evaluator):
    """Disabled profiler hooks cost < 1% of a NAND3 solve.

    Same arithmetic-budget style as the telemetry overhead test:
    (per-call cost of the disabled helpers) x (a generous over-estimate
    of hook sites per solve) against the solve's own wall time.
    """
    n_calls = 20000
    start = time.perf_counter()
    for _ in range(n_calls):
        with profile_phase("x", tag="y"):
            pass
        profile_add("op")
    per_op = (time.perf_counter() - start) / n_calls

    stage = builders.nand_gate(tech, 3)
    solution = evaluator.evaluate(stage, output="out",
                                  direction="fall",
                                  inputs=_nand3_sources(tech))
    stats = solution.stats
    # Hook sites per solve: one phase frame + ~4 counts per region,
    # one add per Newton iteration, a fixed handful elsewhere — then
    # doubled for margin.
    ops = 2 * (5 * stats.steps + stats.newton_iterations + 20)
    overhead = ops * per_op
    assert overhead < 0.01 * stats.wall_time + 1e-4, (
        f"disabled profiler overhead {overhead * 1e6:.1f}us vs "
        f"solve {stats.wall_time * 1e6:.1f}us")


# ----------------------------------------------------------------------
# Parallel-backend merging: workers change scheduling, never the counts.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def decoder_graph(tech):
    return extract_stages(builders.decoder_netlist(tech, bits=2),
                          tech=tech)


def _profiled_op_totals(tech, library, graph, backend, workers):
    """Operation counts per frame path for one profiled analysis.

    Device characterization subtrees are excluded: process workers
    re-characterize in their own address space while the warm serial
    library never does, so those frames differ by construction. Every
    solver-side count must still agree bit-for-bit.
    """
    configure_profile(ProfileConfig(enabled=True))
    try:
        analyzer = StaticTimingAnalyzer(
            tech, library=library,
            execution=ExecutionConfig(workers=workers, backend=backend))
        analyzer.analyze(graph)
        ledger = profiler().drain()
    finally:
        disable_profile()
    totals = {}
    for cell in ledger["cells"]:
        path = tuple(cell["path"])
        if any(label.startswith("device.characterize")
               for label in path):
            continue
        for op, amount in cell["ops"].items():
            totals[path + (op,)] = totals.get(path + (op,), 0) + amount
    return totals


def test_thread_backend_counts_match_serial(tech, library,
                                            decoder_graph):
    """Thread workers merge into the same solver counts as serial.

    ``table_evaluations`` is excluded here: threads share the library's
    table objects, so the per-solve query meter attributes a query to
    whichever concurrent solve drains the shared counter first.  The
    totals the solver controls directly (regions, Newton iterations,
    linear solves, ...) must still agree exactly; the process backend
    test below covers every op including table queries because each
    worker owns its tables.
    """
    def solver_ops(totals):
        return {key: amount for key, amount in totals.items()
                if key[-1] != "table_evaluations"}

    serial = _profiled_op_totals(tech, library, decoder_graph,
                                 "serial", 1)
    threaded = _profiled_op_totals(tech, library, decoder_graph,
                                   "thread", 2)
    assert serial
    assert solver_ops(threaded) == solver_ops(serial)


@pytest.mark.slow
def test_process_backend_counts_match_serial_and_repeat(
        tech, library, decoder_graph):
    """Process-pool ledgers merge to the serial counts, repeatably.

    Workers drain their ledger per task and ship the delta with the
    payload; commutative cell-wise merging makes the parent's totals
    independent of worker scheduling — so two process runs and a serial
    run must agree on every operation count exactly.
    """
    serial = _profiled_op_totals(tech, library, decoder_graph,
                                 "serial", 1)
    first = _profiled_op_totals(tech, library, decoder_graph,
                                "process", 2)
    second = _profiled_op_totals(tech, library, decoder_graph,
                                 "process", 2)
    assert serial, "serial run recorded no profiled operations"
    assert any(path[-1] == "newton_iterations" for path in serial)
    assert first == serial
    assert second == first


# ----------------------------------------------------------------------
# Exports: collapsed stacks and speedscope JSON.
# ----------------------------------------------------------------------
#: Minimal structural schema for speedscope's file format (the subset
#: the exporter emits); validated with jsonschema when available and
#: by hand below either way.
SPEEDSCOPE_SCHEMA = {
    "type": "object",
    "required": ["$schema", "shared", "profiles"],
    "properties": {
        "$schema": {
            "const": "https://www.speedscope.app/file-format-schema.json"},
        "shared": {
            "type": "object",
            "required": ["frames"],
            "properties": {
                "frames": {
                    "type": "array",
                    "items": {"type": "object",
                              "required": ["name"],
                              "properties": {"name": {"type": "string"}}},
                },
            },
        },
        "profiles": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["type", "name", "unit", "startValue",
                             "endValue", "samples", "weights"],
                "properties": {
                    "type": {"const": "sampled"},
                    "unit": {"const": "seconds"},
                    "samples": {"type": "array",
                                "items": {"type": "array",
                                          "items": {"type": "integer"}}},
                    "weights": {"type": "array",
                                "items": {"type": "number"}},
                },
            },
        },
        "activeProfileIndex": {"type": "integer"},
        "exporter": {"type": "string"},
    },
}


def _sample_ledger():
    prof = PhaseProfiler(ProfileConfig(enabled=True))
    with prof.phase("sta.arc", tag="nand2"):
        with prof.phase("engine.evaluate", tag="nand2") as frame:
            frame.count("regions", 4)
            time.sleep(0.002)
        time.sleep(0.001)
    return prof.to_json()


class TestExports:
    def test_speedscope_structure(self):
        doc = to_speedscope(_sample_ledger(), name="unit")
        frames = doc["shared"]["frames"]
        profile = doc["profiles"][0]
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json")
        assert doc["activeProfileIndex"] == 0
        assert doc["exporter"] == "repro.obs.profile"
        assert all(isinstance(f["name"], str) for f in frames)
        assert profile["type"] == "sampled"
        assert profile["unit"] == "seconds"
        assert profile["startValue"] == 0
        assert len(profile["samples"]) == len(profile["weights"])
        assert len(profile["samples"]) > 0
        for stack in profile["samples"]:
            assert stack, "empty sample stack"
            assert all(0 <= idx < len(frames) for idx in stack)
        assert profile["endValue"] == pytest.approx(
            sum(profile["weights"]))
        assert all(w >= 0 for w in profile["weights"])

    def test_speedscope_validates_against_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(to_speedscope(_sample_ledger()),
                            SPEEDSCOPE_SCHEMA)

    def test_export_speedscope_round_trip(self, tmp_path):
        path = tmp_path / "profile.speedscope.json"
        export_speedscope(_sample_ledger(), str(path), name="unit")
        doc = json.loads(path.read_text())
        assert doc["profiles"][0]["name"] == "unit"
        stacks = {tuple(frame["name"] for frame in
                        (doc["shared"]["frames"][i] for i in stack))
                  for stack in doc["profiles"][0]["samples"]}
        assert ("sta.arc:nand2", "engine.evaluate:nand2") in stacks

    def test_collapsed_stacks_format(self):
        text = to_collapsed(_sample_ledger())
        lines = text.strip().splitlines()
        assert lines
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and int(weight) >= 0
        assert any(line.startswith("sta.arc:nand2;engine.evaluate:nand2 ")
                   for line in lines)

    def test_summary_render_and_self_seconds(self):
        ledger = _sample_ledger()
        summary = summarize_profile(ledger)
        text = render_profile(summary, top=5)
        assert "engine.evaluate:nand2" in text
        self_times = phase_self_seconds(ledger)
        assert set(self_times) == {
            "sta.arc:nand2", "engine.evaluate:nand2"}
        assert summary["total_seconds"] == pytest.approx(
            sum(self_times.values()))


# ----------------------------------------------------------------------
# CLI surfaces.
# ----------------------------------------------------------------------
INV_DECK = """
Mp out a VDD VDD pmos W=2u L=0.35u
Mn out a 0 0 nmos W=1u L=0.35u
Cout out 0 5f
.input a
.output out
"""


class TestCli:
    def test_profile_circuit_json_and_exports(self, tmp_path, capsys):
        scope = tmp_path / "prof.speedscope.json"
        collapsed = tmp_path / "prof.collapsed"
        code = main(["profile", "--circuit", "inverter",
                     "--grid-step", "0.4", "--json",
                     "--speedscope", str(scope),
                     "--collapsed", str(collapsed)])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ledger"]["format"] == LEDGER_FORMAT
        frames = [f["frame"] for f in doc["summary"]["frames"]]
        assert any("engine.evaluate" in frame for frame in frames)
        assert any("qwm.phase" in frame for frame in frames)
        assert json.loads(scope.read_text())["profiles"]
        assert collapsed.read_text().strip()
        # The subcommand owns its profiler lifecycle: off afterwards.
        assert not profiler().enabled

    def test_profile_text_report(self, capsys):
        code = main(["profile", "--circuit", "inverter",
                     "--grid-step", "0.4", "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload: inverter" in out
        assert "self" in out and "engine.evaluate:inv" in out

    def test_global_profile_flag_writes_speedscope(self, tmp_path,
                                                   capsys):
        deck = tmp_path / "inv.sp"
        deck.write_text(INV_DECK)
        scope = tmp_path / "run.speedscope.json"
        code = main(["--profile", str(scope), "stats", str(deck),
                     "--grid-step", "0.4"])
        assert code == 0
        capsys.readouterr()
        doc = json.loads(scope.read_text())
        assert doc["profiles"][0]["samples"]
        assert not profiler().enabled

    def test_stats_reports_resilience_ladder(self, tmp_path, capsys):
        from repro.resilience.ladder import QUALITY_ORDER

        deck = tmp_path / "inv.sp"
        deck.write_text(INV_DECK)
        assert main(["stats", str(deck), "--grid-step", "0.4"]) == 0
        assert "ladder escalations" in capsys.readouterr().out
        assert main(["stats", str(deck), "--grid-step", "0.4",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["resilience"]["escalations"]) == set(QUALITY_ORDER)
        assert set(doc["resilience"]["arc_quality"]) == set(QUALITY_ORDER)


class TestBenchDiffAttribution:
    def _history(self, tmp_path, prev_phases, last_phases,
                 prev_seconds=1.0, last_seconds=1.5):
        entries = [
            {"run": "headline", "git_sha": "a" * 12, "smoke": False,
             "metrics": {"qwm_total_seconds": prev_seconds,
                         "accuracy_percent": 99.0},
             "phases": prev_phases},
            {"run": "headline", "git_sha": "b" * 12, "smoke": False,
             "metrics": {"qwm_total_seconds": last_seconds,
                         "accuracy_percent": 99.0},
             "phases": last_phases},
        ]
        path = tmp_path / "BENCH_history.jsonl"
        path.write_text("".join(json.dumps(e) + "\n" for e in entries))
        return str(path)

    def test_regression_names_responsible_phase(self, tmp_path, capsys):
        history = self._history(
            tmp_path,
            {"qwm.phase3:newton": 0.50, "spice.transient:nand2": 0.30},
            {"qwm.phase3:newton": 0.92, "spice.transient:nand2": 0.31})
        code = main(["bench-diff", "--history", history])
        out = capsys.readouterr().out
        assert code == 1, "a +50% time regression must fail the diff"
        assert ("regression attributed to: qwm.phase3:newton, "
                "+84% self-time") in out
        assert ("phase attribution: largest self-time growth in "
                "qwm.phase3:newton (+84%)") in out

    def test_no_attribution_without_phases(self, tmp_path, capsys):
        history = self._history(tmp_path, {}, {})
        code = main(["bench-diff", "--history", history])
        out = capsys.readouterr().out
        assert code == 1
        assert "attributed to" not in out
        assert "phase attribution" not in out

    def test_clean_run_still_reports_attribution(self, tmp_path,
                                                 capsys):
        history = self._history(
            tmp_path,
            {"qwm.phase12:crossing": 0.40},
            {"qwm.phase12:crossing": 0.41},
            prev_seconds=1.0, last_seconds=1.0)
        code = main(["bench-diff", "--history", history])
        out = capsys.readouterr().out
        assert code == 0
        assert "no regressions beyond the band" in out
        assert ("phase attribution: largest self-time growth in "
                "qwm.phase12:crossing (+2%)") in out
