"""The ``repro lint`` CLI subcommand."""

import json

from repro.cli import main

BROKEN_DECK = """
* deliberately broken deck
M1 out a mid VDD pmos W=2u L=0.35u
M2 mid b 0 0 nmos W=0 L=0.35u
M3 f1 f2 f3 0 nmos W=1u L=0.35u
Rw1 isl_a isl_b 100
.output out
"""

NAND3_DECK = """
* clean 3-input NAND
.input a b c
M1 out a VDD VDD pmos W=4u L=0.35u
M2 out b VDD VDD pmos W=4u L=0.35u
M3 out c VDD VDD pmos W=4u L=0.35u
M4 out a n1 0 nmos W=6u L=0.35u
M5 n1 b n2 0 nmos W=6u L=0.35u
M6 n2 c 0 0 nmos W=6u L=0.35u
.output out
"""

DANGLING_DECK = """
.input a
Mp out a VDD VDD pmos W=2u L=0.35u
Mn out a 0 0 nmos W=1u L=0.35u
Rf lone1 lone2 100
.output out
"""


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def test_broken_deck_reports_multiple_rules(tmp_path, capsys):
    code = main(["lint", write(tmp_path, "broken.sp", BROKEN_DECK)])
    out = capsys.readouterr().out
    assert code == 1
    hits = {line.split()[1] for line in out.splitlines()
            if line.startswith(("error", "warning", "info"))}
    assert {"ERC001-floating-gate", "ERC004-nonpositive-geometry",
            "ERC003-pole-unreachable"} <= hits
    assert len(hits) >= 3
    # Every diagnostic carries a location.
    assert "at netlist:broken.sp" in out


def test_clean_nand3_deck_exits_zero(tmp_path, capsys):
    code = main(["lint", write(tmp_path, "nand3.sp", NAND3_DECK)])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean: no diagnostics" in out


def test_chain_deck_from_cli_suite_is_clean(tmp_path, capsys):
    from tests.test_cli_and_report import CHAIN_DECK

    code = main(["lint", write(tmp_path, "chain.sp", CHAIN_DECK)])
    assert code == 0


def test_json_golden(tmp_path, capsys):
    # The undriven wire pair is partitioned into its own (broken) stage,
    # so both the netlist-level and the stage-level views report it.
    code = main(["lint", write(tmp_path, "dangle.sp", DANGLING_DECK),
                 "--format", "json"])
    data = json.loads(capsys.readouterr().out)
    assert code == 1
    assert data == {
        "schema_version": 2,
        "diagnostics": [
            {
                "rule": "ERC003-pole-unreachable",
                "severity": "error",
                "message": "node 'lone1' unreachable from the poles",
                "location": {"scope": "stage",
                             "container": "dangle.sp.stage0",
                             "element": "lone1"},
                "hint": "connect the island to the stage's pull "
                        "network",
            },
            {
                "rule": "ERC003-pole-unreachable",
                "severity": "error",
                "message": "node 'lone2' unreachable from the poles",
                "location": {"scope": "stage",
                             "container": "dangle.sp.stage0",
                             "element": "lone2"},
                "hint": "connect the island to the stage's pull "
                        "network",
            },
            {
                "rule": "ERC005-missing-output",
                "severity": "error",
                "message": "stage has no marked outputs",
                "location": {"scope": "stage",
                             "container": "dangle.sp.stage0",
                             "element": None},
                "hint": "mark_output() the stage's observable node",
            },
            {
                "rule": "INT002-disconnected-rc",
                "severity": "warning",
                "message": "wire island {lone1, lone2} (1 segment(s)) "
                           "connects to no transistor",
                "location": {"scope": "netlist",
                             "container": "dangle.sp",
                             "element": "lone1"},
                "hint": "connect the wires to a driving stage or "
                        "delete them",
            },
        ],
        "summary": {"errors": 3, "warnings": 1, "infos": 0,
                    "rules_checked": 32},
    }


def test_disable_flag(tmp_path, capsys):
    deck = write(tmp_path, "dangle.sp", DANGLING_DECK)
    code = main(["lint", deck, "--disable", "ERC003",
                 "--disable", "ERC005", "--disable", "INT002"])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean: no diagnostics" in out


def test_severity_override_flag(tmp_path, capsys):
    deck = write(tmp_path, "dangle.sp", DANGLING_DECK)
    code = main(["lint", deck, "--severity", "ERC003=warning",
                 "--severity", "ERC005=info"])
    out = capsys.readouterr().out
    assert code == 0
    assert "warning ERC003-pole-unreachable" in out
    assert "info    ERC005-missing-output" in out


def test_bad_severity_spec_exits_two(tmp_path, capsys):
    deck = write(tmp_path, "nand3.sp", NAND3_DECK)
    assert main(["lint", deck, "--severity", "nonsense"]) == 2


def test_missing_deck_exits_two(capsys):
    assert main(["lint", "/no/such/deck.sp"]) == 2


def test_syntax_error_exits_two(tmp_path, capsys):
    deck = write(tmp_path, "bad.sp", "Mbroken out\n")
    assert main(["lint", deck]) == 2
    assert "line" in capsys.readouterr().err


def test_models_flag_lints_tables(tmp_path, capsys):
    deck = write(tmp_path, "nand3.sp", NAND3_DECK)
    code = main(["lint", deck, "--models"])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean: no diagnostics" in out
