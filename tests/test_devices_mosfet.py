"""Tests for the golden analytic MOSFET model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import CMOSP35, nmos_model, pmos_model

TECH = CMOSP35
W, L = 1e-6, TECH.lmin


def fd(f, x, h=1e-6):
    return (f(x + h) - f(x - h)) / (2.0 * h)


class TestNmosRegions:
    def test_off_device_conducts_almost_nothing(self, nmos):
        ion = nmos.ids(W, L, TECH.vdd, TECH.vdd, 0.0)
        ioff = nmos.ids(W, L, 0.0, TECH.vdd, 0.0)
        assert abs(ioff) < 1e-6 * ion

    def test_on_current_magnitude_is_plausible(self, nmos):
        # ~0.5-1.0 mA for a 1um device in a 0.35um 3.3V process.
        ion = nmos.ids(W, L, TECH.vdd, TECH.vdd, 0.0)
        assert 2e-4 < ion < 2e-3

    def test_zero_vds_zero_current(self, nmos):
        assert nmos.ids(W, L, TECH.vdd, 1.5, 1.5) == pytest.approx(0.0)

    def test_current_monotone_in_vds(self, nmos):
        vds = np.linspace(0.0, TECH.vdd, 40)
        ids = [nmos.ids(W, L, TECH.vdd, v, 0.0) for v in vds]
        assert all(b >= a - 1e-15 for a, b in zip(ids, ids[1:]))

    def test_current_monotone_in_vgs(self, nmos):
        vgs = np.linspace(0.0, TECH.vdd, 40)
        ids = [nmos.ids(W, L, v, 2.0, 0.0) for v in vgs]
        assert all(b >= a - 1e-15 for a, b in zip(ids, ids[1:]))

    def test_saturation_flag(self, nmos):
        op_sat = nmos.evaluate(W, L, 2.0, 3.3, 0.0)
        op_tri = nmos.evaluate(W, L, 3.3, 0.2, 0.0)
        assert op_sat.saturated
        assert not op_tri.saturated

    def test_continuity_at_vdsat(self, nmos):
        op = nmos.evaluate(W, L, 2.5, 3.3, 0.0)
        vdsat = op.vdsat
        below = nmos.ids(W, L, 2.5, vdsat - 1e-6, 0.0)
        above = nmos.ids(W, L, 2.5, vdsat + 1e-6, 0.0)
        assert above == pytest.approx(below, rel=1e-4)

    def test_channel_length_modulation_positive_slope(self, nmos):
        i1 = nmos.ids(W, L, 2.0, 2.5, 0.0)
        i2 = nmos.ids(W, L, 2.0, 3.3, 0.0)
        assert i2 > i1


class TestSymmetryAndBodyEffect:
    def test_source_drain_swap_negates_current(self, nmos):
        fwd = nmos.ids(W, L, 2.5, 2.0, 0.5)
        rev = nmos.ids(W, L, 2.5, 0.5, 2.0)
        assert rev == pytest.approx(-fwd, rel=1e-12)

    def test_body_effect_raises_threshold(self, nmos):
        assert nmos.threshold(2.0) > nmos.threshold(0.0)
        assert nmos.threshold(0.0) == pytest.approx(TECH.nmos.vth0)

    def test_body_effect_reduces_current(self, nmos):
        low_vsb = nmos.ids(W, L, 3.3, 1.0, 0.0)
        # Same vgs/vds but shifted up: vsb = 1 V.
        high_vsb = nmos.ids(W, L, 3.3 + 1.0, 2.0, 1.0)
        assert high_vsb < low_vsb

    def test_width_scaling_is_linear(self, nmos):
        i1 = nmos.ids(1e-6, L, 2.5, 3.0, 0.0)
        i2 = nmos.ids(2e-6, L, 2.5, 3.0, 0.0)
        assert i2 == pytest.approx(2.0 * i1, rel=1e-12)

    def test_rejects_bad_geometry(self, nmos):
        with pytest.raises(ValueError):
            nmos.ids(-1e-6, L, 1.0, 1.0, 0.0)


class TestPmos:
    def test_on_when_gate_low(self, pmos):
        ion = pmos.ids(W, L, 0.0, TECH.vdd, 0.0)
        ioff = pmos.ids(W, L, TECH.vdd, TECH.vdd, 0.0)
        assert ion > 1e-4
        assert abs(ioff) < 1e-6 * ion

    def test_weaker_than_nmos(self, nmos, pmos):
        i_n = nmos.ids(W, L, TECH.vdd, TECH.vdd, 0.0)
        i_p = pmos.ids(W, L, 0.0, TECH.vdd, 0.0)
        assert i_p < i_n

    def test_swap_negates(self, pmos):
        fwd = pmos.ids(W, L, 0.5, 3.0, 1.0)
        rev = pmos.ids(W, L, 0.5, 1.0, 3.0)
        assert rev == pytest.approx(-fwd, rel=1e-12)

    def test_threshold_magnitude(self, pmos):
        assert pmos.threshold(TECH.vdd) == pytest.approx(TECH.pmos.vth0)


class TestDerivatives:
    # Points avoid the vsb = 0 clamp boundary, where the model is
    # continuous but one-sidedly differentiable (FD cannot match there).
    @pytest.mark.parametrize("vg,va,vb", [
        (2.0, 1.5, 0.4), (2.5, 0.7, 1.9), (3.3, 3.3, 0.1),
        (1.0, 2.0, 1.9), (0.3, 3.0, 0.1),
    ])
    def test_nmos_derivatives_match_fd(self, nmos, vg, va, vb):
        op = nmos.evaluate(W, L, vg, va, vb)
        assert op.g_gate == pytest.approx(
            fd(lambda x: nmos.ids(W, L, x, va, vb), vg), abs=1e-9)
        assert op.g_src == pytest.approx(
            fd(lambda x: nmos.ids(W, L, vg, x, vb), va), abs=1e-9)
        assert op.g_snk == pytest.approx(
            fd(lambda x: nmos.ids(W, L, vg, va, x), vb), abs=1e-9)

    @pytest.mark.parametrize("vg,va,vb", [
        (1.0, 3.0, 1.5), (0.0, 3.2, 0.1), (2.0, 1.0, 2.5),
    ])
    def test_pmos_derivatives_match_fd(self, pmos, vg, va, vb):
        op = pmos.evaluate(W, L, vg, va, vb)
        assert op.g_gate == pytest.approx(
            fd(lambda x: pmos.ids(W, L, x, va, vb), vg), abs=1e-9)
        assert op.g_src == pytest.approx(
            fd(lambda x: pmos.ids(W, L, vg, x, vb), va), abs=1e-9)
        assert op.g_snk == pytest.approx(
            fd(lambda x: pmos.ids(W, L, vg, va, x), vb), abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(vg=st.floats(0.0, 3.3), va=st.floats(0.01, 3.3),
           vb=st.floats(0.01, 3.3))
    def test_derivative_property_nmos(self, nmos, vg, va, vb):
        # Skip points where the FD stencil straddles a (continuous but
        # one-sidedly differentiable) boundary: terminal swap or the
        # vsb = 0 clamp.
        if abs(va - vb) < 1e-4 or min(va, vb) < 5e-3:
            return
        op = nmos.evaluate(W, L, vg, va, vb)
        approx = fd(lambda x: nmos.ids(W, L, vg, x, vb), va)
        assert op.g_src == pytest.approx(approx, abs=2e-8)

    def test_invalid_polarity_rejected(self):
        from repro.devices.mosfet import MosfetModel

        with pytest.raises(ValueError):
            MosfetModel(polarity="x", params=TECH.nmos, lref=TECH.lmin,
                        v_bulk=0.0)
