"""Tests for the analysis layer: delay metrics, accuracy, STA."""

import numpy as np
import pytest

from repro.analysis import (
    AccuracyReport,
    StaticTimingAnalyzer,
    accuracy_percent,
    measure_delay,
    measure_slew,
)
from repro.analysis.accuracy import compare_delays, waveform_rms_error
from repro.circuit import builders, extract_stages
from repro.core import PiecewiseQuadraticWaveform, QuadraticPiece
from repro.spice import StepSource, TransientResult


@pytest.fixture
def linear_fall():
    # 3.3 V falling at 33 V/ns from t = 0.
    return PiecewiseQuadraticWaveform([
        QuadraticPiece(0.0, 100e-12, 3.3, -3.3 / 100e-12, 0.0)])


@pytest.fixture
def linear_result():
    t = np.linspace(0.0, 100e-12, 101)
    return TransientResult(times=t,
                           voltages={"out": 3.3 * (1 - t / 100e-12)})


class TestMeasureDelay:
    def test_on_piecewise_waveform(self, linear_fall):
        m = measure_delay(linear_fall, vdd=3.3, direction="fall")
        assert m.delay == pytest.approx(50e-12, rel=1e-9)

    def test_on_transient_result(self, linear_result):
        m = measure_delay(linear_result, vdd=3.3, direction="fall",
                          node="out")
        assert m.delay == pytest.approx(50e-12, rel=1e-6)

    def test_t_input_offset(self, linear_fall):
        m = measure_delay(linear_fall, vdd=3.3, direction="fall",
                          t_input=10e-12)
        assert m.delay == pytest.approx(40e-12, rel=1e-9)

    def test_custom_fraction(self, linear_fall):
        m = measure_delay(linear_fall, vdd=3.3, direction="fall",
                          fraction=0.1)
        assert m.delay == pytest.approx(90e-12, rel=1e-9)

    def test_missing_crossing_returns_none(self, linear_fall):
        # Crossing before t_input is filtered out.
        assert measure_delay(linear_fall, vdd=3.3, direction="fall",
                             t_input=90e-12) is None

    def test_node_required_for_transient(self, linear_result):
        with pytest.raises(ValueError):
            measure_delay(linear_result, vdd=3.3, direction="fall")


class TestMeasureSlew:
    def test_linear_fall_slew(self, linear_fall):
        s = measure_slew(linear_fall, vdd=3.3, direction="fall")
        assert s == pytest.approx(80e-12, rel=1e-9)

    def test_transient_slew(self, linear_result):
        s = measure_slew(linear_result, vdd=3.3, direction="fall",
                         node="out")
        assert s == pytest.approx(80e-12, rel=1e-6)


class TestAccuracy:
    def test_compare_delays(self):
        outcome = compare_delays(1.1e-10, 1.0e-10)
        assert outcome.ok and outcome.status == "ok"
        assert outcome.error_percent == pytest.approx(10.0)
        assert compare_delays(0.9e-10, 1.0e-10).error_percent \
            == pytest.approx(10.0)

    def test_compare_degrades_on_odd_inputs(self):
        missing = compare_delays(None, 1.0)
        assert not missing.ok
        assert missing.status == "no-crossing"
        assert missing.error_percent is None
        zero = compare_delays(1.0, 0.0)
        assert zero.status == "zero-reference"
        assert zero.error_percent is None

    def test_accuracy_percent(self):
        assert accuracy_percent(1.01e-10, 1.0e-10) == pytest.approx(99.0)

    def test_report_aggregates(self):
        report = AccuracyReport.from_errors([1.0, 2.0, 3.0])
        assert report.average_error_percent == pytest.approx(2.0)
        assert report.worst_error_percent == pytest.approx(3.0)
        assert report.accuracy_percent == pytest.approx(98.0)

    def test_report_rejects_empty(self):
        with pytest.raises(ValueError):
            AccuracyReport.from_errors([])

    def test_waveform_rms(self, linear_fall, linear_result):
        rms = waveform_rms_error(linear_fall, linear_result, "out")
        assert rms == pytest.approx(0.0, abs=1e-9)
        rms_rel = waveform_rms_error(linear_fall, linear_result, "out",
                                     normalize=3.3)
        assert rms_rel == pytest.approx(0.0, abs=1e-9)


class TestSta:
    @pytest.fixture(scope="class")
    def fig1_graph(self, tech):
        return extract_stages(builders.pass_transistor_netlist(tech))

    def test_arrivals_cover_outputs(self, tech, library, fig1_graph):
        sta = StaticTimingAnalyzer(tech, library=library)
        result = sta.analyze(fig1_graph)
        assert result.worst is not None
        assert result.worst.time > 0
        assert result.arrival("z", "fall") is not None

    def test_critical_path_starts_at_primary_input(self, tech, library,
                                                   fig1_graph):
        sta = StaticTimingAnalyzer(tech, library=library)
        result = sta.analyze(fig1_graph)
        first_net = result.critical_path[0][0]
        assert first_net in {"a", "b", "sel"}
        # Path alternates directions through inverting stages.
        assert result.critical_path[-1] == (result.worst.net,
                                            result.worst.direction)

    def test_input_arrival_offsets_shift_worst(self, tech, library,
                                               fig1_graph):
        sta = StaticTimingAnalyzer(tech, library=library)
        base = sta.analyze(fig1_graph)
        cause_net, cause_dir = base.critical_path[0]
        shifted = sta.analyze(fig1_graph, input_arrivals={
            (cause_net, cause_dir): 100e-12})
        assert shifted.worst.time >= base.worst.time + 50e-12

    def test_stage_delay_positive(self, tech, library):
        sta = StaticTimingAnalyzer(tech, library=library)
        nd = builders.nand_gate(tech, 2)
        d = sta.stage_delay(nd, "out", "fall", "a0")
        assert d is not None and d > 0

    def test_unsensitizable_arc_returns_none(self, tech, library):
        sta = StaticTimingAnalyzer(tech, library=library)
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2)
        # A pure NMOS stack cannot pull its output up.
        assert sta.stage_delay(st, "out", "rise", "g1") is None
