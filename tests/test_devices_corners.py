"""Tests for process-corner derivation."""

import pytest

from repro.circuit import builders
from repro.core import WaveformEvaluator
from repro.devices import CMOSP35, all_corners, corner, corner_spread, \
    nmos_model, pmos_model
from repro.devices.table_model import TableModelLibrary
from repro.spice import StepSource


class TestCornerDerivation:
    def test_tt_is_identity(self, tech):
        assert corner(tech, "tt") is tech

    def test_ff_strengthens_both(self, tech):
        ff = corner(tech, "ff")
        assert ff.nmos.kp > tech.nmos.kp
        assert ff.nmos.vth0 < tech.nmos.vth0
        assert ff.pmos.kp > tech.pmos.kp
        assert ff.pmos.vth0 < tech.pmos.vth0
        assert ff.name.endswith("_ff")

    def test_ss_weakens_both(self, tech):
        ss = corner(tech, "ss")
        assert ss.nmos.kp < tech.nmos.kp
        assert ss.nmos.vth0 > tech.nmos.vth0

    def test_skewed_corners(self, tech):
        fs = corner(tech, "fs")
        assert fs.nmos.kp > tech.nmos.kp
        assert fs.pmos.kp < tech.pmos.kp
        sf = corner(tech, "sf")
        assert sf.nmos.kp < tech.nmos.kp
        assert sf.pmos.kp > tech.pmos.kp

    def test_unknown_corner_rejected(self, tech):
        with pytest.raises(ValueError):
            corner(tech, "xy")

    def test_all_corners(self, tech):
        corners = all_corners(tech)
        assert set(corners) == {"tt", "ff", "ss", "fs", "sf"}

    def test_geometry_untouched(self, tech):
        ff = corner(tech, "ff")
        assert ff.lmin == tech.lmin
        assert ff.vdd == tech.vdd


class TestCornerCurrents:
    def test_on_current_ordering(self, tech):
        w, l = 1e-6, tech.lmin
        currents = {}
        for name in ("ss", "tt", "ff"):
            model = nmos_model(corner(tech, name))
            currents[name] = model.ids(w, l, tech.vdd, tech.vdd, 0.0)
        assert currents["ss"] < currents["tt"] < currents["ff"]

    def test_pmos_ordering(self, tech):
        w, l = 1e-6, tech.lmin
        currents = {}
        for name in ("ss", "tt", "ff"):
            model = pmos_model(corner(tech, name))
            currents[name] = model.ids(w, l, 0.0, tech.vdd, 0.0)
        assert currents["ss"] < currents["tt"] < currents["ff"]


class TestCornerTiming:
    def test_delay_ordering_through_qwm(self, tech):
        delays = {}
        for name in ("ss", "tt", "ff"):
            corner_tech = corner(tech, name)
            library = TableModelLibrary(corner_tech, grid_step=0.3)
            evaluator = WaveformEvaluator(corner_tech, library=library)
            inv = builders.inverter(corner_tech)
            sol = evaluator.evaluate(
                inv, "out", "fall",
                {"a": StepSource(0.0, corner_tech.vdd, 0.0)})
            delays[name] = sol.delay()
        assert delays["ff"] < delays["tt"] < delays["ss"]
        slowest, fastest, spread = corner_spread(delays)
        assert slowest == "ss"
        assert fastest == "ff"
        assert spread > 0.1  # corners move delay by >10%

    def test_spread_requires_data(self):
        with pytest.raises(ValueError):
            corner_spread({})


class TestTemperature:
    def test_nominal_identity(self, tech):
        from repro.devices import at_temperature

        assert at_temperature(tech, tech.temperature) is tech

    def test_hot_weakens_drive(self, tech):
        from repro.devices import at_temperature

        hot = at_temperature(tech, 398.0)
        assert hot.nmos.kp < tech.nmos.kp
        assert hot.nmos.vth0 < tech.nmos.vth0  # threshold drops when hot
        assert hot.temperature == 398.0

    def test_cold_strengthens_drive(self, tech):
        from repro.devices import at_temperature

        cold = at_temperature(tech, 233.0)
        assert cold.nmos.kp > tech.nmos.kp

    def test_invalid_temperature(self, tech):
        from repro.devices import at_temperature

        with pytest.raises(ValueError):
            at_temperature(tech, -10.0)

    def test_hot_silicon_is_slow(self, tech):
        from repro.devices import at_temperature

        delays = {}
        for temp in (233.0, 300.0, 398.0):
            t = at_temperature(tech, temp)
            lib = TableModelLibrary(t, grid_step=0.3)
            ev = WaveformEvaluator(t, library=lib)
            inv = builders.inverter(t)
            sol = ev.evaluate(inv, "out", "fall",
                              {"a": StepSource(0.0, t.vdd, 0.0)})
            delays[temp] = sol.delay()
        assert delays[233.0] < delays[300.0] < delays[398.0]

    def test_pvt_composition(self, tech):
        from repro.devices import pvt

        worst = pvt(tech, "ss", 398.0)
        assert worst.nmos.kp < tech.nmos.kp * 0.8
        assert "ss" in worst.name and "398" in worst.name
        nominal = pvt(tech)
        assert nominal is tech
