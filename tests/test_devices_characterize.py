"""Tests for device characterization (sweep + curve fitting)."""

import numpy as np
import pytest

from repro.devices import CMOSP35, characterize_device, nmos_model, pmos_model
from repro.devices.characterize import fit_iv_curve

TECH = CMOSP35


class TestFitIVCurve:
    def test_fits_exact_quadratic_and_linear(self):
        vdsat = 1.0
        vds = np.linspace(0.0, 3.3, 40)

        def true_current(v):
            if v <= vdsat:
                return -2.0 * v * v + 5.0 * v + 0.1
            return 0.5 * v + 2.6  # continuous-ish linear tail

        ids = [true_current(v) for v in vds]
        fit = fit_iv_curve(vds, ids, vth=0.5, vdsat=vdsat)
        assert fit.t2 == pytest.approx(-2.0, abs=1e-9)
        assert fit.t1 == pytest.approx(5.0, abs=1e-9)
        assert fit.t0 == pytest.approx(0.1, abs=1e-9)
        assert fit.s1 == pytest.approx(0.5, abs=1e-9)
        assert fit.s0 == pytest.approx(2.6, abs=1e-9)

    def test_stores_seven_parameters(self):
        fit = fit_iv_curve([0.0, 1.0, 2.0], [0.0, 1.0, 1.5],
                           vth=0.6, vdsat=1.2)
        assert fit.vth == 0.6
        assert fit.vdsat == 1.2
        # slope/current evaluable on both sides
        assert fit.current(0.5) is not None
        assert fit.slope(2.0) == fit.s1

    def test_degenerate_off_device(self):
        fit = fit_iv_curve([0.0, 1.0, 2.0, 3.0], [0.0, 0.0, 0.0, 0.0],
                           vth=0.55, vdsat=0.0)
        assert fit.current(1.5) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_mismatched_samples(self):
        with pytest.raises(ValueError):
            fit_iv_curve([0.0, 1.0], [0.0], vth=0.5, vdsat=0.5)

    def test_no_saturation_extrapolates_triode_tangent(self):
        # vdsat beyond the sweep: linear fit must continue the quadratic.
        vds = np.linspace(0.0, 1.0, 20)
        ids = 3.0 * vds - 0.5 * vds ** 2
        fit = fit_iv_curve(vds, ids, vth=0.5, vdsat=5.0)
        v_end = 1.0
        tangent_slope = 3.0 - 1.0 * v_end
        assert fit.s1 == pytest.approx(tangent_slope, rel=1e-6)


class TestCharacterizationGrid:
    @pytest.fixture(scope="class")
    def grid(self):
        return characterize_device(nmos_model(TECH), TECH, grid_step=0.3,
                                   vds_step=0.1)

    def test_grid_axes_cover_supply(self, grid):
        assert grid.vs_values[0] == 0.0
        assert grid.vs_values[-1] == pytest.approx(TECH.vdd, abs=0.31)
        assert grid.vg_values.shape == grid.vs_values.shape

    def test_seven_parameters_per_point(self, grid):
        n_points = grid.vs_values.size * grid.vg_values.size
        assert grid.n_parameters == 7 * n_points

    def test_threshold_plane_tracks_body_effect(self, grid):
        # vth grows along the vs axis.
        col = grid.vth_plane[:, -1]
        assert col[-1] > col[0]

    def test_fit_matches_golden_on_grid(self, grid):
        model = nmos_model(TECH)
        ion = model.ids(grid.w_ref, grid.l_ref, TECH.vdd, TECH.vdd, 0.0)
        # Probe several grid points at several vds values.
        rng = np.random.default_rng(0)
        for _ in range(30):
            i = rng.integers(0, grid.vs_values.size)
            j = rng.integers(0, grid.vg_values.size)
            vs = float(grid.vs_values[i])
            vg = float(grid.vg_values[j])
            vds = float(rng.uniform(0.0, max(TECH.vdd - vs, 0.1)))
            fitted = grid.fits[i][j].current(vds)
            golden = model.ids(grid.w_ref, grid.l_ref, vg, vs + vds, vs)
            assert fitted == pytest.approx(golden, abs=0.02 * ion)

    def test_pmos_grid_is_positive_in_conduction_frame(self):
        grid = characterize_device(pmos_model(TECH), TECH, grid_step=0.8,
                                   vds_step=0.2)
        # Fully-on frame point: vs=0, vg=vdd-ish -> strong current.
        fit = grid.fits[0][-1]
        assert fit.current(2.0) > 1e-5

    def test_shape_mismatch_rejected(self):
        from repro.devices.characterize import CharacterizationGrid

        with pytest.raises(ValueError):
            CharacterizationGrid(
                polarity="n", w_ref=1e-6, l_ref=TECH.lmin, vdd=3.3,
                vs_values=np.array([0.0, 1.0]),
                vg_values=np.array([0.0, 1.0]),
                fits=[[None]])
