"""Tests for the region matching system (residual + Jacobian)."""

import numpy as np
import pytest

from repro.circuit import builders
from repro.core import extract_path
from repro.core.matching import (
    CrossingCondition,
    RegionSystem,
    TurnOnCondition,
)
from repro.spice import ConstantSource, StepSource
from repro.spice.sources import as_source


@pytest.fixture(scope="module")
def stack_setup(tech, library):
    st = builders.nmos_stack(tech, 4, widths=[1e-6] * 4, load=10e-15)
    sources = {"g1": as_source(StepSource(0, tech.vdd, 0))}
    sources.update({f"g{k}": as_source(ConstantSource(tech.vdd))
                    for k in range(2, 5)})
    path = extract_path(st, "out", "fall", sources, library)
    return path, sources


def _region(path, sources, active, condition, tech):
    u0 = np.full(path.length, tech.vdd)
    u0[0] = 3.0  # node 1 partway down
    i0 = np.zeros(path.length)
    i0[0] = -2e-4
    return RegionSystem(path, sources, active, tau=10e-12,
                        u_start=u0, i_start=i0, condition=condition), u0


class TestResidualStructure:
    def test_dimensions(self, stack_setup, tech):
        path, sources = stack_setup
        system, u0 = _region(path, sources, 1, TurnOnCondition(2), tech)
        x = np.array([2.5, 20e-12])
        f = system.residual(x)
        assert f.shape == (2,)

    def test_turnon_condition_index_validation(self, stack_setup, tech):
        path, sources = stack_setup
        with pytest.raises(ValueError):
            _region(path, sources, 1, TurnOnCondition(3), tech)
        with pytest.raises(ValueError):
            _region(path, sources, 2, TurnOnCondition(2), tech)

    def test_active_range_validation(self, stack_setup, tech):
        path, sources = stack_setup
        with pytest.raises(ValueError):
            _region(path, sources, 0, CrossingCondition(1.0), tech)
        with pytest.raises(ValueError):
            _region(path, sources, 9, CrossingCondition(1.0), tech)

    def test_crossing_condition_residual(self, stack_setup, tech):
        path, sources = stack_setup
        system, u0 = _region(path, sources, 4,
                             CrossingCondition(1.65), tech)
        x = np.concatenate([u0, [25e-12]])
        x[3] = 1.65  # output exactly at target
        f = system.residual(x)
        assert f[-1] == pytest.approx(0.0, abs=1e-12)

    def test_turnon_condition_residual_sign(self, stack_setup, tech):
        path, sources = stack_setup
        system, u0 = _region(path, sources, 1, TurnOnCondition(2), tech)
        # Node 1 still above vdd - vth: condition residual positive.
        x = np.array([3.0, 20e-12])
        f_high = system.residual(x)[-1]
        x2 = np.array([1.0, 20e-12])
        f_low = system.residual(x2)[-1]
        assert f_high > 0 > f_low


class TestJacobian:
    @pytest.mark.parametrize("active,condition_kind", [
        (1, "turnon"), (2, "turnon"), (3, "turnon"), (4, "crossing"),
    ])
    def test_dense_jacobian_matches_fd(self, stack_setup, tech, active,
                                       condition_kind):
        path, sources = stack_setup
        condition = (TurnOnCondition(active + 1)
                     if condition_kind == "turnon"
                     else CrossingCondition(1.0))
        system, u0 = _region(path, sources, active, condition, tech)
        x = np.concatenate([
            np.linspace(2.6, 3.2, active), [22e-12]])
        jac = system.dense_jacobian(x)
        f0 = system.residual(x)
        for j in range(active + 1):
            h = 1e-7 if j < active else 1e-16
            xp = x.copy()
            xp[j] += h
            fd_col = (system.residual(xp) - f0) / h
            np.testing.assert_allclose(
                jac[:, j], fd_col, rtol=5e-3,
                atol=max(1e-9, 1e-4 * np.max(np.abs(jac[:, j]))))

    def test_bordered_solve_matches_dense(self, stack_setup, tech):
        path, sources = stack_setup
        system, u0 = _region(path, sources, 3, TurnOnCondition(4), tech)
        x = np.array([2.7, 3.0, 3.1, 21e-12])
        f, matrix, last_col = system.residual_and_parts(x)
        from repro.linalg import solve_bordered_tridiagonal

        via_sm = solve_bordered_tridiagonal(matrix, last_col, f)
        dense = matrix.to_dense()
        dense[:, -1] += last_col
        via_dense = np.linalg.solve(dense, f)
        np.testing.assert_allclose(via_sm, via_dense, rtol=1e-8)

    def test_memoization_returns_same_object(self, stack_setup, tech):
        path, sources = stack_setup
        system, _ = _region(path, sources, 2, TurnOnCondition(3), tech)
        x = np.array([2.8, 3.1, 15e-12])
        a = system.residual_and_parts(x)
        b = system.residual_and_parts(x.copy())
        assert a is b


class TestNewtonSolve:
    def test_solves_first_region_of_stack(self, stack_setup, tech):
        path, sources = stack_setup
        u0 = np.full(path.length, float(tech.vdd))
        i0 = np.zeros(path.length)
        # Seed node-1 current from the device model (post-step).
        j1, _, _, _ = path.devices[0].frame_current(tech.vdd, 0.0,
                                                    u0[0], tech.vdd)
        i0[0] = -j1
        system = RegionSystem(path, sources, 1, tau=0.0, u_start=u0,
                              i_start=i0, condition=TurnOnCondition(2))
        guess = np.array([2.2, 6e-12])
        result = system.newton_solve(guess)
        u1, tau = result.x
        assert 1.8 < u1 < 2.6  # vdd - vth(body) neighborhood
        assert 1e-12 < tau < 50e-12
        # The turn-on condition holds at the solution.
        device = path.devices[1]
        vth = device.threshold(tech.vdd, u1, tech.vdd)
        assert u1 + vth == pytest.approx(tech.vdd, abs=1e-6)

    def test_dense_fallback_equivalent(self, stack_setup, tech):
        path, sources = stack_setup
        u0 = np.full(path.length, float(tech.vdd))
        i0 = np.zeros(path.length)
        j1, _, _, _ = path.devices[0].frame_current(tech.vdd, 0.0,
                                                    u0[0], tech.vdd)
        i0[0] = -j1
        system = RegionSystem(path, sources, 1, tau=0.0, u_start=u0,
                              i_start=i0, condition=TurnOnCondition(2))
        guess = np.array([2.2, 6e-12])
        fast = system.newton_solve(guess, use_sherman_morrison=True)
        slow = system.newton_solve(guess, use_sherman_morrison=False)
        np.testing.assert_allclose(fast.x, slow.x, rtol=1e-8)
