"""Tests for the benchmark-circuit builders."""

import numpy as np
import pytest

from repro.circuit import builders, validate_stage
from repro.circuit.netlist import GND_NODE, VDD_NODE


class TestInverter:
    def test_structure(self, tech):
        inv = builders.inverter(tech)
        validate_stage(inv)
        assert len(inv.transistors) == 2
        assert inv.inputs == ["a"]
        assert [n.name for n in inv.outputs] == ["out"]

    def test_custom_sizing(self, tech):
        inv = builders.inverter(tech, wn=3e-6, wp=5e-6)
        assert inv.edge("MN").w == 3e-6
        assert inv.edge("MP").w == 5e-6


class TestNand:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_device_count(self, tech, n):
        nd = builders.nand_gate(tech, n)
        validate_stage(nd)
        assert len(nd.transistors) == 2 * n
        assert len(nd.inputs) == n

    def test_series_stack_ordering(self, tech):
        nd = builders.nand_gate(tech, 3)
        # a0 device touches ground; a2 device touches out.
        m0 = nd.edge("MN0")
        assert GND_NODE in (m0.src.name, m0.snk.name)
        m2 = nd.edge("MN2")
        assert "out" in (m2.src.name, m2.snk.name)

    def test_pmos_parallel(self, tech):
        nd = builders.nand_gate(tech, 3)
        for i in range(3):
            mp = nd.edge(f"MP{i}")
            assert mp.src.name == VDD_NODE
            assert mp.snk.name == "out"

    def test_rejects_single_input(self, tech):
        with pytest.raises(ValueError):
            builders.nand_gate(tech, 1)


class TestNor:
    def test_structure(self, tech):
        nr = builders.nor_gate(tech, 3)
        validate_stage(nr)
        assert len(nr.transistors) == 6
        # NMOS in parallel to ground.
        for i in range(3):
            mn = nr.edge(f"MN{i}")
            assert GND_NODE in (mn.src.name, mn.snk.name)

    def test_rejects_single_input(self, tech):
        with pytest.raises(ValueError):
            builders.nor_gate(tech, 1)


class TestStack:
    @pytest.mark.parametrize("k", [1, 2, 5, 10])
    def test_length(self, tech, k):
        st = builders.nmos_stack(tech, k, widths=[1e-6] * k)
        validate_stage(st)
        assert len(st.transistors) == k
        assert len(st.inputs) == k

    def test_random_widths_reproducible(self, tech):
        a = builders.nmos_stack(tech, 5,
                                rng=np.random.default_rng(42))
        b = builders.nmos_stack(tech, 5,
                                rng=np.random.default_rng(42))
        for k in range(1, 6):
            assert a.edge(f"M{k}").w == b.edge(f"M{k}").w

    def test_widths_in_documented_range(self, tech):
        st = builders.nmos_stack(tech, 8, rng=np.random.default_rng(0))
        for e in st.transistors:
            assert 2.0 * tech.wmin <= e.w <= 8.0 * tech.wmin

    def test_wrong_width_count_rejected(self, tech):
        with pytest.raises(ValueError):
            builders.nmos_stack(tech, 3, widths=[1e-6])

    def test_zero_length_rejected(self, tech):
        with pytest.raises(ValueError):
            builders.nmos_stack(tech, 0)


class TestManchester:
    def test_structure(self, tech):
        mc = builders.manchester_carry_chain(tech, bits=4)
        validate_stage(mc)
        # Per bit: pass + generate + precharge; plus cin pull + precharge0.
        assert len(mc.transistors) == 3 * 4 + 2
        assert len(mc.outputs) == 4

    def test_longest_path_is_bits_plus_one_nmos(self, tech):
        # The ripple path c0 -> c5 crosses 5 pass devices plus the cin
        # pull-down: 6 series NMOS for bits=5 (the paper's Fig. 9 case).
        mc = builders.manchester_carry_chain(tech, bits=5)
        names = {e.name for e in mc.transistors}
        assert {"MCIN"} | {f"MPASS{i}" for i in range(5)} <= names

    def test_inputs(self, tech):
        mc = builders.manchester_carry_chain(tech, bits=2)
        assert set(mc.inputs) == {"phi", "cin_pull", "P0", "P1", "G0", "G1"}


class TestDecoder:
    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_leaf_count(self, tech, levels):
        dec = builders.decoder_tree(tech, levels=levels)
        validate_stage(dec)
        assert len(dec.outputs) == 2 ** levels

    def test_wire_lengths_double_per_level(self, tech):
        dec = builders.decoder_tree(tech, levels=3,
                                    unit_wire_length=10e-6)
        assert dec.edge("W0").l == pytest.approx(10e-6)
        assert dec.edge("W00").l == pytest.approx(20e-6)
        assert dec.edge("W000").l == pytest.approx(40e-6)

    def test_transistor_count(self, tech):
        dec = builders.decoder_tree(tech, levels=3)
        # enable + 2 + 4 + 8 pass devices.
        assert len(dec.transistors) == 1 + 2 + 4 + 8

    def test_address_inputs(self, tech):
        dec = builders.decoder_tree(tech, levels=2)
        assert set(dec.inputs) == {"phi", "A0", "A0b", "A1", "A1b"}


class TestFig1Netlist:
    def test_marks_ios(self, tech):
        net = builders.pass_transistor_netlist(tech)
        assert net.primary_inputs == {"a", "b", "sel"}
        assert net.primary_outputs == {"out"}
        assert len(net.transistors) == 7
        assert len(net.wires) == 1
