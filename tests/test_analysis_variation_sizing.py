"""Tests for Monte-Carlo variation and greedy sizing."""

import numpy as np
import pytest

from repro.analysis import GreedySizer, MonteCarloTiming
from repro.circuit import builders
from repro.core import WaveformEvaluator
from repro.spice import ConstantSource, StepSource


def _stack_inputs(tech, k):
    inputs = {"g1": StepSource(0, tech.vdd, 0)}
    inputs.update({f"g{j}": ConstantSource(tech.vdd)
                   for j in range(2, k + 1)})
    return inputs


@pytest.fixture(scope="module")
def mc_evaluator(tech, library):
    return WaveformEvaluator(tech, library=library)


class TestMonteCarlo:
    def test_distribution_centers_on_nominal(self, tech, mc_evaluator):
        st = builders.nmos_stack(tech, 3, widths=[1e-6] * 3,
                                 load=10e-15)
        mc = MonteCarloTiming(mc_evaluator, width_sigma=0.05,
                              rng=np.random.default_rng(1))
        dist = mc.run(st, "out", "fall", _stack_inputs(tech, 3),
                      n_samples=40)
        assert dist.mean == pytest.approx(dist.nominal, rel=0.05)
        assert dist.std > 0
        assert dist.sigma_over_mean < 0.15

    def test_larger_sigma_widens_distribution(self, tech, mc_evaluator):
        st = builders.nmos_stack(tech, 3, widths=[1e-6] * 3,
                                 load=10e-15)
        inputs = _stack_inputs(tech, 3)
        small = MonteCarloTiming(mc_evaluator, width_sigma=0.02,
                                 rng=np.random.default_rng(2)).run(
            st, "out", "fall", inputs, n_samples=40)
        large = MonteCarloTiming(mc_evaluator, width_sigma=0.10,
                                 rng=np.random.default_rng(2)).run(
            st, "out", "fall", inputs, n_samples=40)
        assert large.std > small.std

    def test_reproducible_with_seed(self, tech, mc_evaluator):
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2)
        inputs = _stack_inputs(tech, 2)
        a = MonteCarloTiming(mc_evaluator,
                             rng=np.random.default_rng(7)).run(
            st, "out", "fall", inputs, n_samples=10)
        b = MonteCarloTiming(mc_evaluator,
                             rng=np.random.default_rng(7)).run(
            st, "out", "fall", inputs, n_samples=10)
        np.testing.assert_allclose(a.samples, b.samples)

    def test_quantiles_ordered(self, tech, mc_evaluator):
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2)
        dist = MonteCarloTiming(mc_evaluator).run(
            st, "out", "fall", _stack_inputs(tech, 2), n_samples=30)
        assert dist.quantile(0.1) <= dist.quantile(0.5) \
            <= dist.quantile(0.9)

    def test_validation(self, tech, mc_evaluator):
        with pytest.raises(ValueError):
            MonteCarloTiming(mc_evaluator, width_sigma=0.5)
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2)
        with pytest.raises(ValueError):
            MonteCarloTiming(mc_evaluator).run(
                st, "out", "fall", _stack_inputs(tech, 2), n_samples=1)


class TestGreedySizer:
    def test_sizing_reduces_delay(self, tech, mc_evaluator):
        st = builders.nmos_stack(tech, 3, widths=[1e-6] * 3,
                                 load=30e-15)
        sizer = GreedySizer(mc_evaluator, max_iterations=6)
        result = sizer.optimize(st, "out", "fall",
                                _stack_inputs(tech, 3))
        assert result.final_delay < result.initial_delay
        assert result.improvement > 0.1
        assert result.steps  # at least one accepted move

    def test_original_stage_untouched(self, tech, mc_evaluator):
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2,
                                 load=20e-15)
        widths_before = [e.w for e in st.transistors]
        GreedySizer(mc_evaluator, max_iterations=3).optimize(
            st, "out", "fall", _stack_inputs(tech, 2))
        assert [e.w for e in st.transistors] == widths_before

    def test_target_stops_early(self, tech, mc_evaluator):
        st = builders.nmos_stack(tech, 3, widths=[1e-6] * 3,
                                 load=30e-15)
        sizer = GreedySizer(mc_evaluator, max_iterations=10)
        loose = sizer.optimize(st, "out", "fall",
                               _stack_inputs(tech, 3),
                               target_delay=1.0)  # already met
        assert loose.met_target
        assert not loose.steps

    def test_width_ceiling_respected(self, tech, mc_evaluator):
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2,
                                 load=30e-15)
        sizer = GreedySizer(mc_evaluator, max_width=2e-6,
                            max_iterations=10)
        result = sizer.optimize(st, "out", "fall",
                                _stack_inputs(tech, 2))
        assert all(e.w <= 2e-6 + 1e-12
                   for e in result.stage.transistors)

    def test_step_factor_validated(self, tech, mc_evaluator):
        with pytest.raises(ValueError):
            GreedySizer(mc_evaluator, step_factor=1.0)
