"""Model rule pack: table, capacitance, grid and corner checks."""

import copy
import dataclasses
import math

import numpy as np

from repro.circuit import builders
from repro.devices.corners import all_corners
from repro.lint import LintContext, LintRunner, Severity


def model_report(ctx):
    return LintRunner(packs=("model",)).run(ctx)


def test_characterized_library_is_clean(tech, library):
    ctx = LintContext(tech=tech,
                      tables=[library.get("n"), library.get("p")],
                      corners=all_corners(tech))
    report = model_report(ctx)
    assert report.ok
    assert len(report) == 0


def test_nonfinite_fit_parameter_is_an_error(library):
    table = copy.deepcopy(library.get("n"))
    fit = table.grid.fits[0][0]
    table.grid.fits[0][0] = dataclasses.replace(fit, t1=math.nan)
    report = model_report(LintContext(tables=[table]))
    bad = [d for d in report if d.rule == "MOD001-nonfinite-table"]
    assert bad and bad[0].severity is Severity.ERROR
    assert "1 fit entry" in bad[0].message


def test_nonfinite_vth_plane_is_an_error(library):
    table = copy.deepcopy(library.get("p"))
    table.grid.vth_plane[0, 0] = np.inf
    report = model_report(LintContext(tables=[table]))
    bad = [d for d in report if d.rule == "MOD001-nonfinite-table"]
    assert bad and "vth plane" in bad[0].message


def test_nonmonotone_iv_slice_warns(library):
    table = copy.deepcopy(library.get("n"))
    fit = table.grid.fits[0][-1]
    # A strongly negative saturation slope makes the current fall with
    # vds across the whole slice.
    table.grid.fits[0][-1] = dataclasses.replace(
        fit, s1=-10.0 * abs(fit.s1) - 1.0)
    report = model_report(LintContext(tables=[table]))
    bad = [d for d in report if d.rule == "MOD002-nonmonotone-iv"]
    assert bad and bad[0].severity is Severity.WARNING


def test_negative_stage_load_cap_is_an_error(tech):
    stage = builders.nand_gate(tech, 2)
    stage.node("out").load_cap = -1e-15
    report = model_report(LintContext.from_stage(stage))
    bad = [d for d in report
           if d.rule == "MOD003-nonpositive-capacitance"]
    assert bad and bad[0].location.element == "out"


def test_grid_coverage_warns_on_truncated_axis(library):
    table = copy.deepcopy(library.get("n"))
    grid = table.grid
    keep = grid.vs_values < 0.7 * grid.vdd
    grid.vs_values = grid.vs_values[keep]
    grid.fits = [row for row, k in zip(grid.fits, keep) if k]
    grid.vth_plane = grid.vth_plane[keep]
    grid.vdsat_plane = grid.vdsat_plane[keep]
    report = model_report(LintContext(tables=[table]))
    bad = [d for d in report if d.rule == "MOD004-grid-coverage"]
    assert bad and bad[0].location.element == "Vs"


def test_grid_supply_mismatch_is_an_error(tech, library):
    table = copy.deepcopy(library.get("n"))
    table.grid.vdd = tech.vdd / 2
    report = model_report(LintContext(tech=tech, tables=[table]))
    mismatch = [d for d in report
                if d.rule == "MOD004-grid-coverage"
                and "technology supplies" in d.message]
    assert mismatch and mismatch[0].severity is Severity.ERROR


def test_corner_supply_mismatch_warns(tech):
    skewed = dataclasses.replace(tech, vdd=tech.vdd * 0.9)
    report = model_report(
        LintContext(tech=tech, corners={"weird": skewed}))
    bad = [d for d in report if d.rule == "MOD005-corner-mismatch"]
    assert bad and bad[0].location.container == "weird"
    assert bad[0].severity is Severity.WARNING


def test_nonphysical_corner_parameters_are_errors(tech):
    broken_nmos = dataclasses.replace(tech.nmos, vth0=-0.1)
    corner = dataclasses.replace(tech, nmos=broken_nmos)
    report = model_report(
        LintContext(tech=tech, corners={"bad": corner}))
    bad = [d for d in report
           if d.rule == "MOD005-corner-mismatch"
           and d.severity is Severity.ERROR]
    assert bad and bad[0].location.element == "nmos"
