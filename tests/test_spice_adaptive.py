"""Tests for the adaptive (LTE-controlled) transient engine."""

import numpy as np
import pytest

from repro.circuit import builders
from repro.spice import (
    AdaptiveOptions,
    AdaptiveTransientSimulator,
    ConstantSource,
    StepSource,
    TransientOptions,
    TransientSimulator,
)


class TestOptions:
    def test_ordering_validated(self):
        with pytest.raises(ValueError):
            AdaptiveOptions(dt_min=1e-12, dt_initial=0.5e-12)
        with pytest.raises(ValueError):
            AdaptiveOptions(lte_tol=0.0)


class TestInverter:
    @pytest.fixture(scope="class")
    def runs(self, tech):
        inv = builders.inverter(tech)
        src = {"a": StepSource(0.0, tech.vdd, 20e-12)}
        fixed = TransientSimulator(inv, tech, TransientOptions(
            t_stop=250e-12, dt=1e-12)).run(src)
        adaptive = AdaptiveTransientSimulator(inv, tech, AdaptiveOptions(
            t_stop=250e-12)).run(src)
        return fixed, adaptive

    def test_fewer_steps_than_fixed(self, runs):
        fixed, adaptive = runs
        assert adaptive.stats.steps < fixed.stats.steps

    def test_delay_agrees_with_fixed(self, tech, runs):
        fixed, adaptive = runs
        d_fixed = fixed.delay_50("out", tech.vdd, t_input=20e-12)
        d_adapt = adaptive.delay_50("out", tech.vdd, t_input=20e-12)
        assert d_adapt == pytest.approx(d_fixed, rel=0.06)

    def test_time_axis_monotone_and_bounded(self, runs):
        _, adaptive = runs
        assert np.all(np.diff(adaptive.times) > 0)
        assert adaptive.times[-1] == pytest.approx(250e-12, rel=1e-9)

    def test_label(self, runs):
        _, adaptive = runs
        assert adaptive.label == "spice-adaptive"

    def test_steps_land_on_input_edge(self, tech, runs):
        _, adaptive = runs
        # Some accepted time must be exactly the step instant (the edge
        # limiter prevents stepping across the discontinuity).
        assert np.any(np.isclose(adaptive.times, 20e-12, atol=1e-16))


class TestStack:
    def test_stack_discharge_tracks_fixed(self, tech):
        st = builders.nmos_stack(tech, 4, widths=[1e-6] * 4, load=10e-15)
        inputs = {"g1": StepSource(0, tech.vdd, 20e-12)}
        inputs.update({f"g{k}": ConstantSource(tech.vdd)
                       for k in range(2, 5)})
        init = {n.name: tech.vdd for n in st.internal_nodes}
        fixed = TransientSimulator(st, tech, TransientOptions(
            t_stop=500e-12, dt=1e-12)).run(inputs, initial=init)
        adaptive = AdaptiveTransientSimulator(st, tech, AdaptiveOptions(
            t_stop=500e-12)).run(inputs, initial=init)
        d_f = fixed.delay_50("out", tech.vdd, t_input=20e-12)
        d_a = adaptive.delay_50("out", tech.vdd, t_input=20e-12)
        assert d_a == pytest.approx(d_f, rel=0.06)
        assert adaptive.stats.steps < fixed.stats.steps

    def test_tighter_tolerance_takes_more_steps(self, tech):
        inv = builders.inverter(tech)
        src = {"a": StepSource(0.0, tech.vdd, 20e-12)}
        loose = AdaptiveTransientSimulator(inv, tech, AdaptiveOptions(
            t_stop=200e-12, lte_tol=10e-3)).run(src)
        tight = AdaptiveTransientSimulator(inv, tech, AdaptiveOptions(
            t_stop=200e-12, lte_tol=0.5e-3)).run(src)
        assert tight.stats.steps > loose.stats.steps
