"""Tests for slew-propagating STA and arc sensitization."""

import pytest

from repro.analysis import StaticTimingAnalyzer
from repro.circuit import builders, extract_stages
from repro.circuit.netlist import GND_NODE, VDD_NODE
from repro.circuit.stage import FlatNetlist


@pytest.fixture(scope="module")
def fig1_graph(tech):
    return extract_stages(builders.pass_transistor_netlist(tech),
                          tech=tech)


class TestStageArc:
    def test_arc_returns_delay_and_slew(self, tech, library, fig1_graph):
        sta = StaticTimingAnalyzer(tech, library=library)
        inv_stage = fig1_graph.stage_of_net["out"]
        arc = sta.stage_arc(inv_stage, "out", "fall", "z")
        assert arc is not None
        delay, slew, quality = arc
        assert delay > 0
        assert slew is not None and slew > 0
        assert quality == "qwm"

    def test_pass_gate_sensitization_fallback(self, tech, library,
                                              fig1_graph):
        # z rising requires the NMOS pass gate HIGH even though the
        # default rise sensitization parks inputs low.
        sta = StaticTimingAnalyzer(tech, library=library)
        merged = fig1_graph.stage_of_net["z"]
        arc = sta.stage_arc(merged, "z", "rise", "b")
        assert arc is not None

    def test_ramp_driven_arc(self, tech, library, fig1_graph):
        sta = StaticTimingAnalyzer(tech, library=library)
        merged = fig1_graph.stage_of_net["z"]
        step_arc = sta.stage_arc(merged, "z", "fall", "a")
        ramp_arc = sta.stage_arc(merged, "z", "fall", "a",
                                 input_slew=20e-12)
        assert step_arc is not None and ramp_arc is not None
        # Same order of magnitude; a finite input edge shifts the arc.
        assert ramp_arc[0] == pytest.approx(step_arc[0], rel=0.6)

    def test_false_arc_rejected(self, tech, library):
        # An arc whose output cannot transition must return None: a
        # pure NMOS stack has no pull-up, so a "rise" arc is impossible.
        sta = StaticTimingAnalyzer(tech, library=library)
        stack = builders.nmos_stack(tech, 2, widths=[1e-6] * 2)
        assert sta.stage_arc(stack, "out", "rise", "g1") is None

    def test_ratioed_prestate_still_yields_arc(self, tech, library):
        # An inverter with an extra always-on pull-down: the pre-state
        # is ratioed high, and the fall arc from 'a' is real.
        sta = StaticTimingAnalyzer(tech, library=library)
        net = FlatNetlist("pair", vdd=tech.vdd)
        net.add_pmos("p0", gate="a", src=VDD_NODE, snk="q",
                     w=2e-6, l=tech.lmin)
        net.add_nmos("n0", gate="a", src="q", snk=GND_NODE,
                     w=1e-6, l=tech.lmin)
        net.add_nmos("n1", gate="b", src="q", snk=GND_NODE,
                     w=0.5e-6, l=tech.lmin)
        net.mark_output("q")
        graph = extract_stages(net, tech=tech)
        arc = sta.stage_arc(graph.stages[0], "q", "fall", "a")
        assert arc is not None
        assert arc[0] > 0


class TestSlewMode:
    def test_slew_mode_produces_arrivals_with_slews(self, tech, library,
                                                    fig1_graph):
        sta = StaticTimingAnalyzer(tech, library=library,
                                   propagate_slews=True)
        result = sta.analyze(fig1_graph)
        assert result.worst is not None
        assert result.worst.slew is not None
        assert result.worst.slew > 0

    def test_step_and_slew_agree_roughly(self, tech, library,
                                         fig1_graph):
        step = StaticTimingAnalyzer(tech, library=library).analyze(
            fig1_graph)
        slew = StaticTimingAnalyzer(tech, library=library,
                                    propagate_slews=True).analyze(
            fig1_graph)
        assert slew.worst.time == pytest.approx(step.worst.time,
                                                rel=0.5)

    def test_primary_input_slew_recorded(self, tech, library,
                                         fig1_graph):
        sta = StaticTimingAnalyzer(tech, library=library,
                                   propagate_slews=True,
                                   input_slew=40e-12)
        result = sta.analyze(fig1_graph)
        a_rise = result.arrival("a", "rise")
        assert a_rise.slew == pytest.approx(40e-12)
