"""Tests for the related-work baselines."""

import pytest

from repro.baselines import SwitchLevelTimer, effective_resistance
from repro.baselines.sc_iteration import SCOptions, SuccessiveChordsSimulator
from repro.circuit import builders
from repro.spice import (
    ConstantSource,
    StepSource,
    TransientOptions,
    TransientSimulator,
)


class TestEffectiveResistance:
    def test_plausible_magnitude(self, tech):
        # A 1 um NMOS in a 0.35 um process: a few kilo-ohms.
        r = effective_resistance(tech.nmos, 1e-6, tech.lmin, tech.vdd)
        assert 1e3 < r < 2e4

    def test_scales_inversely_with_width(self, tech):
        r1 = effective_resistance(tech.nmos, 1e-6, tech.lmin, tech.vdd)
        r2 = effective_resistance(tech.nmos, 2e-6, tech.lmin, tech.vdd)
        assert r2 == pytest.approx(r1 / 2.0, rel=1e-9)

    def test_pmos_weaker(self, tech):
        rn = effective_resistance(tech.nmos, 1e-6, tech.lmin, tech.vdd)
        rp = effective_resistance(tech.pmos, 1e-6, tech.lmin, tech.vdd)
        assert rp > rn

    def test_rejects_bad_geometry(self, tech):
        with pytest.raises(ValueError):
            effective_resistance(tech.nmos, 0.0, tech.lmin, tech.vdd)


class TestSwitchLevel:
    def _inputs(self, tech, k):
        inputs = {"g1": StepSource(0, tech.vdd, 0)}
        inputs.update({f"g{j}": ConstantSource(tech.vdd)
                       for j in range(2, k + 1)})
        return inputs

    def test_stack_estimate_in_ballpark(self, tech, library):
        # Switch-level should land within ~2x of the reference engine.
        st = builders.nmos_stack(tech, 4, widths=[1e-6] * 4, load=10e-15)
        inputs = self._inputs(tech, 4)
        est = SwitchLevelTimer(tech, library).estimate(
            st, "out", "fall", inputs)
        sim = TransientSimulator(st, tech, TransientOptions(
            t_stop=500e-12, dt=2e-12))
        res = sim.run(inputs, initial={n.name: tech.vdd
                                       for n in st.internal_nodes})
        ref = res.delay_50("out", tech.vdd)
        assert 0.4 * ref < est.delay < 2.5 * ref

    def test_elmore_grows_quadratically_with_stack(self, tech, library):
        timer = SwitchLevelTimer(tech, library)
        delays = []
        for k in (2, 4, 8):
            st = builders.nmos_stack(tech, k, widths=[1e-6] * k,
                                     load=0.0)
            est = timer.estimate(st, "out", "fall",
                                 self._inputs(tech, k))
            delays.append(est.elmore)
        # Roughly quadratic: doubling K should ~4x the delay (within 2x
        # slack for end effects).
        assert 2.5 < delays[1] / delays[0] < 6.0
        assert 2.5 < delays[2] / delays[1] < 6.0

    def test_path_length_reported(self, tech, library):
        st = builders.nmos_stack(tech, 5, widths=[1e-6] * 5)
        est = SwitchLevelTimer(tech, library).estimate(
            st, "out", "fall", self._inputs(tech, 5))
        assert est.path_length == 5


class TestSuccessiveChords:
    def test_matches_newton_engine_on_inverter(self, tech):
        inv = builders.inverter(tech)
        src = {"a": StepSource(0, tech.vdd, 10e-12)}
        nr = TransientSimulator(inv, tech, TransientOptions(
            t_stop=200e-12, dt=1e-12,
            voltage_dependent_caps=False)).run(src)
        sc = SuccessiveChordsSimulator(inv, tech, SCOptions(
            t_stop=200e-12, dt=1e-12)).run(src)
        d_nr = nr.delay_50("out", tech.vdd, t_input=10e-12)
        d_sc = sc.delay_50("out", tech.vdd, t_input=10e-12)
        assert d_sc == pytest.approx(d_nr, rel=0.08)

    def test_more_iterations_than_newton(self, tech):
        # Linear convergence: SC needs more iterations per step.
        inv = builders.inverter(tech)
        src = {"a": StepSource(0, tech.vdd, 10e-12)}
        nr = TransientSimulator(inv, tech, TransientOptions(
            t_stop=100e-12, dt=1e-12,
            voltage_dependent_caps=False)).run(src)
        sc = SuccessiveChordsSimulator(inv, tech, SCOptions(
            t_stop=100e-12, dt=1e-12)).run(src)
        assert sc.stats.newton_iterations > nr.stats.newton_iterations

    def test_stack_discharge(self, tech):
        st = builders.nmos_stack(tech, 3, widths=[1e-6] * 3, load=10e-15)
        inputs = {"g1": StepSource(0, tech.vdd, 0),
                  "g2": ConstantSource(tech.vdd),
                  "g3": ConstantSource(tech.vdd)}
        sc = SuccessiveChordsSimulator(st, tech, SCOptions(
            t_stop=400e-12, dt=2e-12))
        res = sc.run(inputs, initial={n.name: tech.vdd
                                      for n in st.internal_nodes})
        assert res.final_value("out") < 0.8
        assert res.label == "sc"
