"""Tests for the Thomas tridiagonal solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import TridiagonalMatrix, solve_tridiagonal, tridiagonal_matvec


def _random_dd_tridiag(rng, n):
    """A diagonally dominant tridiagonal matrix (always solvable)."""
    lower = rng.uniform(-1.0, 1.0, n - 1)
    upper = rng.uniform(-1.0, 1.0, n - 1)
    diag = np.abs(rng.uniform(1.0, 2.0, n)) + 2.5
    return TridiagonalMatrix(lower=lower, diag=diag, upper=upper)


class TestTridiagonalMatrix:
    def test_dimensions(self):
        m = TridiagonalMatrix(lower=[1.0], diag=[2.0, 3.0], upper=[4.0])
        assert m.n == 2

    def test_rejects_mismatched_diagonals(self):
        with pytest.raises(ValueError):
            TridiagonalMatrix(lower=[1.0, 2.0], diag=[1.0, 2.0], upper=[1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TridiagonalMatrix(lower=np.array([]), diag=np.array([]),
                              upper=np.array([]))

    def test_to_dense_roundtrip(self):
        rng = np.random.default_rng(0)
        m = _random_dd_tridiag(rng, 5)
        again = TridiagonalMatrix.from_dense(m.to_dense())
        np.testing.assert_allclose(again.diag, m.diag)
        np.testing.assert_allclose(again.lower, m.lower)
        np.testing.assert_allclose(again.upper, m.upper)

    def test_from_dense_rejects_non_square(self):
        with pytest.raises(ValueError):
            TridiagonalMatrix.from_dense(np.zeros((2, 3)))

    def test_single_element(self):
        m = TridiagonalMatrix(lower=np.array([]), diag=[4.0],
                              upper=np.array([]))
        x = solve_tridiagonal(m, np.array([8.0]))
        assert x[0] == pytest.approx(2.0)


class TestMatvec:
    def test_matches_dense(self):
        rng = np.random.default_rng(1)
        m = _random_dd_tridiag(rng, 7)
        x = rng.uniform(-1, 1, 7)
        np.testing.assert_allclose(tridiagonal_matvec(m, x),
                                   m.to_dense() @ x, rtol=1e-12)

    def test_rejects_wrong_length(self):
        m = TridiagonalMatrix(lower=[1.0], diag=[2.0, 3.0], upper=[1.0])
        with pytest.raises(ValueError):
            tridiagonal_matvec(m, np.zeros(3))


class TestSolve:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 10, 50])
    def test_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        m = _random_dd_tridiag(rng, n) if n > 1 else TridiagonalMatrix(
            lower=np.array([]), diag=[3.0], upper=np.array([]))
        rhs = rng.uniform(-1, 1, n)
        x = solve_tridiagonal(m, rhs)
        np.testing.assert_allclose(x, np.linalg.solve(m.to_dense(), rhs),
                                   rtol=1e-10)

    def test_rejects_wrong_rhs_length(self):
        m = TridiagonalMatrix(lower=[1.0], diag=[2.0, 3.0], upper=[1.0])
        with pytest.raises(ValueError):
            solve_tridiagonal(m, np.zeros(3))

    def test_singular_raises(self):
        m = TridiagonalMatrix(lower=[0.0], diag=[0.0, 1.0], upper=[0.0])
        with pytest.raises(np.linalg.LinAlgError):
            solve_tridiagonal(m, np.array([1.0, 1.0]))

    def test_identity(self):
        m = TridiagonalMatrix(lower=np.zeros(3), diag=np.ones(4),
                              upper=np.zeros(3))
        rhs = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(solve_tridiagonal(m, rhs), rhs)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 30))
    def test_residual_is_zero_property(self, seed, n):
        rng = np.random.default_rng(seed)
        m = _random_dd_tridiag(rng, n)
        rhs = rng.uniform(-10, 10, n)
        x = solve_tridiagonal(m, rhs)
        np.testing.assert_allclose(tridiagonal_matvec(m, x), rhs,
                                   rtol=1e-8, atol=1e-9)
