"""Accuracy observatory: sampling determinism, ledgers, the diff gate.

Mirrors the phase-profiler suite: the observatory is process-wide and
disabled by default, worker deltas merge commutatively, and the
auditor's records are pure functions of (design, seed, solver config)
— which the serial-vs-process bit-identity test pins down.
"""

import json
import time

import pytest

from repro.analysis import accuracy
from repro.analysis import audit as audit_mod
from repro.analysis.audit import (
    ArcSample,
    analyze_with_audit,
    audit_arc,
    collect_candidates,
    stratified_sample,
)
from repro.analysis.accuracy import ComparisonOutcome, compare_delays
from repro.analysis.golden import (
    GoldenCase,
    GoldenRecord,
    history_cases,
    check as golden_check,
)
from repro.analysis.parallel import ExecutionConfig, canonical_form_for
from repro.analysis.sta import StaticTimingAnalyzer
from repro.circuit import builders
from repro.circuit.stage import extract_stages
from repro.cli import main
from repro.obs.accuracy import (
    AccuracyConfig,
    AccuracyObservatory,
    accuracy_regressions,
    accuracy_region_phase,
    attribute_regions,
    capture_regions,
    configure_accuracy,
    disable_accuracy,
    history_entry,
    note_arc_candidate,
    note_region,
    observatory,
    worst_regression,
)


@pytest.fixture(autouse=True)
def _observatory_off():
    """Tests own the process-wide observatory; reset around each."""
    disable_accuracy()
    yield
    disable_accuracy()


@pytest.fixture(scope="module")
def decoder_graph(tech):
    return extract_stages(builders.decoder_netlist(tech, bits=2),
                          tech=tech)


# ----------------------------------------------------------------------
# ComparisonOutcome: structured verdicts instead of bare ValueError.
# ----------------------------------------------------------------------
class TestComparisonOutcome:
    def test_ok(self):
        outcome = compare_delays(1.1e-10, 1.0e-10)
        assert isinstance(outcome, ComparisonOutcome)
        assert outcome.ok
        assert outcome.status == "ok"
        assert outcome.error_percent == pytest.approx(10.0)

    def test_no_crossing(self):
        for test, ref in ((None, 1.0e-10), (1.0e-10, None),
                          (None, None)):
            outcome = compare_delays(test, ref)
            assert not outcome.ok
            assert outcome.status == "no-crossing"
            assert outcome.error_percent is None

    def test_zero_reference(self):
        outcome = compare_delays(1.0e-10, 0.0)
        assert outcome.status == "zero-reference"
        assert outcome.error_percent is None

    def test_accuracy_percent_still_raises(self):
        assert accuracy.accuracy_percent(1.01e-10, 1.0e-10) \
            == pytest.approx(99.0)
        with pytest.raises(ValueError):
            accuracy.accuracy_percent(None, 1.0e-10)
        with pytest.raises(ValueError):
            accuracy.accuracy_percent(1.0e-10, 0.0)


# ----------------------------------------------------------------------
# Observatory ledger: candidate noting, drain/merge commutativity.
# ----------------------------------------------------------------------
class TestObservatoryLedger:
    def test_disabled_by_default(self):
        assert not observatory().enabled
        note_arc_candidate("s", "out", "fall", "a", None)
        assert observatory().stats()["arcs"] == 0

    def test_note_is_idempotent(self):
        configure_accuracy(AccuracyConfig(enabled=True))
        for _ in range(3):
            note_arc_candidate("s", "out", "fall", "a", 20e-12)
        assert observatory().stats()["arcs"] == 1

    def _payload(self, variant: int):
        obs = AccuracyObservatory(AccuracyConfig(enabled=True))
        obs.note_arc(f"s{variant}", "out", "fall", "a", None)
        obs.note_arc("shared", "out", "rise", "b", 10e-12)
        obs.record_audit({"arc": [f"s{variant}", "out", "fall", "a",
                                  "step"],
                          "delay_error_pct": float(variant)})
        return obs.drain()

    def test_merge_is_commutative(self):
        a, b = self._payload(1), self._payload(2)
        ab = AccuracyObservatory(AccuracyConfig(enabled=True))
        ab.merge(a)
        ab.merge(b)
        ba = AccuracyObservatory(AccuracyConfig(enabled=True))
        ba.merge(b)
        ba.merge(a)
        assert ab.to_json() == ba.to_json()
        assert ab.stats()["arcs"] == 3

    def test_drain_resets(self):
        obs = AccuracyObservatory(AccuracyConfig(enabled=True))
        obs.note_arc("s", "out", "fall", "a", None)
        payload = obs.drain()
        assert payload["arcs"] == [["s", "out", "fall", "a", "step"]]
        assert obs.stats() == {"arcs": 0, "records": 0, "dropped": 0}

    def test_record_cap_counts_drops(self):
        obs = AccuracyObservatory(AccuracyConfig(enabled=True,
                                                 max_records=1))
        obs.record_audit({"arc": ["a", "o", "fall", "x", "step"]})
        obs.record_audit({"arc": ["b", "o", "fall", "x", "step"]})
        assert obs.stats() == {"arcs": 0, "records": 1, "dropped": 1}


# ----------------------------------------------------------------------
# Region capture: residual attribution from a real solve.
# ----------------------------------------------------------------------
class TestRegionCapture:
    def test_capture_on_real_solve(self, tech, evaluator):
        from repro.spice import ConstantSource, StepSource

        stage = builders.nand_gate(tech, 2)
        sources = {"a0": StepSource(0.0, tech.vdd, 20e-12),
                   "a1": ConstantSource(tech.vdd)}
        with capture_regions() as capture:
            evaluator.evaluate(stage, "out", "fall", sources,
                               precharge="dc")
        assert capture.notes
        phases = {note["phase"] for note in capture.notes}
        assert phases <= {"qwm.phase12", "qwm.phase3"}
        tags = {note["tag"] for note in capture.notes}
        assert tags <= {"turn_on", "crossing", "time", "region"}
        for note in capture.notes:
            assert note["k"] >= 1
            assert note["residual_norm"] >= 0.0
            assert note["iterations"] >= 1

    def test_no_capture_is_noop(self, tech, evaluator):
        # Outside a capture scope the hooks must not accumulate state.
        note_region("crossing", 2, 1e-12, 3)
        with accuracy_region_phase("qwm.phase3"):
            pass
        with capture_regions() as capture:
            pass
        assert capture.notes == []

    def test_attribute_regions_dominant_and_ties(self):
        notes = [
            {"phase": "qwm.phase12", "tag": "turn_on", "k": 2,
             "residual_norm": 1e-12, "iterations": 3},
            {"phase": "qwm.phase3", "tag": "crossing", "k": 4,
             "residual_norm": 5e-12, "iterations": 4},
            {"phase": "qwm.phase3", "tag": "crossing", "k": 3,
             "residual_norm": 2e-12, "iterations": 2},
        ]
        rollup = attribute_regions(notes)
        assert rollup["dominant"] == "qwm.phase3:crossing"
        assert rollup["regions"] == 3
        assert rollup["max_k"] == 4
        cell = rollup["cells"]["qwm.phase3:crossing"]
        assert cell["regions"] == 2
        assert cell["iterations"] == 6
        # Equal sums tie-break lexicographically (deterministic).
        tied = attribute_regions([
            {"phase": "b", "tag": "t", "k": 1, "residual_norm": 1.0,
             "iterations": 1},
            {"phase": "a", "tag": "t", "k": 1, "residual_norm": 1.0,
             "iterations": 1},
        ])
        assert tied["dominant"] == "a:t"

    def test_attribute_regions_empty(self):
        rollup = attribute_regions([])
        assert rollup["dominant"] is None
        assert rollup["regions"] == 0


# ----------------------------------------------------------------------
# Sampling: seeded, stratified, deterministic.
# ----------------------------------------------------------------------
class TestSampling:
    def _analyzer(self, tech, library):
        return StaticTimingAnalyzer(tech, library=library)

    def test_sample_is_deterministic(self, tech, library,
                                     decoder_graph):
        analyzer = self._analyzer(tech, library)
        candidates = collect_candidates(decoder_graph, analyzer)
        first = stratified_sample(candidates, 6, seed=7)
        second = stratified_sample(candidates, 6, seed=7)
        assert [s.key for s in first] == [s.key for s in second]
        other = stratified_sample(candidates, 6, seed=8)
        assert [s.key for s in other] != [s.key for s in first]

    def test_sample_stratifies_across_forms(self, tech, library,
                                            decoder_graph):
        """Isomorphic word-line stages cannot crowd out unique forms."""
        analyzer = self._analyzer(tech, library)
        candidates = collect_candidates(decoder_graph, analyzer)
        strata = {s.fingerprint for s in candidates}
        assert len(strata) >= 2
        picked = stratified_sample(candidates, len(strata), seed=0)
        assert {s.fingerprint for s in picked} == strata

    def test_sample_exhausts_gracefully(self, tech, library,
                                        decoder_graph):
        analyzer = self._analyzer(tech, library)
        candidates = collect_candidates(decoder_graph, analyzer)
        picked = stratified_sample(candidates, 10 ** 6, seed=0)
        assert len(picked) == len(candidates)
        assert len({s.key for s in picked}) == len(candidates)


# ----------------------------------------------------------------------
# The auditor: backend bit-identity, graceful degradation.
# ----------------------------------------------------------------------
class TestAuditor:
    def test_serial_and_process_records_bit_identical(
            self, tech, library, decoder_graph):
        def run(backend):
            execution = (None if backend == "serial"
                         else ExecutionConfig(workers=2,
                                              backend=backend))
            analyzer = StaticTimingAnalyzer(tech, library=library,
                                            execution=execution)
            result, report = analyze_with_audit(
                analyzer, decoder_graph, 3, seed=3)
            return result, report

        serial_result, serial_report = run("serial")
        process_result, process_report = run("process")
        assert json.dumps(serial_report.to_json(), sort_keys=True) \
            == json.dumps(process_report.to_json(), sort_keys=True)
        assert serial_result.audit == process_result.audit
        assert serial_report.records
        for record in serial_report.records:
            assert record["status"] == "ok"
            assert record["delay_error_pct"] is not None
            assert record["attribution"]["dominant"] is not None

    def test_no_crossing_degrades_gracefully(self, tech, library,
                                             decoder_graph,
                                             monkeypatch):
        monkeypatch.setattr(audit_mod, "adaptive_spice_arc",
                            lambda *args, **kwargs: None)
        analyzer = StaticTimingAnalyzer(tech, library=library)
        stage = decoder_graph.stages[0]
        sample = ArcSample(
            stage=stage.name, output=stage.outputs[0].name,
            direction="fall",
            switching_input=sorted(stage.inputs)[0], input_slew=None,
            fingerprint="x")
        record = audit_arc(analyzer, stage, sample)
        assert record["status"] == "no-crossing"
        assert record["delay_error_pct"] is None
        assert record["margin_to_band_pct"] is None

    def test_observatory_restored_after_audit(self, tech, library,
                                              decoder_graph):
        assert not observatory().enabled
        analyzer = StaticTimingAnalyzer(tech, library=library)
        result, report = analyze_with_audit(analyzer, decoder_graph, 1,
                                            seed=0)
        assert not observatory().enabled
        assert result.audit["summary"]["arcs_audited"] == 1
        assert result.audit["summary"]["candidates"] > 1


# ----------------------------------------------------------------------
# History ledger + the accuracy-diff gate.
# ----------------------------------------------------------------------
class TestHistoryAndDiff:
    def _cases(self, errors):
        return {name: {"delay_error_pct": err,
                       "margin_to_band_pct": 10.0 - err,
                       "attribution": "qwm.phase3:crossing"}
                for name, err in errors.items()}

    def test_history_entry_summary(self):
        entry = history_entry("golden",
                              self._cases({"a": 1.0, "b": 8.0}),
                              git_sha="abc")
        assert entry["format"] == "repro-accuracy-history/1"
        assert entry["summary"]["worst_case"] == "b"
        assert entry["summary"]["mean_delay_error_pct"] \
            == pytest.approx(4.5)
        assert "timestamp" not in entry
        assert "timestamp_unix" not in entry

    def test_regressions_are_direction_aware(self):
        prev = history_entry("golden",
                             self._cases({"a": 5.0, "b": 5.0}))
        last = history_entry("golden",
                             self._cases({"a": 8.0, "b": 2.0}))
        rows = accuracy_regressions(prev, last, threshold_pp=1.0)
        by_case = {row["case"]: row for row in rows}
        assert by_case["a"]["regression"]
        assert not by_case["b"]["regression"]  # improvement never flags
        worst = worst_regression(rows)
        assert worst["case"] == "a"
        assert worst["drift_pp"] == pytest.approx(3.0)

    def test_leaving_band_flags_even_below_threshold(self):
        prev = history_entry("golden", self._cases({"a": 9.8}))
        last = history_entry("golden", self._cases({"a": 10.3}))
        rows = accuracy_regressions(prev, last, threshold_pp=1.0)
        assert rows[0]["left_band"]
        assert rows[0]["regression"]

    def test_accuracy_diff_cli_gate(self, tmp_path, capsys):
        path = tmp_path / "ACCURACY_history.jsonl"
        prev = history_entry("golden",
                             self._cases({"inv_fall_a_s0p_l2f": 2.0,
                                          "nand2_fall_a0_s0p_l2f": 3.0}),
                             git_sha="old")
        last = history_entry("golden",
                             self._cases({"inv_fall_a_s0p_l2f": 6.5,
                                          "nand2_fall_a0_s0p_l2f": 3.1}),
                             git_sha="new")
        with open(path, "w") as handle:
            for entry in (prev, last):
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        code = main(["accuracy-diff", "--history", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "worst: inv_fall_a_s0p_l2f" in out
        assert "qwm.phase3:crossing" in out
        assert "DRIFT" in out

    def test_accuracy_diff_cli_clean(self, tmp_path, capsys):
        path = tmp_path / "ACCURACY_history.jsonl"
        entry = history_entry("golden", self._cases({"a": 2.0}))
        with open(path, "w") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        assert main(["accuracy-diff", "--history", str(path)]) == 0
        assert "no accuracy drift" in capsys.readouterr().out

    def test_accuracy_diff_missing_history(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["accuracy-diff", "--history", str(missing)]) == 0


# ----------------------------------------------------------------------
# Golden integration: margins, attribution, ledger shape.
# ----------------------------------------------------------------------
class TestGoldenIntegration:
    def _record(self, tech):
        case = GoldenCase(circuit="inv", direction="fall",
                         switching_input="a", held=None,
                         input_slew=0.0, load=2e-15)
        from repro.analysis.golden import spice_measure

        delay, slew = spice_measure(case, tech)
        return GoldenRecord(case=case, spice_delay=delay,
                            spice_slew=slew, qwm_delay=delay,
                            qwm_slew=slew)

    def test_margin_in_record_json(self, tech):
        record = self._record(tech)
        payload = record.to_json()
        assert payload["margin_to_band_pct"] \
            == pytest.approx(10.0 - payload["delay_error_pct"])

    def test_check_attaches_attribution(self, tech, evaluator):
        record = self._record(tech)
        diffs = golden_check([record], tech, evaluator)
        assert len(diffs) == 1
        assert diffs[0].attribution is not None
        assert diffs[0].attribution["regions"] > 0
        assert diffs[0].margin_to_band_pct \
            == pytest.approx(10.0 - diffs[0].delay_error_pct)
        cases = history_cases(diffs)
        section = cases[record.case.name]
        assert section["delay_error_pct"] \
            == pytest.approx(diffs[0].delay_error_pct)
        assert section["attribution"] \
            == diffs[0].attribution["dominant"]


# ----------------------------------------------------------------------
# Cost: the disabled observatory must be invisible.
# ----------------------------------------------------------------------
def test_disabled_overhead_under_one_percent(tech, evaluator):
    """Disabled accuracy hooks cost < 1% of a NAND3 solve.

    Arithmetic-budget style like the profiler's gate: per-call cost of
    the disabled hooks times a generous over-estimate of hook sites
    per solve, against the solve's own wall time.
    """
    from repro.spice import ConstantSource, StepSource

    n_calls = 20000
    start = time.perf_counter()
    for _ in range(n_calls):
        note_arc_candidate("s", "out", "fall", "a", None)
        note_region("crossing", 2, 1e-12, 3)
        with accuracy_region_phase("qwm.phase12"):
            pass
    per_op = (time.perf_counter() - start) / n_calls

    stage = builders.nand_gate(tech, 3)
    sources = {"a0": StepSource(0.0, tech.vdd, 0.0)}
    for name in stage.inputs:
        sources.setdefault(name, ConstantSource(tech.vdd))
    solution = evaluator.evaluate(stage, output="out",
                                  direction="fall", inputs=sources)
    stats = solution.stats
    # Hook sites: one arc note, one note_region + one phase context per
    # region solved — then doubled for margin.
    ops = 2 * (2 * stats.steps + 2)
    overhead = ops * per_op
    assert overhead < 0.01 * stats.wall_time + 1e-4, (
        f"disabled accuracy-hook overhead {overhead * 1e6:.1f}us vs "
        f"solve {stats.wall_time * 1e6:.1f}us")
