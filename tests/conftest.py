"""Shared fixtures: one characterized technology for the whole session."""

import os

import pytest

from repro.devices import CMOSP35, TableModelLibrary, nmos_model, pmos_model
from repro.core import WaveformEvaluator


@pytest.fixture(scope="session", autouse=True)
def _flight_bundles_from_env():
    """CI forensics hook: ``REPRO_FLIGHT_BUNDLES=DIR`` enables the
    flight recorder with bundle capture for the whole test session, so
    a failing solve leaves a replayable debug bundle under DIR that the
    workflow uploads as an artifact."""
    directory = os.environ.get("REPRO_FLIGHT_BUNDLES")
    if not directory:
        yield
        return
    from repro.obs import FlightConfig, configure_flight, disable_flight

    configure_flight(FlightConfig(enabled=True, capture_bundles=True,
                                  bundle_dir=directory))
    yield
    disable_flight()


@pytest.fixture(scope="session")
def tech():
    return CMOSP35


@pytest.fixture(scope="session")
def library(tech):
    """Session-wide table library (characterization is expensive)."""
    lib = TableModelLibrary(tech)
    lib.get("n")
    lib.get("p")
    return lib


@pytest.fixture(scope="session")
def nmos(tech):
    return nmos_model(tech)


@pytest.fixture(scope="session")
def pmos(tech):
    return pmos_model(tech)


@pytest.fixture(scope="session")
def evaluator(tech, library):
    return WaveformEvaluator(tech, library=library)
