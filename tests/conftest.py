"""Shared fixtures: one characterized technology for the whole session."""

import pytest

from repro.devices import CMOSP35, TableModelLibrary, nmos_model, pmos_model
from repro.core import WaveformEvaluator


@pytest.fixture(scope="session")
def tech():
    return CMOSP35


@pytest.fixture(scope="session")
def library(tech):
    """Session-wide table library (characterization is expensive)."""
    lib = TableModelLibrary(tech)
    lib.get("n")
    lib.get("p")
    return lib


@pytest.fixture(scope="session")
def nmos(tech):
    return nmos_model(tech)


@pytest.fixture(scope="session")
def pmos(tech):
    return pmos_model(tech)


@pytest.fixture(scope="session")
def evaluator(tech, library):
    return WaveformEvaluator(tech, library=library)
