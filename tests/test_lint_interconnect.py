"""Interconnect rule pack: RC trees, wire islands, coupling caps."""

from repro.circuit.netlist import GND_NODE, VDD_NODE
from repro.interconnect.rc_network import RCTree
from repro.lint import CouplingCap, LintContext, LintRunner, Severity

from tests.test_lint_erc import make_inverter_netlist


def interconnect_report(ctx):
    return LintRunner(packs=("interconnect",)).run(ctx)


def make_tree():
    tree = RCTree("drv", root_cap=5e-15)
    tree.add_node("mid", parent="drv", resistance=120.0, cap=8e-15)
    tree.add_node("far", parent="mid", resistance=200.0, cap=12e-15)
    return tree


class TestNegativeRC:
    def test_clean_tree(self):
        report = interconnect_report(LintContext(rc_trees=[make_tree()]))
        assert len(report) == 0

    def test_negative_cap_via_add_cap(self):
        # RCTree.add_node validates, but add_cap accepts any delta — a
        # large negative adjustment silently corrupts the moments.
        tree = make_tree()
        tree.add_cap("mid", -20e-15)
        report = interconnect_report(LintContext(rc_trees=[tree]))
        bad = [d for d in report if d.rule == "INT001-negative-rc"]
        assert bad and bad[0].severity is Severity.ERROR
        assert bad[0].location.element == "mid"

    def test_zero_resistance_warns(self):
        tree = make_tree()
        tree.add_node("alias", parent="far", resistance=0.0, cap=1e-15)
        report = interconnect_report(LintContext(rc_trees=[tree]))
        (diag,) = [d for d in report if d.rule == "INT001-negative-rc"]
        assert diag.severity is Severity.WARNING
        assert "alias" in diag.message


class TestDisconnectedRC:
    def test_wire_island_warns(self):
        net = make_inverter_netlist()
        net.add_wire("Wi", "isl1", "isl2", w=1e-6, l=20e-6)
        net.add_wire("Wj", "isl2", "isl3", w=1e-6, l=20e-6)
        report = interconnect_report(LintContext.from_netlist(net))
        (diag,) = [d for d in report
                   if d.rule == "INT002-disconnected-rc"]
        assert diag.severity is Severity.WARNING
        assert "isl1" in diag.message and "2 segment(s)" in diag.message

    def test_attached_wire_is_quiet(self):
        net = make_inverter_netlist()
        net.add_wire("Ww", "out", "far", w=1e-6, l=20e-6)
        report = interconnect_report(LintContext.from_netlist(net))
        assert not any(d.rule.startswith("INT002") for d in report)


class TestCouplingCaps:
    def test_self_loop_is_an_error(self):
        ctx = LintContext(
            coupling_caps=[CouplingCap("Cc", "a", "a", 1e-15)])
        report = interconnect_report(ctx)
        assert "INT003-coupling-self-loop" in report.rule_ids
        assert not report.ok

    def test_negative_value_is_an_error(self):
        ctx = LintContext(
            coupling_caps=[CouplingCap("Cc", "a", "b", -1e-15)])
        report = interconnect_report(ctx)
        assert any("must be finite" in d.message for d in report)

    def test_rail_terminal_warns(self):
        for rail in (VDD_NODE, GND_NODE):
            ctx = LintContext(
                coupling_caps=[CouplingCap("Cc", "a", rail, 1e-15)])
            report = interconnect_report(ctx)
            (diag,) = list(report)
            assert diag.severity is Severity.WARNING

    def test_clean_coupling_cap(self):
        ctx = LintContext(
            coupling_caps=[CouplingCap("Cc", "a", "b", 1e-15)])
        assert len(interconnect_report(ctx)) == 0
