"""Property-based QWM solver tests on seeded random K-stacks.

The paper's Table 2 benchmark is "series-connected transistor chains
with randomly chosen transistor widths".  Rather than a handful of
hand-picked stacks, these tests draw seeded random stacks (K = 1..6,
widths uniform in the builder's [2, 8] x wmin range, loads across the
bench's span) and assert the invariants any correct delay engine must
satisfy:

* the output falls and the 50 % delay is positive and finite;
* delay is monotone non-decreasing in the output load;
* the critical-point schedule is strictly increasing in time.

Derandomized hypothesis keeps the draws reproducible run to run.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuit import builders
from repro.spice.sources import ConstantSource, StepSource

T_SWITCH = 20e-12

SETTINGS = dict(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def stack_inputs(tech, k):
    """Bottom input switches (worst case); the rest are held on."""
    inputs = {"g1": StepSource(0.0, tech.vdd, T_SWITCH)}
    for j in range(2, k + 1):
        inputs[f"g{j}"] = ConstantSource(tech.vdd)
    return inputs


def random_stack(tech, k, seed, load):
    rng = np.random.default_rng(seed)
    widths = rng.uniform(2.0 * tech.wmin, 8.0 * tech.wmin, size=k)
    return builders.nmos_stack(tech, k, widths=list(widths), load=load)


@given(k=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=2**32 - 1),
       load=st.sampled_from([2e-15, 5e-15, 10e-15, 20e-15]))
@settings(**SETTINGS)
def test_random_stack_has_positive_delay(tech, evaluator, k, seed,
                                         load):
    stage = random_stack(tech, k, seed, load)
    solution = evaluator.evaluate(stage, "out", "fall",
                                  stack_inputs(tech, k))
    delay = solution.delay(t_input=T_SWITCH)
    assert delay is not None, "no 50% crossing"
    assert np.isfinite(delay)
    assert delay > 0.0
    # The waveform actually discharges: the output ends below 50%.
    final = solution.output_waveform.value(solution.critical_times[-1])
    assert final < 0.5 * tech.vdd


@given(k=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(**SETTINGS)
def test_delay_monotone_in_load(tech, evaluator, k, seed):
    delays = []
    for load in (2e-15, 8e-15, 20e-15):
        stage = random_stack(tech, k, seed, load)
        solution = evaluator.evaluate(stage, "out", "fall",
                                      stack_inputs(tech, k))
        delay = solution.delay(t_input=T_SWITCH)
        assert delay is not None
        delays.append(delay)
    assert delays[0] <= delays[1] <= delays[2], (
        f"delay not monotone in load for K={k} seed={seed}: "
        f"{[f'{d * 1e12:.2f}ps' for d in delays]}")


@given(k=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=2**32 - 1),
       load=st.sampled_from([5e-15, 10e-15]))
@settings(**SETTINGS)
def test_critical_points_strictly_increase(tech, evaluator, k, seed,
                                           load):
    stage = random_stack(tech, k, seed, load)
    solution = evaluator.evaluate(stage, "out", "fall",
                                  stack_inputs(tech, k))
    times = np.asarray(solution.critical_times)
    assert times.size >= 2, "schedule produced no regions"
    diffs = np.diff(times)
    assert np.all(diffs > 0.0), (
        f"critical points not strictly increasing for K={k} "
        f"seed={seed}: {times.tolist()}")


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(**SETTINGS)
def test_taller_stack_is_slower(tech, evaluator, seed):
    """Same widths bottom-up: adding a series device cannot speed the
    discharge (more resistance, more parasitic charge)."""
    rng = np.random.default_rng(seed)
    widths = list(rng.uniform(2.0 * tech.wmin, 8.0 * tech.wmin, size=4))
    delays = []
    for k in (2, 4):
        stage = builders.nmos_stack(tech, k, widths=widths[:k],
                                    load=10e-15)
        solution = evaluator.evaluate(stage, "out", "fall",
                                      stack_inputs(tech, k))
        delay = solution.delay(t_input=T_SWITCH)
        assert delay is not None
        delays.append(delay)
    assert delays[0] < delays[1]


def test_property_suite_is_deterministic(tech, evaluator):
    """The same seed must reproduce the same stack and the same delay
    (guards the derandomized draws above against hidden global state)."""
    first = evaluator.evaluate(random_stack(tech, 3, 1234, 5e-15),
                               "out", "fall", stack_inputs(tech, 3))
    second = evaluator.evaluate(random_stack(tech, 3, 1234, 5e-15),
                                "out", "fall", stack_inputs(tech, 3))
    assert first.delay(T_SWITCH) == second.delay(T_SWITCH)
    assert first.critical_times == second.critical_times
