"""Tests for the bordered-tridiagonal Sherman-Morrison solve."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    TridiagonalMatrix,
    solve_bordered_tridiagonal,
    solve_rank_one_update,
)


def _dd_tridiag(rng, n):
    return TridiagonalMatrix(
        lower=rng.uniform(-1, 1, n - 1),
        diag=rng.uniform(3.0, 4.0, n),
        upper=rng.uniform(-1, 1, n - 1))


class TestRankOneUpdate:
    @pytest.mark.parametrize("n", [2, 4, 9])
    def test_matches_dense(self, n):
        rng = np.random.default_rng(n)
        m = _dd_tridiag(rng, n)
        u = rng.uniform(-0.5, 0.5, n)
        v = rng.uniform(-0.5, 0.5, n)
        rhs = rng.uniform(-1, 1, n)
        x = solve_rank_one_update(m, u, v, rhs)
        dense = m.to_dense() + np.outer(u, v)
        np.testing.assert_allclose(x, np.linalg.solve(dense, rhs),
                                   rtol=1e-9)

    def test_zero_update_equals_plain_solve(self):
        rng = np.random.default_rng(3)
        m = _dd_tridiag(rng, 5)
        rhs = rng.uniform(-1, 1, 5)
        x = solve_rank_one_update(m, np.zeros(5), np.zeros(5), rhs)
        np.testing.assert_allclose(x, np.linalg.solve(m.to_dense(), rhs),
                                   rtol=1e-10)

    def test_singular_update_raises(self):
        # A + u v^T constructed to be singular: make row 0 vanish.
        m = TridiagonalMatrix(lower=[0.0], diag=[1.0, 1.0], upper=[0.0])
        u = np.array([-1.0, 0.0])
        v = np.array([1.0, 0.0])
        with pytest.raises(np.linalg.LinAlgError):
            solve_rank_one_update(m, u, v, np.array([1.0, 1.0]))


class TestBorderedTridiagonal:
    @pytest.mark.parametrize("n", [2, 3, 6, 12])
    def test_matches_dense_last_column(self, n):
        rng = np.random.default_rng(100 + n)
        m = _dd_tridiag(rng, n)
        extra = rng.uniform(-0.5, 0.5, n)
        rhs = rng.uniform(-1, 1, n)
        x = solve_bordered_tridiagonal(m, extra, rhs)
        dense = m.to_dense()
        dense[:, -1] += extra
        np.testing.assert_allclose(x, np.linalg.solve(dense, rhs),
                                   rtol=1e-9)

    def test_rejects_wrong_column_length(self):
        m = _dd_tridiag(np.random.default_rng(0), 4)
        with pytest.raises(ValueError):
            solve_bordered_tridiagonal(m, np.zeros(3), np.zeros(4))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 5000), n=st.integers(2, 25))
    def test_residual_property(self, seed, n):
        rng = np.random.default_rng(seed)
        m = _dd_tridiag(rng, n)
        extra = rng.uniform(-0.5, 0.5, n)
        rhs = rng.uniform(-5, 5, n)
        x = solve_bordered_tridiagonal(m, extra, rhs)
        dense = m.to_dense()
        dense[:, -1] += extra
        np.testing.assert_allclose(dense @ x, rhs, rtol=1e-7, atol=1e-8)

    def test_qwm_shaped_system(self):
        # The shape the matcher produces: zero in the (n,n) diagonal slot
        # (step input), condition entry on the sub-diagonal.
        m = TridiagonalMatrix(
            lower=np.array([0.1, 0.2, 1.0]),
            diag=np.array([5.0, 4.0, 3.0, 0.0]),
            upper=np.array([-0.3, -0.2, 7.0]))
        extra = np.array([2.0, 1.5, 0.0, 0.0])
        rhs = np.array([1.0, -1.0, 0.5, 0.2])
        x = solve_bordered_tridiagonal(m, extra, rhs)
        dense = m.to_dense()
        dense[:, -1] += extra
        np.testing.assert_allclose(dense @ x, rhs, atol=1e-10)
