"""Integration tests mirroring the paper's experiments (small scale).

These are the acceptance criteria of DESIGN.md section 7, run at reduced
sizes/steps so the suite stays fast; the full-size versions live in
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.analysis import accuracy_percent
from repro.circuit import builders
from repro.core import QWMOptions, WaveformEvaluator
from repro.spice import (
    ConstantSource,
    StepSource,
    TransientOptions,
    TransientSimulator,
)

T0 = 20e-12


def _stack_inputs(tech, k):
    inputs = {"g1": StepSource(0, tech.vdd, T0)}
    inputs.update({f"g{j}": ConstantSource(tech.vdd)
                   for j in range(2, k + 1)})
    return inputs


def _spice_delay(stage, tech, inputs, initial, t_stop, direction="fall",
                 dt=1e-12):
    sim = TransientSimulator(stage, tech,
                             TransientOptions(t_stop=t_stop, dt=dt))
    res = sim.run(inputs, initial=initial)
    return res.delay_50("out" if "out" in res.node_names else
                        res.node_names[-1],
                        tech.vdd, t_input=T0, direction=direction), res


class TestStackAccuracy:
    """Paper Table II regime: stacks match SPICE to a few percent."""

    @pytest.mark.parametrize("k", [3, 6])
    def test_stack_delay_error_within_paper_band(self, tech, evaluator,
                                                 k):
        st = builders.nmos_stack(tech, k, widths=[1e-6] * k, load=10e-15)
        inputs = _stack_inputs(tech, k)
        sol = evaluator.evaluate(st, "out", "fall", inputs)
        d_q = sol.delay(t_input=T0)
        d_s, _ = _spice_delay(st, tech, inputs,
                              {n.name: tech.vdd
                               for n in st.internal_nodes},
                              t_stop=200e-12 * k)
        # Paper: average 1.2%, worst 3.66% on stacks; we accept < 6%.
        assert accuracy_percent(d_q, d_s) > 94.0

    def test_fig7_single_peaked_currents(self, tech):
        """Each node's discharge current has one peak, ordered bottom-up."""
        k = 6
        st = builders.nmos_stack(tech, k, widths=[1e-6] * k, load=10e-15)
        inputs = _stack_inputs(tech, k)
        sim = TransientSimulator(st, tech, TransientOptions(
            t_stop=700e-12, dt=1e-12))
        res = sim.run(inputs, initial={n.name: tech.vdd
                                       for n in st.internal_nodes})
        peak_times = []
        names = [f"n{i}" for i in range(1, k)] + ["out"]
        eq = sim.equations
        for name in names:
            v = res.voltage(name)
            caps = [eq.node_capacitances(
                np.array([res.voltages[n][i] for n in eq.node_names]))[
                    eq.node_index(name)]
                    for i in range(0, len(res.times), 50)]
            # Discharge current magnitude ~ C * |dv/dt| (C varies slowly).
            dv = np.gradient(v, res.times)
            current = -dv  # discharge positive
            # Skip the Miller spike right at the input step.
            mask = res.times > T0 + 5e-12
            idx = np.argmax(current[mask])
            peak_times.append(res.times[mask][idx])
        assert peak_times == sorted(peak_times)

    def test_fig9_waveforms_follow_reference(self, tech, evaluator):
        """QWM piecewise waveforms track SPICE within a few 100 mV."""
        st = builders.nmos_stack(tech, 6, widths=[1e-6] * 6, load=10e-15)
        inputs = _stack_inputs(tech, 6)
        sol = evaluator.evaluate(st, "out", "fall", inputs)
        _, res = _spice_delay(st, tech, inputs,
                              {n.name: tech.vdd
                               for n in st.internal_nodes},
                              t_stop=700e-12)
        # Compare after the Miller spike settles.
        mask = res.times > T0 + 5e-12
        for name in ("n2", "n4", "out"):
            qwm = sol.waveforms[name].sample(res.times[mask])
            ref = res.voltage(name)[mask]
            assert np.max(np.abs(qwm - ref)) < 0.45


class TestGateAccuracy:
    """Paper Table I regime: minimum-size gates."""

    def test_inverter_both_edges(self, tech, evaluator):
        inv = builders.inverter(tech)
        for direction, src in (("fall", StepSource(0, tech.vdd, T0)),
                               ("rise", StepSource(tech.vdd, 0, T0))):
            sol = evaluator.evaluate(inv, "out", direction, {"a": src})
            d_s, _ = _spice_delay(inv, tech, {"a": src}, None,
                                  t_stop=250e-12, direction=direction)
            assert accuracy_percent(sol.delay(t_input=T0), d_s) > 93.0

    @pytest.mark.parametrize("n", [2, 3])
    def test_nand_worst_case_fall(self, tech, evaluator, n):
        nd = builders.nand_gate(tech, n)
        inputs = {"a0": StepSource(0, tech.vdd, T0)}
        inputs.update({f"a{i}": ConstantSource(tech.vdd)
                       for i in range(1, n)})
        sol = evaluator.evaluate(nd, "out", "fall", inputs,
                                 precharge="degraded")
        d_s, _ = _spice_delay(nd, tech, inputs, None, t_stop=400e-12)
        assert accuracy_percent(sol.delay(t_input=T0), d_s) > 90.0


class TestSpeedupShape:
    """The cost structure the paper exploits: solves at K points, not T/dt."""

    def test_qwm_beats_1ps_reference_on_stack(self, tech, evaluator):
        k = 6
        st = builders.nmos_stack(tech, k, widths=[1e-6] * k, load=10e-15)
        inputs = _stack_inputs(tech, k)
        sol = evaluator.evaluate(st, "out", "fall", inputs)
        sim = TransientSimulator(st, tech, TransientOptions(
            t_stop=700e-12, dt=1e-12))
        res = sim.run(inputs, initial={n.name: tech.vdd
                                       for n in st.internal_nodes})
        assert res.stats.wall_time > 2.0 * sol.stats.wall_time
        # Device-model evaluations tell the machine-independent story.
        assert res.stats.device_evaluations > (
            5 * sol.stats.device_evaluations)

    def test_qwm_newton_solves_independent_of_window(self, tech,
                                                     evaluator, library):
        from repro.core import WaveformEvaluator

        st = builders.nmos_stack(tech, 4, widths=[1e-6] * 4)
        inputs = _stack_inputs(tech, 4)
        short = WaveformEvaluator(tech, library=library,
                                  options=QWMOptions(t_stop=1e-9))
        long = WaveformEvaluator(tech, library=library,
                                 options=QWMOptions(t_stop=10e-9))
        s1 = short.evaluate(st, "out", "fall", inputs)
        s2 = long.evaluate(st, "out", "fall", inputs)
        assert s2.stats.steps <= s1.stats.steps + 2


class TestDecoder:
    """Fig. 10 regime: decoder tree with long wires via AWE pi models."""

    def test_decoder_discharge_and_accuracy(self, tech, evaluator):
        dec = builders.decoder_tree(tech, levels=2,
                                    unit_wire_length=50e-6)
        inputs = {"phi": StepSource(0, tech.vdd, T0),
                  "A0": ConstantSource(tech.vdd),
                  "A0b": ConstantSource(0.0),
                  "A1": ConstantSource(tech.vdd),
                  "A1b": ConstantSource(0.0)}
        sol = evaluator.evaluate(dec, "t11", "fall", inputs)
        d_q = sol.delay(t_input=T0)
        assert d_q is not None and d_q > 0

        sim = TransientSimulator(dec, tech, TransientOptions(
            t_stop=900e-12, dt=1e-12))
        init = {n.name: tech.vdd for n in dec.internal_nodes}
        res = sim.run(inputs, initial=init)
        d_s = res.delay_50("t11", tech.vdd, t_input=T0, direction="fall")
        # Paper reports 96.44% accuracy on the decoder; accept > 90%.
        assert accuracy_percent(d_q, d_s) > 90.0

    def test_unselected_leaf_stays_high(self, tech, evaluator):
        dec = builders.decoder_tree(tech, levels=2)
        inputs = {"phi": StepSource(0, tech.vdd, T0),
                  "A0": ConstantSource(tech.vdd),
                  "A0b": ConstantSource(0.0),
                  "A1": ConstantSource(tech.vdd),
                  "A1b": ConstantSource(0.0)}
        sim = TransientSimulator(dec, tech, TransientOptions(
            t_stop=300e-12, dt=2e-12))
        init = {n.name: tech.vdd for n in dec.internal_nodes}
        res = sim.run(inputs, initial=init)
        assert res.final_value("t00") > 2.5


class TestNorPullUp:
    """Complementary coverage: the PMOS-stack (pull-up) cascade."""

    def test_nor3_rise_with_dc_precharge(self, tech, evaluator):
        nr = builders.nor_gate(tech, 3)
        inputs = {"a0": StepSource(tech.vdd, 0.0, T0),
                  "a1": ConstantSource(0.0),
                  "a2": ConstantSource(0.0)}
        sol = evaluator.evaluate(nr, "out", "rise", inputs,
                                 precharge="dc")
        d_q = sol.delay(t_input=T0)
        sim = TransientSimulator(nr, tech, TransientOptions(
            t_stop=500e-12, dt=1e-12))
        res = sim.run(inputs)
        d_s = res.delay_50("out", tech.vdd, t_input=T0,
                           direction="rise")
        from repro.analysis import accuracy_percent
        assert accuracy_percent(d_q, d_s) > 95.0

    def test_rise_path_is_pmos_stack(self, tech, evaluator):
        nr = builders.nor_gate(tech, 3)
        inputs = {"a0": StepSource(tech.vdd, 0.0, T0),
                  "a1": ConstantSource(0.0),
                  "a2": ConstantSource(0.0)}
        path = evaluator.extract(nr, "out", "rise", inputs)
        assert path.length == 3
        assert all(d.kind.value == "pmos" for d in path.devices)

    def test_dc_precharge_requires_inputs(self, tech, evaluator):
        nr = builders.nor_gate(tech, 2)
        inputs = {"a0": ConstantSource(0.0), "a1": ConstantSource(0.0)}
        path = evaluator.extract(nr, "out", "rise", inputs)
        import pytest as _pytest
        with _pytest.raises(ValueError, match="needs the input"):
            evaluator.default_initial(path, "dc")

    def test_dc_precharge_matches_spice_start(self, tech, evaluator):
        nr = builders.nor_gate(tech, 2)
        inputs = {"a0": StepSource(tech.vdd, 0.0, T0),
                  "a1": ConstantSource(0.0)}
        path = evaluator.extract(nr, "out", "rise", inputs)
        init = evaluator.default_initial(path, "dc", inputs=inputs)
        sim = TransientSimulator(nr, tech, TransientOptions(
            t_stop=40e-12, dt=1e-12))
        res = sim.run(inputs)
        for name, value in init.items():
            assert value == pytest.approx(res.voltage(name)[0],
                                          abs=0.02)
