"""Tests for logic-stage structural validation."""

import pytest

from repro.circuit import LogicStage, StageValidationError, validate_stage
from repro.circuit.netlist import GND_NODE, VDD_NODE


def test_valid_inverter_passes(tech):
    s = LogicStage("inv", tech.vdd)
    s.add_pmos("MP", VDD_NODE, "out", "a", 2e-6, tech.lmin)
    s.add_nmos("MN", "out", GND_NODE, "a", 1e-6, tech.lmin)
    s.mark_output("out")
    validate_stage(s)


def test_empty_stage_fails(tech):
    s = LogicStage("empty", tech.vdd)
    with pytest.raises(StageValidationError, match="no circuit elements"):
        validate_stage(s)


def test_dangling_node_fails(tech):
    s = LogicStage("dangling", tech.vdd)
    s.add_nmos("MN", "out", GND_NODE, "a", 1e-6, tech.lmin)
    s.add_node("orphan")
    s.mark_output("out")
    with pytest.raises(StageValidationError, match="dangling"):
        validate_stage(s)


def test_unreachable_island_fails(tech):
    s = LogicStage("island", tech.vdd)
    s.add_nmos("MN", "out", GND_NODE, "a", 1e-6, tech.lmin)
    s.add_wire("W", "i1", "i2", 1e-6, 1e-6)
    s.mark_output("out")
    with pytest.raises(StageValidationError, match="unreachable"):
        validate_stage(s)


def test_missing_output_fails(tech):
    s = LogicStage("noout", tech.vdd)
    s.add_nmos("MN", "x", GND_NODE, "a", 1e-6, tech.lmin)
    with pytest.raises(StageValidationError, match="no marked outputs"):
        validate_stage(s)


def test_missing_output_ok_when_not_required(tech):
    s = LogicStage("noout", tech.vdd)
    s.add_nmos("MN", "x", GND_NODE, "a", 1e-6, tech.lmin)
    validate_stage(s, require_outputs=False)


def test_multiple_problems_reported_together(tech):
    s = LogicStage("multi", tech.vdd)
    s.add_nmos("MN", "x", GND_NODE, "a", 1e-6, tech.lmin)
    s.add_node("orphan")
    with pytest.raises(StageValidationError) as info:
        validate_stage(s)
    message = str(info.value)
    assert "dangling" in message
    assert "no marked outputs" in message
