"""Parallel STA engine: determinism, canonical forms, and the cache.

The contract under test is the one DESIGN.md states: workers and the
stage-result cache change *scheduling only*, never the arithmetic — a
parallel run's arrivals are bit-identical to the serial engine's.
"""

import numpy as np
import pytest

from repro.analysis import StaticTimingAnalyzer
from repro.analysis.parallel import (
    CanonicalForm,
    ExecutionConfig,
    ParallelStaEngine,
    StageResultCache,
    arc_cache_key,
    canonical_stage_form,
    canonical_form_for,
    quantize_slew,
    stage_fingerprint,
)
from repro.circuit import builders, extract_stages


@pytest.fixture(scope="module")
def decoder_graph(tech):
    return extract_stages(builders.decoder_netlist(tech, bits=2),
                          tech=tech)


@pytest.fixture(scope="module")
def serial_result(tech, library, decoder_graph):
    analyzer = StaticTimingAnalyzer(tech, library=library)
    return analyzer.analyze(decoder_graph)


@pytest.fixture(scope="module")
def warm_cache(tech, library, decoder_graph):
    """A cache pre-filled by one engine run (shared to bound runtime)."""
    cache = StageResultCache()
    analyzer = StaticTimingAnalyzer(
        tech, library=library,
        execution=ExecutionConfig(cache=True), cache=cache)
    analyzer.analyze(decoder_graph)
    return cache


def assert_same_arrivals(result, reference):
    assert set(result.arrivals) == set(reference.arrivals)
    for event, arrival in reference.arrivals.items():
        other = result.arrivals[event]
        # Bit-identical, not approximately equal: the engines must run
        # the same arithmetic in the same order per arc.
        assert other.time == arrival.time, event
        assert other.direction == arrival.direction
    assert (result.worst is None) == (reference.worst is None)
    if reference.worst is not None:
        assert result.worst.time == reference.worst.time


# ----------------------------------------------------------------------
# Determinism across backends, worker counts and cache settings.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend,workers", [
    ("serial", 1),
    ("thread", 1),
    ("thread", 2),
    ("thread", 4),
    pytest.param("process", 2, marks=pytest.mark.slow),
])
def test_parallel_matches_serial(tech, library, decoder_graph,
                                 serial_result, backend, workers):
    analyzer = StaticTimingAnalyzer(
        tech, library=library,
        execution=ExecutionConfig(workers=workers, backend=backend))
    assert_same_arrivals(analyzer.analyze(decoder_graph), serial_result)


@pytest.mark.parametrize("backend,workers", [
    ("serial", 1),
    ("thread", 2),
    pytest.param("process", 2, marks=pytest.mark.slow),
])
def test_cached_run_matches_serial(tech, library, decoder_graph,
                                   serial_result, warm_cache, backend,
                                   workers):
    analyzer = StaticTimingAnalyzer(
        tech, library=library,
        execution=ExecutionConfig(workers=workers, backend=backend,
                                  cache=True),
        cache=warm_cache)
    assert_same_arrivals(analyzer.analyze(decoder_graph), serial_result)


def test_warm_cache_skips_solves(tech, library, decoder_graph,
                                 warm_cache):
    analyzer = StaticTimingAnalyzer(
        tech, library=library,
        execution=ExecutionConfig(cache=True), cache=warm_cache)
    result = analyzer.analyze(decoder_graph)
    # Every arc is served from the cache: no QWM regions are solved.
    assert result.stats.steps == 0


def test_cache_shares_isomorphic_stages(tech, library, decoder_graph):
    cache = StageResultCache()
    analyzer = StaticTimingAnalyzer(
        tech, library=library,
        execution=ExecutionConfig(cache=True), cache=cache)
    analyzer.analyze(decoder_graph)
    # The decoder instantiates one inverter and one NAND shape many
    # times; canonical keying folds them onto few fingerprints.
    fingerprints = {canonical_form_for(s, analyzer).fingerprint
                    for s in decoder_graph.stages}
    assert len(fingerprints) < len(decoder_graph.stages)
    assert cache.hits > 0


def test_cache_path_persists_results(tech, library, decoder_graph,
                                     tmp_path):
    store = str(tmp_path / "stage_cache.json")
    first = StaticTimingAnalyzer(
        tech, library=library,
        execution=ExecutionConfig(cache=True, cache_path=store))
    cold = first.analyze(decoder_graph)
    assert cold.stats.steps > 0

    reloaded = StageResultCache(path=store)
    assert len(reloaded) > 0
    second = StaticTimingAnalyzer(
        tech, library=library,
        execution=ExecutionConfig(cache=True), cache=reloaded)
    warm = second.analyze(decoder_graph)
    assert warm.stats.steps == 0
    assert_same_arrivals(warm, cold)


# ----------------------------------------------------------------------
# Canonical stage forms.
# ----------------------------------------------------------------------
def _renamed_inverter(tech, load, prefix):
    """An inverter with all nets/devices renamed (same electrically)."""
    from repro.circuit.netlist import GND_NODE, VDD_NODE, LogicStage

    wn = 2.0 * tech.wmin
    wp = 4.0 * tech.wmin
    stage = LogicStage(f"{prefix}gate", vdd=tech.vdd)
    stage.add_pmos(f"{prefix}P", src=VDD_NODE, snk=f"{prefix}out",
                   gate=f"{prefix}in", w=wp, l=tech.lmin)
    stage.add_nmos(f"{prefix}N", src=f"{prefix}out", snk=GND_NODE,
                   gate=f"{prefix}in", w=wn, l=tech.lmin)
    stage.mark_output(f"{prefix}out")
    stage.set_load(f"{prefix}out", load)
    return stage


def test_canonical_form_ignores_names(tech):
    a = canonical_stage_form(_renamed_inverter(tech, 5e-15, "x_"))
    b = canonical_stage_form(_renamed_inverter(tech, 5e-15, "zz"))
    assert isinstance(a, CanonicalForm)
    assert a.fingerprint == b.fingerprint
    # The canonical ids map different actual names onto the same slots.
    assert a.net_ids["x_out"] == b.net_ids["zzout"]
    assert a.input_ids["x_in"] == b.input_ids["zzin"]


def test_canonical_form_sees_geometry_and_load(tech):
    base = canonical_stage_form(_renamed_inverter(tech, 5e-15, "a"))
    other_load = canonical_stage_form(_renamed_inverter(tech, 9e-15, "a"))
    assert base.fingerprint != other_load.fingerprint

    wide = _renamed_inverter(tech, 5e-15, "a")
    for edge in wide.edges:
        edge.w = edge.w * 2.0
    assert canonical_stage_form(wide).fingerprint != base.fingerprint


def test_fingerprint_depends_on_solver_context(tech, library):
    from repro.core import QWMOptions

    stage = builders.inverter(tech)
    a1 = StaticTimingAnalyzer(tech, library=library)
    a2 = StaticTimingAnalyzer(tech, library=library,
                              options=QWMOptions(waveform_order=1))
    assert stage_fingerprint(stage, a1) != stage_fingerprint(stage, a2)


# ----------------------------------------------------------------------
# Cache mechanics.
# ----------------------------------------------------------------------
def test_cache_lru_eviction():
    cache = StageResultCache(max_entries=2)
    k1 = arc_cache_key("fp1", "out", "fall", "a", None)
    k2 = arc_cache_key("fp2", "out", "fall", "a", None)
    k3 = arc_cache_key("fp3", "out", "fall", "a", None)
    cache.put(k1, (1e-12, None))
    cache.put(k2, (2e-12, None))
    assert StageResultCache.found(cache.get(k1))  # refresh k1
    cache.put(k3, (3e-12, None))  # evicts k2 (least recently used)
    assert StageResultCache.found(cache.get(k1))
    assert not StageResultCache.found(cache.get(k2))
    assert StageResultCache.found(cache.get(k3))


def test_cache_stores_negative_results():
    cache = StageResultCache()
    key = arc_cache_key("fp", "out", "rise", "b", 2e-11)
    cache.put(key, None)  # arc proven unsensitizable
    value = cache.get(key)
    assert StageResultCache.found(value)
    assert value is None


def test_cache_roundtrip_json(tmp_path):
    cache = StageResultCache(path=str(tmp_path / "c.json"))
    cache.put(arc_cache_key("fp", "out", "fall", "a", 1e-11),
              (4.2e-11, 6.0e-11, "qwm"))
    cache.put(arc_cache_key("fp", "out", "rise", "a", None), None)
    cache.save()

    other = StageResultCache(path=str(tmp_path / "c.json"))
    assert len(other) == 2
    hit = other.get(arc_cache_key("fp", "out", "fall", "a", 1e-11))
    assert hit == (4.2e-11, 6.0e-11, "qwm")


def test_quantize_slew_buckets():
    assert quantize_slew(None, 5e-12) is None
    assert quantize_slew(2.3e-11, None) == 2.3e-11
    assert quantize_slew(2.3e-11, 5e-12) == pytest.approx(2.5e-11)
    assert quantize_slew(2.2e-11, 5e-12) == pytest.approx(2.0e-11)


def test_execution_config_validation():
    with pytest.raises(ValueError):
        ExecutionConfig(backend="gpu")
    with pytest.raises(ValueError):
        ExecutionConfig(workers=0)
    with pytest.raises(ValueError):
        ExecutionConfig(cache_slew_bucket=-1e-12)
    assert ExecutionConfig(cache_path="x.json").wants_cache
    assert not ExecutionConfig().wants_cache


def test_engine_reports_dispatch_waves(tech, library, decoder_graph):
    analyzer = StaticTimingAnalyzer(
        tech, library=library,
        execution=ExecutionConfig(workers=2, backend="thread"))
    engine = ParallelStaEngine(analyzer, analyzer.execution)
    result = engine.run(decoder_graph)
    assert result.worst is not None
    assert np.isfinite(result.worst.time)
