"""Solver preflight rules and the QWMOptions constructor validation."""

import math
from types import SimpleNamespace

import pytest

from repro.circuit import builders
from repro.core.qwm import QWMOptions
from repro.lint import LintContext, LintRunner
from repro.lint.rules_solver import (
    check_milestone_fractions,
    stage_stack_depth,
)


def solver_report(ctx):
    return LintRunner(packs=("solver",)).run(ctx)


class TestQWMOptionsValidation:
    def test_defaults_are_valid(self):
        QWMOptions()

    @pytest.mark.parametrize("kwargs, match", [
        ({"milestone_fractions": ()}, "empty"),
        ({"milestone_fractions": (0.5, 0.9)}, "strictly decreasing"),
        ({"milestone_fractions": (1.0, 1.0, 0.5)},
         "strictly decreasing"),
        ({"milestone_fractions": (0.9, 0.5, -0.1)}, "outside"),
        ({"milestone_fractions": (2.0, 0.5)}, "outside"),
        ({"milestone_fractions": (0.9, math.nan)}, "non-finite"),
        ({"t_stop": 0.0}, "t_stop"),
        ({"turn_on_margin": -1e-3}, "turn_on_margin"),
        ({"cascade_substeps": 0}, "cascade_substeps"),
        ({"max_retries": 0}, "max_retries"),
    ])
    def test_bad_options_raise(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            QWMOptions(**kwargs)

    def test_check_milestone_fractions_clean(self):
        assert check_milestone_fractions(
            QWMOptions().milestone_fractions) == []


class TestSolverRules:
    def test_default_options_are_clean(self):
        report = solver_report(LintContext(options=QWMOptions()))
        assert len(report) == 0

    def test_degenerate_milestones_flagged(self):
        # The constructor rejects these, so a rule-level check needs a
        # duck-typed stand-in (e.g. options deserialized from a config
        # file that bypassed QWMOptions).
        options = SimpleNamespace(milestone_fractions=(0.5, 0.9))
        report = solver_report(LintContext(options=options))
        assert "SOL002-milestone-fractions" in report.rule_ids
        assert not report.ok

    def test_newton_sanity(self):
        options = SimpleNamespace(
            newton=SimpleNamespace(abstol=-1.0, xtol=0.0,
                                   max_iterations=1),
            t_stop=-1e-9, turn_on_margin=-0.5,
            cascade_substeps=0, max_retries=0)
        report = solver_report(LintContext(options=options))
        elements = {d.location.element for d in report
                    if d.rule == "SOL003-newton-sanity"}
        assert elements == {"newton.abstol", "newton.xtol",
                            "newton.max_iterations", "t_stop",
                            "turn_on_margin", "cascade_substeps",
                            "max_retries"}

    def test_low_iteration_budget_is_a_warning(self):
        options = SimpleNamespace(
            newton=SimpleNamespace(abstol=1e-10, xtol=1e-9,
                                   max_iterations=5))
        report = solver_report(LintContext(options=options))
        (diag,) = [d for d in report
                   if d.location.element == "newton.max_iterations"]
        assert diag.severity.value == "warning"

    def test_telemetry_budget_warns_when_blind(self):
        options = SimpleNamespace(
            newton=SimpleNamespace(abstol=1e-10, xtol=1e-9,
                                   max_iterations=5))
        report = solver_report(LintContext(options=options))
        (diag,) = [d for d in report
                   if d.rule == "SOL004-telemetry-budget"]
        assert diag.severity.value == "warning"
        assert diag.location.element == "telemetry"

    def test_telemetry_budget_quiet_when_enabled(self):
        from repro.obs import ObsConfig, configure, disable

        options = SimpleNamespace(
            newton=SimpleNamespace(abstol=1e-10, xtol=1e-9,
                                   max_iterations=5))
        configure(ObsConfig(enabled=True))
        try:
            report = solver_report(LintContext(options=options))
        finally:
            disable()
        assert not any(d.rule == "SOL004-telemetry-budget"
                       for d in report)

    def test_telemetry_budget_quiet_with_default_budget(self):
        from repro.linalg import NewtonOptions

        options = SimpleNamespace(newton=NewtonOptions())
        report = solver_report(LintContext(options=options))
        assert not any(d.rule == "SOL004-telemetry-budget"
                       for d in report)

    def test_stack_depth_of_nand(self, tech):
        stage = builders.nand_gate(tech, 4)
        assert stage_stack_depth(stage) == 4

    def test_deep_stack_warns(self, tech):
        stage = builders.nmos_stack(tech, length=18)
        ctx = LintContext.from_stage(stage, tech=tech)
        report = solver_report(ctx)
        deep = [d for d in report if d.rule == "SOL001-stack-depth"]
        assert deep and "18" in deep[0].message

    def test_coarse_grid_vs_stack_warns(self, tech):
        stage = builders.nand_gate(tech, 8)
        ctx = LintContext.from_stage(stage, tech=tech)
        ctx.grid_step = 0.5
        report = solver_report(ctx)
        assert any(d.rule == "SOL001-stack-depth" for d in report)

    def test_fine_grid_is_quiet(self, tech):
        stage = builders.nand_gate(tech, 2)
        ctx = LintContext.from_stage(stage, tech=tech)
        ctx.grid_step = 0.1
        report = solver_report(ctx)
        assert not any(d.rule == "SOL001-stack-depth" for d in report)


class TestPreflightHooks:
    def test_evaluator_preflight_rejects_broken_stage(self, tech,
                                                      library):
        from repro.circuit.netlist import LogicStage
        from repro.core import WaveformEvaluator
        from repro.lint import PreflightError

        bad = LogicStage("bad", vdd=tech.vdd)
        bad.add_node("orphan")
        evaluator = WaveformEvaluator(tech, library=library,
                                      preflight=True)
        with pytest.raises(PreflightError) as excinfo:
            evaluator.evaluate(bad, output="orphan", direction="fall",
                               inputs={})
        assert "ERC002-dangling-node" in excinfo.value.report.rule_ids

    def test_evaluator_preflight_passes_clean_stage(self, tech,
                                                    library):
        from repro.core import WaveformEvaluator
        from repro.spice import StepSource

        stage = builders.nand_gate(tech, 2)
        evaluator = WaveformEvaluator(tech, library=library,
                                      preflight=True)
        solution = evaluator.evaluate(
            stage, output="out", direction="fall",
            inputs={"a0": StepSource(0.0, tech.vdd, 0.0),
                    "a1": tech.vdd})
        assert solution.delay() > 0

    def test_sta_preflight_rejects_broken_graph(self, tech, library):
        from repro.analysis.sta import StaticTimingAnalyzer
        from repro.circuit import extract_stages
        from repro.io import parse_spice_netlist
        from repro.lint import PreflightError

        deck = """
        .input a
        Mp out a VDD VDD pmos W=2u L=0.35u
        Mn out a 0 0 nmos W=1u L=0.35u
        Rf lone1 lone2 100
        .output out
        """
        graph = extract_stages(
            parse_spice_netlist(deck, tech, name="dangle"), tech=tech)
        analyzer = StaticTimingAnalyzer(tech, library=library,
                                        preflight=True)
        with pytest.raises(PreflightError):
            analyzer.analyze(graph)


class TestFlightLedgerBudget:
    """SOL005: unbounded flight ledger in a parallel run."""

    def _parallel_ctx(self):
        return LintContext(
            options=QWMOptions(),
            execution=SimpleNamespace(workers=4, backend="thread"))

    def test_warns_on_unbounded_parallel_capture(self):
        from repro.obs import FlightConfig, configure_flight, \
            disable_flight

        configure_flight(FlightConfig(enabled=True, event_limit=None))
        try:
            report = solver_report(self._parallel_ctx())
        finally:
            disable_flight()
        (diag,) = [d for d in report
                   if d.rule == "SOL005-flight-ledger-budget"]
        assert diag.severity.value == "warning"
        assert diag.location.element == "flight.event_limit"
        assert "unbounded" in diag.message

    def test_quiet_when_ledger_bounded(self):
        from repro.obs import FlightConfig, configure_flight, \
            disable_flight

        configure_flight(FlightConfig(enabled=True, event_limit=5000))
        try:
            report = solver_report(self._parallel_ctx())
        finally:
            disable_flight()
        assert not any(d.rule == "SOL005-flight-ledger-budget"
                       for d in report)

    def test_quiet_for_serial_run(self):
        from repro.obs import FlightConfig, configure_flight, \
            disable_flight

        configure_flight(FlightConfig(enabled=True, event_limit=None))
        try:
            # No execution config at all, and an explicit serial one.
            bare = solver_report(LintContext(options=QWMOptions()))
            serial = solver_report(LintContext(
                options=QWMOptions(),
                execution=SimpleNamespace(workers=1,
                                          backend="serial")))
        finally:
            disable_flight()
        for report in (bare, serial):
            assert not any(d.rule == "SOL005-flight-ledger-budget"
                           for d in report)

    def test_quiet_when_flight_disabled(self):
        report = solver_report(self._parallel_ctx())
        assert not any(d.rule == "SOL005-flight-ledger-budget"
                       for d in report)


# ---------------------------------------------------------------------------
# SOL006 — instrumentation in per-iteration inner loops
# ---------------------------------------------------------------------------
def sol006_report(sources):
    """Lint synthetic sources with the solver pack's code rule."""
    from repro.lint import CodeContext

    code = CodeContext.from_sources(sources)
    return LintRunner(packs=("solver",)).run(LintContext.from_code(code))


def sol006_hits(report):
    return [d for d in report
            if d.rule == "SOL006-hot-loop-instrumentation"]


class TestSol006HotLoopInstrumentation:
    def test_flags_counter_in_while_loop(self):
        report = sol006_report({"core/hotloop.py": (
            "from repro.obs import inc\n"
            "def solve(max_iterations):\n"
            "    it = 0\n"
            "    while it < max_iterations:\n"
            "        inc('newton.iterations')\n"
            "        it += 1\n"
        )})
        (diag,) = sol006_hits(report)
        assert diag.location.container == "core/hotloop.py"
        assert "inc()" in diag.message
        assert "accumulate" in diag.hint

    def test_flags_profile_add_in_iteration_for_loop(self):
        report = sol006_report({"core/sweep.py": (
            "from repro.obs.profile import profile_add\n"
            "def run(max_iterations):\n"
            "    for i in range(max_iterations):\n"
            "        profile_add('newton_iterations')\n"
        )})
        assert len(sol006_hits(report)) == 1

    def test_sampling_guard_is_exempt(self):
        report = sol006_report({"core/sweep.py": (
            "from repro.obs import inc\n"
            "def run(max_iterations):\n"
            "    for i in range(max_iterations):\n"
            "        if i % 64 == 0:\n"
            "            inc('newton.iterations', 64)\n"
        )})
        assert sol006_hits(report) == []

    def test_failure_branch_ending_in_raise_is_exempt(self):
        report = sol006_report({"spice/stepper.py": (
            "from repro.obs import inc\n"
            "def run(max_steps, budget, residual):\n"
            "    step = 0\n"
            "    while step < max_steps:\n"
            "        step += 1\n"
            "        if residual > budget:\n"
            "            inc('spice.budget.exceeded')\n"
            "            raise ValueError('budget exceeded')\n"
        )})
        assert sol006_hits(report) == []

    def test_branch_ending_in_break_is_exempt(self):
        report = sol006_report({"core/hotloop.py": (
            "from repro.obs import inc\n"
            "def run(done, max_iterations):\n"
            "    it = 0\n"
            "    while it < max_iterations:\n"
            "        it += 1\n"
            "        if done:\n"
            "            inc('qwm.regions.solved')\n"
            "            break\n"
        )})
        assert sol006_hits(report) == []

    def test_flush_after_loop_is_exempt(self):
        report = sol006_report({"core/hotloop.py": (
            "from repro.obs import inc\n"
            "def run(max_iterations):\n"
            "    count = 0\n"
            "    for i in range(max_iterations):\n"
            "        count += 1\n"
            "    inc('newton.iterations', count)\n"
        )})
        assert sol006_hits(report) == []

    def test_non_hot_package_is_exempt(self):
        report = sol006_report({"analysis/driver.py": (
            "from repro.obs import inc\n"
            "def run(max_iterations):\n"
            "    it = 0\n"
            "    while it < max_iterations:\n"
            "        inc('sta.stage.solves')\n"
            "        it += 1\n"
        )})
        assert sol006_hits(report) == []

    def test_non_iteration_for_loop_is_exempt(self):
        # A bounded structural loop (over scales, devices, pieces) is
        # not the per-iteration hot path the rule targets.
        report = sol006_report({"core/hotloop.py": (
            "from repro.obs import inc\n"
            "def run(scales):\n"
            "    for scale in scales:\n"
            "        inc('qwm.region.attempts')\n"
        )})
        assert sol006_hits(report) == []

    def test_attribute_record_flagged_but_bare_record_is_not(self):
        # `recorder.record(...)` is a flight-recorder sink; a *bare*
        # `record(...)` is whatever local closure the solver defined
        # (qwm.py names its waveform-piece writer `record`).
        report = sol006_report({"core/rec.py": (
            "def run(recorder, record, max_iterations):\n"
            "    for i in range(max_iterations):\n"
            "        recorder.record('piece')\n"
            "        record(1.0)\n"
        )})
        hits = sol006_hits(report)
        assert len(hits) == 1
        assert "record()" in hits[0].message

    def test_nested_function_is_a_boundary(self):
        report = sol006_report({"core/hotloop.py": (
            "from repro.obs import inc\n"
            "def run(max_iterations):\n"
            "    for i in range(max_iterations):\n"
            "        def on_failure():\n"
            "            inc('newton.convergence.failures')\n"
        )})
        assert sol006_hits(report) == []

    def test_repo_tree_findings_are_baselined(self):
        # The real tree must carry no SOL006 findings beyond the ones
        # justified in .lint-baseline.json (enforced end-to-end by the
        # `repro lint --code` gate in CI).
        import os

        from repro.lint import Baseline, discover_baseline, lint_code

        repo_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        report = lint_code()
        path = discover_baseline(repo_root)
        assert path is not None
        result = Baseline.load(path).apply(report)
        assert not sol006_hits(result.report)
