"""Tests for netlist parsing and waveform I/O."""

import numpy as np
import pytest

from repro.circuit import extract_stages
from repro.circuit.netlist import GND_NODE, VDD_NODE
from repro.io import (
    NetlistSyntaxError,
    ascii_plot,
    load_csv_result,
    parse_spice_netlist,
    save_csv_result,
    write_spice_netlist,
)
from repro.io.spice_netlist import parse_value
from repro.spice import TransientResult

INVERTER_DECK = """
* simple inverter
M1 out in VDD VDD pmos W=2u L=0.35u
M2 out in 0   0   nmos W=1u L=0.35u
Cout out 0 5f
.input in
.output out
.end
"""


class TestParseValue:
    @pytest.mark.parametrize("token,expected", [
        ("1.5", 1.5), ("2u", 2e-6), ("0.35U", 0.35e-6), ("5f", 5e-15),
        ("10p", 10e-12), ("3n", 3e-9), ("1k", 1e3), ("2MEG", 2e6),
        ("1e-6", 1e-6), ("-4m", -4e-3),
    ])
    def test_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_value("abc")


class TestParser:
    def test_inverter_deck(self, tech):
        net = parse_spice_netlist(INVERTER_DECK, tech)
        assert len(net.transistors) == 2
        pmos = next(t for t in net.transistors if t.polarity == "p")
        # M-card order is drain gate source bulk; structurally the
        # terminals may land either way (engines orient dynamically).
        assert {pmos.src, pmos.snk} == {"out", VDD_NODE}
        assert pmos.w == pytest.approx(2e-6)
        assert net.load_caps["out"] == pytest.approx(5e-15)
        assert net.primary_inputs == {"in"}
        assert net.primary_outputs == {"out"}

    def test_ground_aliases(self, tech):
        deck = "M1 out g gnd vss nmos W=1u L=0.35u\n"
        net = parse_spice_netlist(deck, tech)
        assert net.transistors[0].snk == GND_NODE

    def test_continuation_lines(self, tech):
        deck = ("M1 out in VDD VDD pmos\n"
                "+ W=2u L=0.35u\n")
        net = parse_spice_netlist(deck, tech)
        assert net.transistors[0].w == pytest.approx(2e-6)

    def test_comments_ignored(self, tech):
        deck = ("* a comment\n"
                "M1 out in 0 0 nmos W=1u L=0.35u $ trailing comment\n")
        net = parse_spice_netlist(deck, tech)
        assert len(net.transistors) == 1

    def test_resistor_value_form(self, tech):
        deck = ("Rw a b 100\n"
                "M1 a g 0 0 nmos W=1u L=0.35u\n")
        net = parse_spice_netlist(deck, tech)
        wire = net.wires[0]
        from repro.devices.capacitance import wire_resistance

        assert wire_resistance(tech.wire, wire.w,
                               wire.l) == pytest.approx(100.0)

    def test_resistor_geometry_form(self, tech):
        deck = ("Rw a b W=1u L=50u\n"
                "M1 a g 0 0 nmos W=1u L=0.35u\n")
        net = parse_spice_netlist(deck, tech)
        assert net.wires[0].l == pytest.approx(50e-6)

    def test_missing_width_rejected(self, tech):
        with pytest.raises(NetlistSyntaxError, match="missing W"):
            parse_spice_netlist("M1 a b 0 0 nmos L=0.35u\n", tech)

    def test_wrong_bulk_rejected(self, tech):
        with pytest.raises(NetlistSyntaxError, match="bulk"):
            parse_spice_netlist("M1 a b 0 VDD nmos W=1u L=0.35u\n", tech)

    def test_floating_cap_rejected(self, tech):
        deck = ("M1 a g 0 0 nmos W=1u L=0.35u\n"
                "Cc a b 1f\n")
        with pytest.raises(NetlistSyntaxError, match="grounded"):
            parse_spice_netlist(deck, tech)

    def test_unknown_card_rejected(self, tech):
        with pytest.raises(NetlistSyntaxError, match="unsupported"):
            parse_spice_netlist("Q1 a b c npn\n", tech)

    def test_parsed_netlist_extracts(self, tech):
        net = parse_spice_netlist(INVERTER_DECK, tech)
        graph = extract_stages(net, tech=tech)
        assert len(graph.stages) == 1


class TestRoundTrip:
    def test_write_then_parse(self, tech):
        net = parse_spice_netlist(INVERTER_DECK, tech)
        text = write_spice_netlist(net, tech)
        again = parse_spice_netlist(text, tech)
        assert len(again.transistors) == len(net.transistors)
        assert again.primary_inputs == net.primary_inputs
        assert again.load_caps["out"] == pytest.approx(
            net.load_caps["out"])
        by_name = {t.name: t for t in again.transistors}
        for t in net.transistors:
            assert by_name[t.name].w == pytest.approx(t.w)
            assert by_name[t.name].polarity == t.polarity


class TestWaveformIO:
    @pytest.fixture
    def result(self):
        t = np.linspace(0, 1e-9, 21)
        return TransientResult(times=t, voltages={
            "a": 3.3 * np.exp(-t / 3e-10),
            "b": 3.3 * (1 - np.exp(-t / 3e-10))})

    def test_csv_round_trip(self, result, tmp_path):
        path = str(tmp_path / "wave.csv")
        save_csv_result(result, path)
        loaded = load_csv_result(path)
        np.testing.assert_allclose(loaded.times, result.times)
        np.testing.assert_allclose(loaded.voltage("a"),
                                   result.voltage("a"), rtol=1e-6)

    def test_csv_subset_of_nodes(self, result, tmp_path):
        path = str(tmp_path / "wave.csv")
        save_csv_result(result, path, nodes=["b"])
        loaded = load_csv_result(path)
        assert loaded.node_names == ["b"]

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("volt,a\n0,1\n")
        with pytest.raises(ValueError, match="time"):
            load_csv_result(str(path))

    def test_ascii_plot_renders(self, result):
        art = ascii_plot(result, ["a", "b"], width=40, height=8)
        lines = art.splitlines()
        assert len(lines) == 8 + 3  # grid + axis + labels + legend
        assert "legend" in lines[-1]
        assert any("*" in line for line in lines)

    def test_ascii_plot_requires_nodes(self, result):
        with pytest.raises(ValueError):
            ascii_plot(result, [])
