"""Tests for the logic-stage graph model (paper Definition 1)."""

import pytest

from repro.circuit import DeviceKind, LogicStage
from repro.circuit.netlist import GND_NODE, VDD_NODE


@pytest.fixture
def stage():
    return LogicStage("test", vdd=3.3)


class TestConstruction:
    def test_poles_exist(self, stage):
        assert stage.source.name == VDD_NODE
        assert stage.sink.name == GND_NODE

    def test_rejects_nonpositive_vdd(self):
        with pytest.raises(ValueError):
            LogicStage("bad", vdd=0.0)

    def test_add_nmos_creates_nodes(self, stage):
        edge = stage.add_nmos("M1", src="a", snk=GND_NODE, gate="in",
                              w=1e-6, l=0.35e-6)
        assert edge.kind is DeviceKind.NMOS
        assert stage.node("a") is edge.src
        assert edge in stage.node("a").outgoing
        assert edge in stage.sink.incoming

    def test_duplicate_edge_name_rejected(self, stage):
        stage.add_nmos("M1", "a", GND_NODE, "x", 1e-6, 1e-6)
        with pytest.raises(ValueError):
            stage.add_nmos("M1", "b", GND_NODE, "x", 1e-6, 1e-6)

    def test_transistor_requires_gate(self, stage):
        with pytest.raises(ValueError):
            stage._add_edge("M1", DeviceKind.NMOS, "a", "b", 1e-6, 1e-6,
                            None)

    def test_wire_cannot_have_gate(self, stage):
        with pytest.raises(ValueError):
            stage._add_edge("W1", DeviceKind.WIRE, "a", "b", 1e-6, 1e-6,
                            "x")

    def test_self_loop_rejected(self, stage):
        with pytest.raises(ValueError):
            stage.add_wire("W1", "a", "a", 1e-6, 1e-6)

    def test_nonpositive_geometry_rejected(self, stage):
        with pytest.raises(ValueError):
            stage.add_nmos("M1", "a", "b", "x", 0.0, 1e-6)

    def test_load_accumulates(self, stage):
        stage.add_node("n", load_cap=1e-15)
        stage.add_node("n", load_cap=2e-15)
        assert stage.node("n").load_cap == pytest.approx(3e-15)

    def test_set_load_replaces(self, stage):
        stage.add_node("n", load_cap=1e-15)
        stage.set_load("n", 5e-15)
        assert stage.node("n").load_cap == pytest.approx(5e-15)

    def test_negative_load_rejected(self, stage):
        stage.add_node("n")
        with pytest.raises(ValueError):
            stage.set_load("n", -1.0)


class TestQueries:
    @pytest.fixture
    def inv(self, stage):
        stage.add_pmos("MP", VDD_NODE, "out", "a", 2e-6, 0.35e-6)
        stage.add_nmos("MN", "out", GND_NODE, "a", 1e-6, 0.35e-6)
        stage.mark_output("out")
        return stage

    def test_inputs_deduplicated(self, inv):
        assert inv.inputs == ["a"]

    def test_outputs(self, inv):
        assert [n.name for n in inv.outputs] == ["out"]

    def test_internal_nodes_exclude_poles(self, inv):
        assert [n.name for n in inv.internal_nodes] == ["out"]

    def test_transistors_and_wires(self, inv):
        inv.add_wire("W", "out", "far", 1e-6, 1e-5)
        assert len(inv.transistors) == 2
        assert len(inv.wires) == 1

    def test_edges_with_gate(self, inv):
        assert {e.name for e in inv.edges_with_gate("a")} == {"MP", "MN"}

    def test_edge_other(self, inv):
        edge = inv.edge("MN")
        assert edge.other(inv.node("out")) is inv.sink
        with pytest.raises(ValueError):
            edge.other(inv.source)

    def test_iteration(self, inv):
        assert {e.name for e in inv} == {"MP", "MN"}

    def test_to_networkx(self, inv):
        g = inv.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2
        assert g.nodes["out"]["is_output"]

    def test_node_degree_and_other_edges(self, inv):
        out = inv.node("out")
        assert out.degree == 2
        mn = inv.edge("MN")
        assert inv.edge("MP") in out.other_edges(mn)
        assert mn not in out.other_edges(mn)
