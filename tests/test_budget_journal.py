"""Run budgets, admission control, and the crash-safe run journal.

Covers the run-durability contract DESIGN.md §14 states: a
``--deadline`` run always finishes inside deadline+grace with honest
quality tags (the admission controller clamps the ladder full →
no-spice → bound, never the reverse), and a ``--journal`` run killed
between waves resumes bit-identically from its last flushed
checkpoint — on the serial and process backends alike.
"""

import json
import os
import time

import pytest

from repro.analysis import StaticTimingAnalyzer
from repro.analysis.parallel import (
    ExecutionConfig,
    ParallelStaEngine,
    StageResultCache,
)
from repro.circuit import builders, extract_stages
from repro.resilience import faults
from repro.resilience.budget import (
    CLAMP_BOUND,
    CLAMP_FULL,
    CLAMP_NO_SPICE,
    AdmissionController,
    RunBudget,
)
from repro.resilience.faults import FaultPlan, FaultSpec, RunKilled
from repro.resilience.journal import (
    FORMAT,
    FingerprintMismatch,
    JournalError,
    RunJournal,
    run_fingerprint,
)
from repro.spice.results import SimulationStats


@pytest.fixture(scope="module")
def decoder_graph(tech):
    return extract_stages(builders.decoder_netlist(tech, bits=2),
                          tech=tech)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """Every test starts and ends without an installed fault plan."""
    faults.uninstall()
    yield
    faults.uninstall()


class _FakeClock:
    """Injectable monotonic clock for deterministic deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# RunBudget and the admission controller.
# ----------------------------------------------------------------------
class TestRunBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunBudget(deadline=0.0)
        with pytest.raises(ValueError):
            RunBudget(deadline=-1.0)
        with pytest.raises(ValueError):
            RunBudget(deadline=10.0, grace=0.0)

    def test_grace_defaults(self):
        assert RunBudget(deadline=1.0).grace_seconds == 0.5
        assert RunBudget(deadline=100.0).grace_seconds == 10.0
        assert RunBudget(deadline=100.0, grace=2.0).grace_seconds == 2.0


class TestAdmissionController:
    def test_parallelism_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(RunBudget(1.0), parallelism=0)

    def test_clamp_ordering_disables_spice_before_bound(self):
        """The ladder degrades full -> no-spice -> bound, in order:
        moderate pressure drops only the SPICE rung; only crushing
        pressure (or a spent budget) routes straight to the bound."""
        clock = _FakeClock()
        controller = AdmissionController(RunBudget(10.0), clock=clock)
        # No cost history yet: nothing to project, run at full quality.
        assert controller.admit(0, 10) == CLAMP_FULL
        controller.note_stage_cost(2.0)
        # 5s left, 9 stages x 2s projected: over budget but under the
        # bound-pressure factor -> disable SPICE first.
        clock.now = 5.0
        assert controller.admit(1, 9) == CLAMP_NO_SPICE
        # 1s left, 16s projected (>4x): only the bound can finish.
        clock.now = 9.0
        assert controller.admit(2, 8) == CLAMP_BOUND

    def test_clamp_is_monotonic_ratchet(self):
        clock = _FakeClock()
        controller = AdmissionController(RunBudget(10.0), clock=clock)
        controller.note_stage_cost(2.0)
        clock.now = 9.0
        assert controller.admit(0, 8) == CLAMP_BOUND
        # Pressure relaxed (nothing left to project): the clamp must
        # not un-degrade mid-run — quality tags stay honest.
        clock.now = 9.1
        assert controller.admit(1, 0) == CLAMP_BOUND

    def test_past_deadline_is_bound(self):
        clock = _FakeClock()
        controller = AdmissionController(RunBudget(1.0), clock=clock)
        clock.now = 2.0
        assert controller.admit(0, 5) == CLAMP_BOUND

    def test_parallelism_divides_projection(self):
        clock = _FakeClock()
        controller = AdmissionController(RunBudget(10.0), parallelism=4,
                                         clock=clock)
        controller.note_stage_cost(2.0)
        # 8 stages x 2s over 4 workers projects 4s into 5s remaining.
        clock.now = 5.0
        assert controller.admit(0, 8) == CLAMP_FULL

    def test_exhaust_fault_forces_bound(self):
        plan = FaultPlan((FaultSpec("deadline_exhaust", nth=1),), seed=0)
        clock = _FakeClock()
        controller = AdmissionController(RunBudget(1000.0), clock=clock)
        with faults.installed(plan):
            assert controller.admit(0, 5) == CLAMP_BOUND
        assert controller.remaining() == 0.0

    def test_summary_shape(self):
        clock = _FakeClock()
        controller = AdmissionController(RunBudget(10.0, grace=1.0),
                                         clock=clock)
        controller.note_stage_cost(2.0)
        clock.now = 9.0
        controller.admit(0, 8)
        clock.now = 9.5
        summary = controller.summary()
        assert summary["deadline"] == 10.0
        assert summary["grace"] == 1.0
        assert summary["elapsed"] == 9.5
        assert summary["within_deadline"] is True
        assert summary["final_level"] == CLAMP_BOUND
        assert summary["clamped_stages"] == {CLAMP_BOUND: 1}


class TestExecutionConfigValidation:
    def test_resume_requires_journal(self):
        with pytest.raises(ValueError):
            ExecutionConfig(resume=True)

    def test_deadline_and_grace_positive(self):
        with pytest.raises(ValueError):
            ExecutionConfig(deadline=0.0)
        with pytest.raises(ValueError):
            ExecutionConfig(deadline=1.0, grace=-1.0)


# ----------------------------------------------------------------------
# The journal file format.
# ----------------------------------------------------------------------
def _arrival(net="out", direction="rise", when=1.25e-11,
             cause=("a", "fall"), slew=3e-12, quality="qwm"):
    from repro.analysis.sta import ArrivalTime

    return ArrivalTime(net=net, direction=direction, time=when,
                       cause=cause, slew=slew, quality=quality)


class TestRunJournal:
    def test_roundtrip_is_exact(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal(path, "fp", design="d", stages=2, waves=1)
        assert journal.flush()
        stats = SimulationStats(steps=3, newton_iterations=4,
                                device_evaluations=5, wall_time=0.25)
        arrival = _arrival()
        assert journal.record_wave(0, ["s1", "s0"],
                                   {("out", "rise"): arrival}, stats)
        loaded = RunJournal.load(path)
        assert loaded.fingerprint == "fp"
        assert loaded.design == "d"
        assert loaded.completed_stages() == {"s0", "s1"}
        segments = list(loaded.replay())
        assert len(segments) == 1
        wave, names, deltas, seg_stats = segments[0]
        assert wave == 0 and names == ["s0", "s1"]
        # Bit-identical: JSON shortest-repr floats round-trip exactly.
        assert deltas[("out", "rise")] == arrival
        assert seg_stats.steps == 3 and seg_stats.wall_time == 0.25

    def test_record_wave_is_idempotent(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal(path, "fp")
        assert journal.record_wave(0, ["s"], {("n", "rise"): _arrival()},
                                   SimulationStats())
        assert not journal.record_wave(
            0, ["s"], {("n", "rise"): _arrival(when=9.9)},
            SimulationStats())
        assert len(RunJournal.load(path).segments) == 1

    def test_corrupt_tail_dropped_not_fatal(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal(path, "fp")
        journal.record_wave(0, ["s0"], {("a", "rise"): _arrival()},
                            SimulationStats())
        journal.record_wave(1, ["s1"], {("b", "rise"): _arrival()},
                            SimulationStats())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"wave": 2, "arrivals"')  # torn write
        loaded = RunJournal.load(path)
        assert sorted(loaded.segments) == [0, 1]
        assert loaded.dropped_lines == 1

    def test_unusable_files_raise_journal_error(self, tmp_path):
        with pytest.raises(JournalError):
            RunJournal.load(str(tmp_path / "missing.jsonl"))
        other = tmp_path / "other.json"
        other.write_text('{"not": "a journal"}\n')
        with pytest.raises(JournalError):
            RunJournal.load(str(other))

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        RunJournal(path, "fp-a").flush()
        loaded = RunJournal.load(path)
        loaded.require_fingerprint("fp-a")
        with pytest.raises(FingerprintMismatch):
            loaded.require_fingerprint("fp-b")

    def test_enospc_disables_durability_not_the_run(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        plan = FaultPlan((FaultSpec("journal_enospc", count=1),), seed=0)
        journal = RunJournal(path, "fp")
        with faults.installed(plan):
            assert journal.flush() is False
        assert journal.disabled
        assert not os.path.exists(path + ".tmp")
        assert journal.record_wave(0, ["s"], {}, SimulationStats()) \
            is False

    def test_fingerprint_tracks_inputs_and_options(self, tech, library,
                                                   decoder_graph):
        analyzer = StaticTimingAnalyzer(tech, library=library)
        base = run_fingerprint(decoder_graph, analyzer)
        assert base == run_fingerprint(decoder_graph, analyzer)
        seeded = run_fingerprint(decoder_graph, analyzer,
                                 {("a0", "rise"): 1e-12})
        assert seeded != base
        slewed = StaticTimingAnalyzer(tech, library=library,
                                      propagate_slews=True)
        assert run_fingerprint(decoder_graph, slewed) != base


# ----------------------------------------------------------------------
# Kill -> resume bit-identity (the acceptance criterion).
# ----------------------------------------------------------------------
def _journaled(tech, library, path, resume=False, backend="serial",
               workers=1):
    return StaticTimingAnalyzer(
        tech, library=library,
        execution=ExecutionConfig(backend=backend, workers=workers,
                                  journal_path=str(path), resume=resume))


class TestKillResume:
    def test_serial_kill_then_resume_bit_identical(
            self, tech, library, decoder_graph, tmp_path):
        path = tmp_path / "journal.jsonl"
        plan = FaultPlan((FaultSpec("run_kill", wave=0, count=1),),
                         seed=0)
        with faults.installed(plan):
            with pytest.raises(RunKilled):
                _journaled(tech, library, path).analyze(decoder_graph)
        assert path.exists()
        resumed = _journaled(tech, library, path,
                             resume=True).analyze(decoder_graph)
        baseline = StaticTimingAnalyzer(
            tech, library=library).analyze(decoder_graph)
        assert resumed.arrivals == baseline.arrivals
        assert resumed.worst == baseline.worst
        assert resumed.resumed_waves >= 1
        assert not resumed.partial

    def test_double_resume_is_idempotent(self, tech, library,
                                         decoder_graph, tmp_path):
        path = tmp_path / "journal.jsonl"
        first = _journaled(tech, library, path).analyze(decoder_graph)
        bytes_after_run = path.read_bytes()
        again = _journaled(tech, library, path,
                           resume=True).analyze(decoder_graph)
        # Every wave replays, nothing re-records, no bytes change.
        assert again.arrivals == first.arrivals
        assert again.resumed_waves == again.journal["waves"]
        assert path.read_bytes() == bytes_after_run

    def test_resume_missing_journal_starts_fresh(self, tech, library,
                                                 decoder_graph,
                                                 tmp_path):
        path = tmp_path / "journal.jsonl"
        result = _journaled(tech, library, path,
                            resume=True).analyze(decoder_graph)
        assert result.resumed_waves == 0
        assert path.exists()

    @pytest.mark.slow
    def test_process_kill_then_resume_bit_identical(
            self, tech, library, decoder_graph, tmp_path):
        path = tmp_path / "journal.jsonl"
        plan = FaultPlan((FaultSpec("run_kill", wave=0, count=1),),
                         seed=0)
        with faults.installed(plan):
            with pytest.raises(RunKilled):
                _journaled(tech, library, path, backend="process",
                           workers=2).analyze(decoder_graph)
        resumed = _journaled(tech, library, path, resume=True,
                             backend="process",
                             workers=2).analyze(decoder_graph)
        baseline = StaticTimingAnalyzer(
            tech, library=library).analyze(decoder_graph)
        assert resumed.arrivals == baseline.arrivals
        assert resumed.resumed_waves >= 1

    def test_enospc_run_still_completes(self, tech, library,
                                        decoder_graph, tmp_path):
        path = tmp_path / "journal.jsonl"
        plan = FaultPlan((FaultSpec("journal_enospc", count=1),), seed=0)
        with faults.installed(plan):
            result = _journaled(tech, library,
                                path).analyze(decoder_graph)
        baseline = StaticTimingAnalyzer(
            tech, library=library).analyze(decoder_graph)
        assert result.journal["disabled"] is True
        assert result.arrivals == baseline.arrivals


# ----------------------------------------------------------------------
# Deadline-budgeted runs.
# ----------------------------------------------------------------------
class TestDeadlineRuns:
    def test_spent_deadline_degrades_to_bound_and_completes(
            self, tech, library, decoder_graph):
        result = StaticTimingAnalyzer(
            tech, library=library,
            execution=ExecutionConfig(deadline=1e-9)
        ).analyze(decoder_graph)
        assert result.worst is not None
        assert result.budget["final_level"] == CLAMP_BOUND
        qualities = {a.quality for a in result.arrivals.values()
                     if a.quality is not None}
        assert qualities == {"bounded"}

    def test_generous_deadline_never_clamps(self, tech, library,
                                            decoder_graph):
        plain = StaticTimingAnalyzer(
            tech, library=library).analyze(decoder_graph)
        budgeted = StaticTimingAnalyzer(
            tech, library=library,
            execution=ExecutionConfig(deadline=600.0)
        ).analyze(decoder_graph)
        assert budgeted.budget["final_level"] == CLAMP_FULL
        assert budgeted.budget["clamped_stages"] == {}
        assert budgeted.budget["within_deadline"] is True
        assert budgeted.degraded() == {}
        assert budgeted.arrivals == plain.arrivals

    def test_clamped_results_never_stored_to_shared_cache(
            self, tech, library, decoder_graph):
        analyzer = StaticTimingAnalyzer(tech, library=library)
        cache = StageResultCache()
        engine = ParallelStaEngine(
            analyzer, ExecutionConfig(deadline=1e-9, cache=True),
            cache=cache)
        result = engine.run(decoder_graph)
        assert result.worst is not None
        # Bounded answers are one run's compromise, not reusable truth.
        assert len(cache) == 0


# ----------------------------------------------------------------------
# Graceful interrupt -> partial result -> resume to full.
# ----------------------------------------------------------------------
class TestInterruptResume:
    def test_interrupted_run_is_partial_then_resumes_full(
            self, tech, library, decoder_graph, tmp_path):
        path = tmp_path / "journal.jsonl"
        analyzer = StaticTimingAnalyzer(tech, library=library)
        engine = ParallelStaEngine(
            analyzer, ExecutionConfig(journal_path=str(path)))
        original = RunJournal.record_wave

        def stop_after_first_wave(journal, wave, names, deltas, stats):
            recorded = original(journal, wave, names, deltas, stats)
            engine._interrupt.set()
            return recorded

        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(RunJournal, "record_wave",
                            stop_after_first_wave)
            partial = engine.run(decoder_graph)
        assert partial.partial
        assert len(partial.arrivals) < len(
            StaticTimingAnalyzer(tech, library=library)
            .analyze(decoder_graph).arrivals)
        resumed = _journaled(tech, library, path,
                             resume=True).analyze(decoder_graph)
        baseline = StaticTimingAnalyzer(
            tech, library=library).analyze(decoder_graph)
        assert not resumed.partial
        assert resumed.arrivals == baseline.arrivals


# ----------------------------------------------------------------------
# Worker-death recovery re-dispatches only the casualty.
# ----------------------------------------------------------------------
class TestWorkerDeathRecovery:
    @staticmethod
    def _chain_graph(tech, n=4):
        """An n-inverter chain: one stage per wave, so exactly one
        task is ever in flight and the crash casualty is determined."""
        from repro.io import parse_spice_netlist

        lines = []
        prev = "a"
        for i in range(n):
            out = f"n{i}"
            lines.append(f"MP{i} {out} {prev} VDD VDD pmos "
                         f"W=2u L=0.35u")
            lines.append(f"MN{i} {out} {prev} 0 0 nmos W=1u L=0.35u")
            lines.append(f"C{i} {out} 0 5f")
            prev = out
        lines += [".input a", f".output n{n - 1}"]
        netlist = parse_spice_netlist("\n".join(lines), tech,
                                      name="inv-chain")
        return extract_stages(netlist, tech=tech)

    @pytest.mark.slow
    def test_crash_redispatches_only_the_dead_stage(self, tech,
                                                    library):
        from repro.obs import ObsConfig, configure, disable, telemetry
        from repro.resilience.chaos import _leaf_stage

        graph = self._chain_graph(tech)
        target = _leaf_stage(graph)
        plan = FaultPlan((FaultSpec("worker_crash", stage=target,
                                    count=1),), seed=0)
        configure(ObsConfig(enabled=True))
        try:
            metrics = telemetry().metrics
            redispatch0 = metrics.counter(
                "sta.parallel.redispatch").total()
            with faults.installed(plan):
                result = StaticTimingAnalyzer(
                    tech, library=library,
                    execution=ExecutionConfig(backend="process",
                                              workers=2)
                ).analyze(graph)
            redispatched = metrics.counter(
                "sta.parallel.redispatch").total() - redispatch0
        finally:
            disable()
        # Exactly the casualty re-runs in the parent; nothing else is
        # ever torn down and re-solved for one dead worker.
        assert redispatched == 1
        baseline = StaticTimingAnalyzer(tech,
                                        library=library).analyze(graph)
        assert result.arrivals == baseline.arrivals


# ----------------------------------------------------------------------
# Overhead: the durability hooks are free when not configured.
# ----------------------------------------------------------------------
class TestOverhead:
    @pytest.mark.slow
    def test_durability_hooks_free_when_disabled(self, tech, library,
                                                 decoder_graph):
        plain = StaticTimingAnalyzer(tech, library=library)
        engine_analyzer = StaticTimingAnalyzer(
            tech, library=library, execution=ExecutionConfig())
        plain.analyze(decoder_graph)          # warm both paths
        engine_analyzer.analyze(decoder_graph)

        def timed(analyzer):
            started = time.perf_counter()
            analyzer.analyze(decoder_graph)
            return time.perf_counter() - started

        # Interleave the measurements so load spikes hit both paths;
        # min-of-N discards the noise.
        reference = float("inf")
        engine = float("inf")
        for _ in range(5):
            reference = min(reference, timed(plain))
            engine = min(engine, timed(engine_analyzer))
        # The disabled hooks are attribute checks (<1%); the gate
        # allows 5% + a floor because decoder solve times jitter far
        # more than that between runs (same budget the profiler
        # overhead gate uses).
        assert engine < reference * 1.05 + 5e-3


# ----------------------------------------------------------------------
# Chaos matrix integration: the run-durability scenarios.
# ----------------------------------------------------------------------
JOURNAL_SCENARIOS = ["journal-kill-resume", "journal-enospc",
                     "journal-truncate", "deadline-exhaust"]


class TestChaosIntegration:
    def test_serial_durability_scenarios_absorbed(self, tech, library):
        from repro.resilience.chaos import run_matrix

        report = run_matrix(seed=0, tech=tech, library=library,
                            only=JOURNAL_SCENARIOS)
        for outcome in report.outcomes:
            assert outcome.absorbed, (outcome.name, outcome.absorbed_by,
                                      outcome.error)

    @pytest.mark.slow
    def test_process_kill_resume_scenario_absorbed(self, tech, library):
        from repro.resilience.chaos import run_matrix

        report = run_matrix(seed=0, tech=tech, library=library,
                            only=["journal-kill-resume-process"])
        outcome = report.outcomes[0]
        assert outcome.absorbed, (outcome.absorbed_by, outcome.error)


# ----------------------------------------------------------------------
# CLI.
# ----------------------------------------------------------------------
class TestCli:
    def _deck(self, tmp_path):
        deck = tmp_path / "inv.sp"
        deck.write_text(
            "Mp out a VDD VDD pmos W=2u L=0.35u\n"
            "Mn out a 0 0 nmos W=1u L=0.35u\n"
            "Cout out 0 5f\n"
            ".input a\n.output out\n")
        return deck

    def test_fail_on_degraded_gates_clamped_run(self, tmp_path, capsys):
        from repro.cli import main

        deck = self._deck(tmp_path)
        code = main(["sta", str(deck), "--deadline", "0.000000001",
                     "--fail-on-degraded"])
        captured = capsys.readouterr()
        assert code == 3
        assert "fail-on-degraded" in captured.err
        assert "Run budget:" in captured.out

    def test_journal_write_and_resume(self, tmp_path, capsys):
        from repro.cli import main

        deck = self._deck(tmp_path)
        journal = tmp_path / "journal.jsonl"
        assert main(["sta", str(deck), "--journal",
                     str(journal)]) == 0
        header = json.loads(
            journal.read_text().splitlines()[0])
        assert header["format"] == FORMAT
        assert main(["sta", str(deck), "--journal", str(journal),
                     "--resume"]) == 0
        out = capsys.readouterr().out
        assert "Run journal:" in out
