"""Tests for the input-source waveforms."""

import pytest

from repro.spice import (
    ConstantSource,
    PulseSource,
    PWLSource,
    RampSource,
    StepSource,
    as_source,
)


class TestConstant:
    def test_value_and_slope(self):
        s = ConstantSource(2.5)
        assert s.value(0.0) == 2.5
        assert s.value(1.0) == 2.5
        assert s.slope(0.5) == 0.0

    def test_as_source_coerces_numbers(self):
        s = as_source(3.3)
        assert isinstance(s, ConstantSource)
        assert s.value(0) == 3.3

    def test_as_source_passthrough(self):
        s = StepSource(0, 1, 0)
        assert as_source(s) is s


class TestStep:
    def test_edges(self):
        s = StepSource(0.0, 3.3, 1e-9)
        assert s.value(0.999e-9) == 0.0
        assert s.value(1e-9) == 3.3
        assert s.value(2e-9) == 3.3

    def test_slope_zero(self):
        s = StepSource(0.0, 3.3, 1e-9)
        assert s.slope(0.5e-9) == 0.0
        assert s.slope(2e-9) == 0.0

    def test_callable(self):
        s = StepSource(1.0, 2.0, 0.0)
        assert s(5.0) == 2.0


class TestRamp:
    def test_interpolation(self):
        s = RampSource(0.0, 2.0, t_start=1.0, t_rise=2.0)
        assert s.value(0.5) == 0.0
        assert s.value(2.0) == pytest.approx(1.0)
        assert s.value(3.5) == 2.0

    def test_slope(self):
        s = RampSource(0.0, 2.0, t_start=1.0, t_rise=2.0)
        assert s.slope(2.0) == pytest.approx(1.0)
        assert s.slope(0.5) == 0.0
        assert s.slope(4.0) == 0.0

    def test_falling_ramp(self):
        s = RampSource(3.3, 0.0, t_start=0.0, t_rise=1.0)
        assert s.value(0.5) == pytest.approx(1.65)
        assert s.slope(0.5) == pytest.approx(-3.3)

    def test_rejects_zero_rise(self):
        with pytest.raises(ValueError):
            RampSource(0, 1, 0, 0.0)


class TestPulse:
    def test_phases(self):
        s = PulseSource(v0=0.0, v1=1.0, delay=1.0, rise=1.0, width=2.0,
                        fall=1.0)
        assert s.value(0.5) == 0.0
        assert s.value(1.5) == pytest.approx(0.5)
        assert s.value(3.0) == 1.0
        assert s.value(4.5) == pytest.approx(0.5)
        assert s.value(10.0) == 0.0

    def test_periodic(self):
        s = PulseSource(0.0, 1.0, delay=0.0, rise=0.1, width=0.3,
                        fall=0.1, period=1.0)
        assert s.value(0.2) == 1.0
        assert s.value(1.2) == pytest.approx(s.value(0.2))


class TestPWL:
    def test_interpolates(self):
        s = PWLSource([(0.0, 0.0), (1.0, 2.0), (3.0, 1.0)])
        assert s.value(-1.0) == 0.0
        assert s.value(0.5) == pytest.approx(1.0)
        assert s.value(2.0) == pytest.approx(1.5)
        assert s.value(5.0) == 1.0

    def test_slope_via_default_fd(self):
        s = PWLSource([(0.0, 0.0), (1.0, 1.0)])
        assert s.slope(0.5) == pytest.approx(1.0, rel=1e-3)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            PWLSource([(1.0, 0.0), (0.5, 1.0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PWLSource([])
