"""Tests for the parasitic capacitance models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import CMOSP35
from repro.devices.capacitance import (
    equivalent_junction_cap,
    gate_capacitance,
    junction_capacitance,
    mosfet_capacitances,
    stage_node_capacitance,
    wire_capacitance,
    wire_resistance,
)

TECH = CMOSP35
NP = TECH.nmos


class TestJunctionCap:
    def test_zero_bias_equals_sum_of_terms(self):
        w = 1e-6
        cap = junction_capacitance(NP, w, 0.0)
        area = w * NP.ldiff
        perim = 2.0 * (w + NP.ldiff)
        assert cap == pytest.approx(NP.cj * area + NP.cjsw * perim)

    def test_reverse_bias_shrinks_cap(self):
        w = 1e-6
        assert junction_capacitance(NP, w, 3.3) < junction_capacitance(
            NP, w, 0.0)

    def test_monotone_in_bias(self):
        w = 2e-6
        caps = [junction_capacitance(NP, w, v) for v in
                (0.0, 0.5, 1.0, 2.0, 3.3)]
        assert all(b < a for a, b in zip(caps, caps[1:]))

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            junction_capacitance(NP, 0.0, 1.0)

    def test_equivalent_cap_between_extremes(self):
        w = 1e-6
        ceq = equivalent_junction_cap(NP, w, 0.0, 3.3)
        c_lo = junction_capacitance(NP, w, 3.3)
        c_hi = junction_capacitance(NP, w, 0.0)
        assert c_lo < ceq < c_hi

    def test_equivalent_cap_degenerate_span(self):
        w = 1e-6
        ceq = equivalent_junction_cap(NP, w, 1.0, 1.0)
        assert ceq == pytest.approx(junction_capacitance(NP, w, 1.0))

    @settings(max_examples=40, deadline=None)
    @given(v0=st.floats(0.0, 3.3), v1=st.floats(0.0, 3.3))
    def test_equivalent_cap_is_charge_consistent(self, v0, v1):
        # Ceq * (v1 - v0) must equal the charge integral, so swapping
        # the endpoints leaves Ceq unchanged.
        w = 1e-6
        a = equivalent_junction_cap(NP, w, v0, v1)
        b = equivalent_junction_cap(NP, w, v1, v0)
        assert a == pytest.approx(b, rel=1e-9)


class TestGateCap:
    def test_scales_with_area(self):
        c1 = gate_capacitance(NP, 1e-6, TECH.lmin)
        c2 = gate_capacitance(NP, 2e-6, TECH.lmin)
        assert c2 > c1

    def test_meyer_split_sums_preserved(self):
        w, l = 1e-6, TECH.lmin
        cox_total = NP.cox * w * l
        for region in ("cutoff", "triode", "saturation"):
            caps = mosfet_capacitances(NP, w, l, region=region)
            intrinsic = caps.cgs + caps.cgd + caps.cgb - 2 * NP.cov * w
            # Meyer model conserves at most the oxide cap.
            assert intrinsic <= cox_total + 1e-20

    def test_unknown_region_rejected(self):
        with pytest.raises(ValueError):
            mosfet_capacitances(NP, 1e-6, TECH.lmin, region="weird")

    def test_gate_total(self):
        caps = mosfet_capacitances(NP, 1e-6, TECH.lmin)
        assert caps.gate_total == pytest.approx(
            caps.cgs + caps.cgd + caps.cgb)


class TestWire:
    def test_resistance_formula(self):
        r = wire_resistance(TECH.wire, 1e-6, 100e-6)
        assert r == pytest.approx(TECH.wire.sheet_resistance * 100.0)

    def test_capacitance_grows_with_length(self):
        c1 = wire_capacitance(TECH.wire, 1e-6, 10e-6)
        c2 = wire_capacitance(TECH.wire, 1e-6, 20e-6)
        assert c2 > c1 * 1.9

    def test_zero_length_wire(self):
        assert wire_capacitance(TECH.wire, 1e-6, 0.0) == 0.0
        assert wire_resistance(TECH.wire, 1e-6, 0.0) == 0.0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            wire_resistance(TECH.wire, 0.0, 1e-6)
        with pytest.raises(ValueError):
            wire_capacitance(TECH.wire, 1e-6, -1.0)


class TestStageNodeCap:
    def test_sums_contributions(self):
        total = stage_node_capacitance(
            TECH,
            nmos_widths=(1e-6,),
            pmos_widths=(2e-6,),
            gate_loads=((1e-6, TECH.lmin, "n"),),
            extra=1e-15)
        assert total > 1e-15
        only_extra = stage_node_capacitance(TECH, extra=1e-15)
        assert only_extra == pytest.approx(1e-15)
