"""Tests for the damped Newton-Raphson driver."""

import numpy as np
import pytest

from repro.linalg import (
    NewtonConvergenceError,
    NewtonOptions,
    NewtonResult,
    NewtonSolver,
)


class TestScalarProblems:
    def test_square_root(self):
        solver = NewtonSolver()
        result = solver.solve(
            residual=lambda x: np.array([x[0] ** 2 - 9.0]),
            jacobian=lambda x: np.array([[2.0 * x[0]]]),
            x0=np.array([1.0]))
        assert result.x[0] == pytest.approx(3.0, abs=1e-8)
        assert result.converged

    def test_already_converged_takes_no_iterations(self):
        solver = NewtonSolver()
        result = solver.solve(
            residual=lambda x: np.array([0.0]),
            jacobian=lambda x: np.array([[1.0]]),
            x0=np.array([5.0]))
        assert result.iterations == 0
        assert result.x[0] == 5.0

    def test_quadratic_convergence_speed(self):
        solver = NewtonSolver()
        result = solver.solve(
            residual=lambda x: np.array([np.exp(x[0]) - 2.0]),
            jacobian=lambda x: np.array([[np.exp(x[0])]]),
            x0=np.array([0.0]))
        assert result.x[0] == pytest.approx(np.log(2.0), abs=1e-10)
        assert result.iterations <= 8


class TestMultidimensional:
    def test_linear_system_in_one_step(self):
        a = np.array([[3.0, 1.0], [1.0, 2.0]])
        b = np.array([5.0, 5.0])
        solver = NewtonSolver()
        result = solver.solve(
            residual=lambda x: a @ x - b,
            jacobian=lambda x: a,
            x0=np.zeros(2))
        np.testing.assert_allclose(result.x, np.linalg.solve(a, b),
                                   atol=1e-10)
        assert result.iterations <= 2

    def test_rosenbrock_gradient_root(self):
        def residual(x):
            return np.array([
                -2.0 * (1 - x[0]) - 400.0 * x[0] * (x[1] - x[0] ** 2),
                200.0 * (x[1] - x[0] ** 2),
            ])

        def jacobian(x):
            return np.array([
                [2.0 - 400.0 * (x[1] - 3.0 * x[0] ** 2), -400.0 * x[0]],
                [-400.0 * x[0], 200.0],
            ])

        solver = NewtonSolver(NewtonOptions(max_iterations=200))
        result = solver.solve(residual, jacobian, np.array([-1.2, 1.0]))
        np.testing.assert_allclose(result.x, [1.0, 1.0], atol=1e-6)


class TestControls:
    def test_max_iterations_raises(self):
        solver = NewtonSolver(NewtonOptions(max_iterations=3,
                                            line_search=False))
        # No root: x^2 + 1 = 0 over the reals.
        with pytest.raises(NewtonConvergenceError) as info:
            solver.solve(
                residual=lambda x: np.array([x[0] ** 2 + 1.0]),
                jacobian=lambda x: np.array([[2.0 * x[0] + 1e-3]]),
                x0=np.array([1.0]))
        assert info.value.last_residual_norm > 0

    def test_singular_jacobian_raises(self):
        solver = NewtonSolver()
        with pytest.raises(NewtonConvergenceError):
            solver.solve(
                residual=lambda x: np.array([x[0] + 1.0]),
                jacobian=lambda x: np.array([[0.0]]),
                x0=np.array([0.0]))

    def test_max_step_limits_update(self):
        seen = []

        def residual(x):
            seen.append(float(x[0]))
            return np.array([1000.0 * x[0] - 1.0])

        solver = NewtonSolver(NewtonOptions(max_step=1e-4,
                                            line_search=False,
                                            max_iterations=50))
        result = solver.solve(residual,
                              lambda x: np.array([[1000.0]]),
                              np.array([0.0]))
        assert result.x[0] == pytest.approx(1e-3, rel=1e-4)
        # Steps were clamped: first update must be exactly max_step.
        assert abs(seen[1] - seen[0]) <= 1e-4 + 1e-12

    def test_line_search_recovers_overshoot(self):
        # atan has a famously divergent Newton iteration from |x|>~1.39
        # without damping; the line search must rescue it.
        solver = NewtonSolver(NewtonOptions(max_iterations=100))
        result = solver.solve(
            residual=lambda x: np.array([np.arctan(x[0])]),
            jacobian=lambda x: np.array([[1.0 / (1.0 + x[0] ** 2)]]),
            x0=np.array([2.0]))
        assert result.x[0] == pytest.approx(0.0, abs=1e-7)

    def test_custom_linear_solver_is_used(self):
        calls = []

        def linear_solve(jac, rhs):
            calls.append(1)
            return np.linalg.solve(jac, rhs)

        solver = NewtonSolver()
        solver.solve(
            residual=lambda x: np.array([x[0] - 1.0]),
            jacobian=lambda x: np.array([[1.0]]),
            x0=np.array([0.0]),
            linear_solve=linear_solve)
        assert calls

    def test_result_reports_function_evaluations(self):
        solver = NewtonSolver()
        result = solver.solve(
            residual=lambda x: np.array([x[0] ** 3 - 8.0]),
            jacobian=lambda x: np.array([[3.0 * x[0] ** 2]]),
            x0=np.array([1.0]))
        assert isinstance(result, NewtonResult)
        assert result.function_evaluations >= result.iterations
