"""Tests for the QWM scheduler and public evaluator."""

import numpy as np
import pytest

from repro.circuit import builders
from repro.core import QWMOptions, QWMSolver, WaveformEvaluator, extract_path
from repro.spice import ConstantSource, StepSource
from repro.spice.sources import as_source


def _stack_inputs(tech, k, t0=0.0):
    inputs = {"g1": StepSource(0.0, tech.vdd, t0)}
    inputs.update({f"g{j}": ConstantSource(tech.vdd)
                   for j in range(2, k + 1)})
    return inputs


class TestScheduler:
    def test_stack_critical_points_ordered(self, tech, evaluator):
        st = builders.nmos_stack(tech, 5, widths=[1e-6] * 5, load=10e-15)
        sol = evaluator.evaluate(st, "out", "fall",
                                 _stack_inputs(tech, 5))
        times = sol.critical_times
        assert times == sorted(times)
        assert len(times) >= 5

    def test_stack_cascade_monotone_nodes(self, tech, evaluator):
        st = builders.nmos_stack(tech, 4, widths=[1e-6] * 4, load=10e-15)
        sol = evaluator.evaluate(st, "out", "fall",
                                 _stack_inputs(tech, 4))
        # Each node ends below where it started and the 50% crossings
        # are ordered bottom-up (the Fig. 7 cascade).
        crossings = []
        for name in ("n1", "n2", "n3", "out"):
            wave = sol.waveforms[name]
            assert wave.final_value() < 1.0
            crossings.append(wave.crossing_time(0.5 * tech.vdd))
        assert all(c is not None for c in crossings)
        assert crossings == sorted(crossings)

    def test_number_of_solves_scales_with_k(self, tech, evaluator):
        # "complexity equivalent to only K DC operating point
        # calculations": regions grow linearly, not with 1/dt.
        st3 = builders.nmos_stack(tech, 3, widths=[1e-6] * 3)
        st8 = builders.nmos_stack(tech, 8, widths=[1e-6] * 8)
        s3 = evaluator.evaluate(st3, "out", "fall", _stack_inputs(tech, 3))
        s8 = evaluator.evaluate(st8, "out", "fall", _stack_inputs(tech, 8))
        assert s8.stats.steps > s3.stats.steps
        assert s8.stats.steps < 60  # small multiple of K, never 1/dt

    def test_delayed_step_shifts_schedule(self, tech, evaluator):
        st = builders.nmos_stack(tech, 3, widths=[1e-6] * 3)
        sol0 = evaluator.evaluate(st, "out", "fall",
                                  _stack_inputs(tech, 3, t0=0.0))
        sol50 = evaluator.evaluate(st, "out", "fall",
                                   _stack_inputs(tech, 3, t0=50e-12))
        d0 = sol0.delay(t_input=0.0)
        d50 = sol50.delay(t_input=50e-12)
        assert d50 == pytest.approx(d0, rel=1e-6)

    def test_output_never_rises_during_fall(self, tech, evaluator):
        st = builders.nmos_stack(tech, 4, widths=[1e-6] * 4, load=10e-15)
        sol = evaluator.evaluate(st, "out", "fall",
                                 _stack_inputs(tech, 4))
        t = np.linspace(0.0, sol.critical_times[-1], 200)
        v = sol.output_waveform.sample(t)
        assert np.all(np.diff(v) < 1e-3)

    def test_missing_input_rejected(self, tech, library):
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2)
        sources = {"g1": as_source(StepSource(0, tech.vdd, 0)),
                   "g2": as_source(ConstantSource(tech.vdd))}
        path = extract_path(st, "out", "fall", sources, library)
        solver = QWMSolver(path)
        with pytest.raises(ValueError, match="missing source"):
            solver.solve({"g1": StepSource(0, tech.vdd, 0)},
                         {"n1": tech.vdd, "out": tech.vdd})

    def test_never_activating_input_gives_flat_output(self, tech,
                                                      library):
        # Extract with conducting levels, then drive with a source that
        # never turns the bottom device on: the schedule must bail out
        # at activation and leave the output untouched.
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2)
        extract_sources = {"g1": as_source(ConstantSource(tech.vdd)),
                           "g2": as_source(ConstantSource(tech.vdd))}
        path = extract_path(st, "out", "fall", extract_sources, library)
        solver = QWMSolver(path, QWMOptions(t_stop=200e-12))
        sol = solver.solve({"g1": ConstantSource(0.0),
                            "g2": ConstantSource(tech.vdd)},
                           {"n1": tech.vdd, "out": tech.vdd})
        assert sol.output_waveform.final_value() == pytest.approx(
            tech.vdd, abs=1e-6)

    def test_stats_populated(self, tech, evaluator):
        st = builders.nmos_stack(tech, 3, widths=[1e-6] * 3)
        sol = evaluator.evaluate(st, "out", "fall",
                                 _stack_inputs(tech, 3))
        assert sol.stats.steps > 0
        assert sol.stats.newton_iterations >= sol.stats.steps
        assert sol.stats.device_evaluations > 0
        assert sol.stats.wall_time > 0


class TestSolutionApi:
    def test_to_transient_result_default_breakpoints(self, tech,
                                                     evaluator):
        st = builders.nmos_stack(tech, 3, widths=[1e-6] * 3)
        sol = evaluator.evaluate(st, "out", "fall",
                                 _stack_inputs(tech, 3))
        res = sol.to_transient_result()
        assert res.label == "qwm"
        assert set(res.node_names) == {"n1", "n2", "out"}
        assert res.times.shape == res.voltage("out").shape

    def test_to_transient_result_custom_times(self, tech, evaluator):
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2)
        sol = evaluator.evaluate(st, "out", "fall",
                                 _stack_inputs(tech, 2))
        t = np.linspace(0.0, 300e-12, 31)
        res = sol.to_transient_result(t)
        assert res.times.shape == (31,)

    def test_delay_fraction(self, tech, evaluator):
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2)
        sol = evaluator.evaluate(st, "out", "fall",
                                 _stack_inputs(tech, 2))
        d90 = sol.delay(fraction=0.9)
        d10 = sol.delay(fraction=0.1)
        assert d90 < sol.delay() < d10


class TestEvaluatorApi:
    def test_rise_direction(self, tech, evaluator):
        inv = builders.inverter(tech)
        sol = evaluator.evaluate(inv, "out", "rise",
                                 {"a": StepSource(tech.vdd, 0.0, 0.0)})
        wave = sol.output_waveform
        # The falling gate step couples the output below ground first
        # (Miller kick; no junction diodes in the model), then the PMOS
        # pulls it to the rail.
        assert -1.5 < wave.value(0.0) < 0.1
        assert wave.final_value() > 0.9 * tech.vdd

    def test_degraded_precharge_levels(self, tech, evaluator):
        nd = builders.nand_gate(tech, 3)
        inputs = {"a0": StepSource(0, tech.vdd, 0),
                  "a1": ConstantSource(tech.vdd),
                  "a2": ConstantSource(tech.vdd)}
        path = evaluator.extract(nd, "out", "fall", inputs)
        init = evaluator.default_initial(path, "degraded")
        assert init["out"] == pytest.approx(tech.vdd)
        # Internal nodes one body-affected threshold down, consistent
        # with the fixed point u = vdd - vth(u).
        assert 2.0 < init["n1"] < 2.5

    def test_explicit_initial_overrides(self, tech, evaluator):
        # Step at 20 ps so t=0 shows the unkicked initial condition.
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2)
        sol = evaluator.evaluate(st, "out", "fall",
                                 _stack_inputs(tech, 2, t0=20e-12),
                                 initial={"n1": 2.0})
        assert sol.waveforms["n1"].value(0.0) == pytest.approx(2.0)

    def test_invalid_precharge_rejected(self, tech, evaluator):
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2)
        path = evaluator.extract(st, "out", "fall",
                                 _stack_inputs(tech, 2))
        with pytest.raises(ValueError):
            evaluator.default_initial(path, "mystery")

    def test_delay_helper(self, tech, evaluator):
        inv = builders.inverter(tech)
        d = evaluator.delay(inv, "out", "fall",
                            {"a": StepSource(0, tech.vdd, 0)})
        assert 5e-12 < d < 200e-12

    def test_substeps_option_increases_regions(self, tech, library):
        st = builders.nmos_stack(tech, 5, widths=[1e-6] * 5)
        e1 = WaveformEvaluator(tech, library=library,
                               options=QWMOptions(cascade_substeps=1))
        e3 = WaveformEvaluator(tech, library=library,
                               options=QWMOptions(cascade_substeps=3))
        s1 = e1.evaluate(st, "out", "fall", _stack_inputs(tech, 5))
        s3 = e3.evaluate(st, "out", "fall", _stack_inputs(tech, 5))
        assert s3.stats.steps > s1.stats.steps
        # And the answers agree to a few percent.
        assert s3.delay() == pytest.approx(s1.delay(), rel=0.05)
