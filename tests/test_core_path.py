"""Tests for pull-path extraction."""

import numpy as np
import pytest

from repro.circuit import DeviceKind, builders
from repro.core import extract_path
from repro.spice import ConstantSource, StepSource


class TestGatePaths:
    def test_inverter_fall_path(self, tech, library):
        inv = builders.inverter(tech)
        path = extract_path(inv, "out", "fall",
                            {"a": StepSource(0, tech.vdd, 0)}, library)
        assert path.length == 1
        assert path.devices[0].kind is DeviceKind.NMOS
        assert path.node_names == ["out"]
        assert path.node_caps[0] > 0

    def test_inverter_rise_path(self, tech, library):
        inv = builders.inverter(tech)
        path = extract_path(inv, "out", "rise",
                            {"a": StepSource(tech.vdd, 0, 0)}, library)
        assert path.devices[0].kind is DeviceKind.PMOS
        assert path.direction == "rise"

    def test_nand_fall_path_is_full_stack(self, tech, library):
        nd = builders.nand_gate(tech, 4)
        inputs = {"a0": StepSource(0, tech.vdd, 0)}
        inputs.update({f"a{i}": ConstantSource(tech.vdd)
                       for i in range(1, 4)})
        path = extract_path(nd, "out", "fall", inputs, library)
        assert path.length == 4
        assert [d.gate for d in path.devices] == ["a0", "a1", "a2", "a3"]
        assert path.node_names[-1] == "out"

    def test_no_path_when_inputs_block(self, tech, library):
        nd = builders.nand_gate(tech, 2)
        with pytest.raises(ValueError, match="no conducting"):
            extract_path(nd, "out", "fall",
                         {"a0": ConstantSource(0.0),
                          "a1": ConstantSource(0.0)}, library)

    def test_output_cap_includes_load_and_pmos_junctions(self, tech,
                                                         library):
        nd_small = builders.nand_gate(tech, 2, load=0.0)
        nd_big = builders.nand_gate(tech, 2, load=20e-15)
        inputs = {"a0": ConstantSource(tech.vdd),
                  "a1": ConstantSource(tech.vdd)}
        p_small = extract_path(nd_small, "out", "fall", inputs, library)
        p_big = extract_path(nd_big, "out", "fall", inputs, library)
        assert p_big.node_caps[-1] == pytest.approx(
            p_small.node_caps[-1] + 20e-15, rel=1e-6)


class TestStackPath:
    def test_stack_ordering_rail_first(self, tech, library):
        st = builders.nmos_stack(tech, 5, widths=[1e-6] * 5)
        inputs = {f"g{k}": ConstantSource(tech.vdd) for k in range(1, 6)}
        path = extract_path(st, "out", "fall", inputs, library)
        assert [d.name for d in path.devices] == [
            "M1", "M2", "M3", "M4", "M5"]
        assert path.node_names == ["n1", "n2", "n3", "n4", "out"]

    def test_frame_round_trip(self, tech, library):
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2)
        inputs = {"g1": ConstantSource(tech.vdd),
                  "g2": ConstantSource(tech.vdd)}
        path = extract_path(st, "out", "fall", inputs, library)
        assert path.from_frame(path.to_frame(1.2)) == pytest.approx(1.2)
        rise = extract_path(builders.inverter(tech), "out", "rise",
                            {"a": ConstantSource(0.0)}, library)
        assert rise.to_frame(0.0) == pytest.approx(tech.vdd)
        assert rise.from_frame(rise.to_frame(2.2)) == pytest.approx(2.2)


class TestWireCollapse:
    def test_decoder_path_has_pi_macros(self, tech, library):
        dec = builders.decoder_tree(tech, levels=2)
        inputs = {"phi": StepSource(0, tech.vdd, 0),
                  "A0": ConstantSource(tech.vdd),
                  "A0b": ConstantSource(0.0),
                  "A1": ConstantSource(tech.vdd),
                  "A1b": ConstantSource(0.0)}
        path = extract_path(dec, "t11", "fall", inputs, library)
        kinds = [d.kind for d in path.devices]
        assert kinds.count(DeviceKind.NMOS) == 3  # enable + 2 levels
        assert kinds.count(DeviceKind.WIRE) == 2  # one pi per level
        for dev in path.devices:
            if dev.kind is DeviceKind.WIRE:
                assert dev.resistance > 0
                assert dev.name.startswith("pi(")

    def test_total_cap_conserved_after_collapse(self, tech, library):
        # The sum of path node caps must include the full wire cap
        # (pi end caps), not double count it.
        from repro.devices.capacitance import wire_capacitance

        dec = builders.decoder_tree(tech, levels=1,
                                    unit_wire_length=50e-6)
        inputs = {"phi": ConstantSource(tech.vdd),
                  "A0": ConstantSource(tech.vdd),
                  "A0b": ConstantSource(0.0)}
        path = extract_path(dec, "t1", "fall", inputs, library)
        wire_c = wire_capacitance(tech.wire, tech.wmin, 50e-6)
        # Only one of the two wires (selected branch) is on the path,
        # but the sibling wire half-cap also loads the shared node...
        # here just check path cap exceeds the on-path wire cap.
        assert float(np.sum(path.node_caps)) > wire_c

    def test_coupling_lists_populated(self, tech, library):
        nd = builders.nand_gate(tech, 2)
        inputs = {"a0": ConstantSource(tech.vdd),
                  "a1": ConstantSource(tech.vdd)}
        path = extract_path(nd, "out", "fall", inputs, library)
        # Output node couples to a1 (series NMOS) and both PMOS gates.
        gates = {g for g, _ in path.gate_couplings[-1]}
        assert "a0" in gates and "a1" in gates

    def test_equivalent_caps_voltage_dependence(self, tech, library):
        st = builders.nmos_stack(tech, 3, widths=[1e-6] * 3)
        inputs = {f"g{k}": ConstantSource(tech.vdd) for k in range(1, 4)}
        path = extract_path(st, "out", "fall", inputs, library)
        high = path.equivalent_caps(np.full(3, 3.3), np.full(3, 2.2))
        low = path.equivalent_caps(np.full(3, 1.0), np.full(3, 0.0))
        assert np.all(low > high)  # junction caps grow at low bias

    def test_direction_validation(self, tech, library):
        inv = builders.inverter(tech)
        with pytest.raises(ValueError):
            extract_path(inv, "out", "sideways",
                         {"a": ConstantSource(0.0)}, library)
