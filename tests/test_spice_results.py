"""Tests for transient result containers and measurements."""

import numpy as np
import pytest

from repro.spice import SimulationStats, TransientResult


@pytest.fixture
def ramp_result():
    t = np.linspace(0.0, 10.0, 11)
    return TransientResult(
        times=t,
        voltages={"up": t * 0.3, "down": 3.0 - t * 0.3},
        label="test")


class TestContainer:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TransientResult(times=np.array([0.0, 1.0]),
                            voltages={"a": np.array([1.0])})

    def test_node_names(self, ramp_result):
        assert set(ramp_result.node_names) == {"up", "down"}

    def test_at_interpolates(self, ramp_result):
        assert ramp_result.at("up", 5.5) == pytest.approx(1.65)

    def test_sample(self, ramp_result):
        out = ramp_result.sample("up", np.array([0.0, 2.5, 10.0]))
        np.testing.assert_allclose(out, [0.0, 0.75, 3.0])

    def test_final_value(self, ramp_result):
        assert ramp_result.final_value("down") == pytest.approx(0.0)


class TestCrossings:
    def test_rising_crossing(self, ramp_result):
        t = ramp_result.crossing_time("up", 1.5, "rise")
        assert t == pytest.approx(5.0)

    def test_falling_crossing(self, ramp_result):
        t = ramp_result.crossing_time("down", 1.5, "fall")
        assert t == pytest.approx(5.0)

    def test_direction_filter(self, ramp_result):
        assert ramp_result.crossing_time("up", 1.5, "fall") is None

    def test_after_filter(self, ramp_result):
        assert ramp_result.crossing_time("up", 1.5, "rise",
                                         after=6.0) is None

    def test_never_crossed(self, ramp_result):
        assert ramp_result.crossing_time("up", 100.0) is None

    def test_delay_50(self, ramp_result):
        # vdd = 3.0 -> 50% = 1.5 -> t = 5.
        assert ramp_result.delay_50("up", 3.0) == pytest.approx(5.0)
        assert ramp_result.delay_50("up", 3.0,
                                    t_input=1.0) == pytest.approx(4.0)

    def test_slew(self, ramp_result):
        # 10%..90% of 3.0 -> 0.3..2.7 -> t from 1 to 9.
        assert ramp_result.slew("up", 3.0, "rise") == pytest.approx(8.0)
        assert ramp_result.slew("down", 3.0, "fall") == pytest.approx(8.0)

    def test_slew_requires_direction(self, ramp_result):
        with pytest.raises(ValueError):
            ramp_result.slew("up", 3.0, "sideways")


class TestStats:
    def test_merge_accumulates(self):
        a = SimulationStats(steps=10, newton_iterations=20,
                            device_evaluations=100, wall_time=1.0)
        b = SimulationStats(steps=1, newton_iterations=2,
                            device_evaluations=10, wall_time=0.5)
        c = a.merge(b)
        assert c.steps == 11
        assert c.newton_iterations == 22
        assert c.device_evaluations == 110
        assert c.wall_time == pytest.approx(1.5)

    def test_merge_leaves_operands_unchanged(self):
        a = SimulationStats(steps=10)
        b = SimulationStats(steps=1)
        a.merge(b)
        assert a.steps == 10
        assert b.steps == 1

    def test_add_operator(self):
        a = SimulationStats(steps=3, newton_iterations=9,
                            device_evaluations=30, wall_time=0.25)
        b = SimulationStats(steps=2, newton_iterations=4,
                            device_evaluations=20, wall_time=0.75)
        c = a + b
        assert c.steps == 5
        assert c.newton_iterations == 13
        assert c.device_evaluations == 50
        assert c.wall_time == pytest.approx(1.0)

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            SimulationStats() + 3

    def test_sum_of_stats_list(self):
        runs = [SimulationStats(steps=i, newton_iterations=2 * i,
                                device_evaluations=10 * i,
                                wall_time=0.1 * i)
                for i in range(1, 4)]
        total = sum(runs)
        assert total.steps == 6
        assert total.newton_iterations == 12
        assert total.device_evaluations == 60
        assert total.wall_time == pytest.approx(0.6)

    def test_sum_of_empty_list_is_int_zero(self):
        # sum([]) returns the seed; callers guard for it.
        assert sum([]) == 0
