"""QWM on branching pull networks (AOI/OAI complex gates)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import accuracy_percent
from repro.circuit import DeviceKind, builders, validate_stage
from repro.core import WaveformEvaluator
from repro.spice import (
    ConstantSource,
    StepSource,
    TransientOptions,
    TransientSimulator,
)

T0 = 20e-12


class TestStructure:
    def test_aoi21_valid(self, tech):
        stage = builders.aoi21_gate(tech)
        validate_stage(stage)
        assert len(stage.transistors) == 6
        assert set(stage.inputs) == {"a0", "a1", "a2"}

    def test_oai21_valid(self, tech):
        stage = builders.oai21_gate(tech)
        validate_stage(stage)
        assert len(stage.transistors) == 6


class TestPathExtraction:
    def test_aoi21_series_branch(self, tech, evaluator):
        # a0/a1 high, a2 low: the discharge goes through the 2-stack.
        stage = builders.aoi21_gate(tech)
        inputs = {"a0": StepSource(0, tech.vdd, T0),
                  "a1": ConstantSource(tech.vdd),
                  "a2": ConstantSource(0.0)}
        path = evaluator.extract(stage, "out", "fall", inputs)
        assert path.length == 2
        assert [d.name for d in path.devices] == ["MN0", "MN1"]

    def test_aoi21_parallel_branch(self, tech, evaluator):
        # Only a2 high: the single parallel device discharges.
        stage = builders.aoi21_gate(tech)
        inputs = {"a0": ConstantSource(0.0),
                  "a1": ConstantSource(0.0),
                  "a2": StepSource(0, tech.vdd, T0)}
        path = evaluator.extract(stage, "out", "fall", inputs)
        assert path.length == 1
        assert path.devices[0].name == "MN2"

    def test_off_branch_loads_output(self, tech, evaluator):
        # The parallel off-branch junctions load the output node.
        stage = builders.aoi21_gate(tech)
        inputs = {"a0": ConstantSource(0.0),
                  "a1": ConstantSource(0.0),
                  "a2": StepSource(0, tech.vdd, T0)}
        path = evaluator.extract(stage, "out", "fall", inputs)
        # out touches MN1, MN2, MP2 -> 3 junction contributions.
        assert len(path.junctions[-1]) == 3


class TestAccuracy:
    # Complementary branches that stay conducting (an ON off-path
    # device with a hidden node behind it) are absorbed as rigidly
    # tracking capacitance.  The real side node lags the path node, so
    # this is a *pessimistic* bound: QWM's delay upper-bounds the
    # reference (the safe direction for STA) while staying within ~20%.
    @pytest.mark.parametrize("builder,switch,others,direction,floor", [
        (builders.aoi21_gate, "a0",
         {"a1": "vdd", "a2": "gnd"}, "fall", 80.0),
        (builders.aoi21_gate, "a2",
         {"a0": "gnd", "a1": "gnd"}, "fall", 93.0),
        (builders.oai21_gate, "a2",
         {"a0": "vdd", "a1": "gnd"}, "fall", 85.0),
    ], ids=["aoi-stack", "aoi-parallel", "oai-series"])
    def test_fall_against_reference(self, tech, evaluator, builder,
                                    switch, others, direction, floor):
        stage = builder(tech)
        inputs = {switch: StepSource(0, tech.vdd, T0)}
        for name, level in others.items():
            inputs[name] = ConstantSource(
                tech.vdd if level == "vdd" else 0.0)
        sol = evaluator.evaluate(stage, "out", direction, inputs,
                                 precharge="dc")
        sim = TransientSimulator(stage, tech, TransientOptions(
            t_stop=400e-12, dt=1e-12))
        res = sim.run(inputs)
        d_ref = res.delay_50("out", tech.vdd, t_input=T0,
                             direction=direction)
        d_qwm = sol.delay(t_input=T0)
        assert accuracy_percent(d_qwm, d_ref) > floor
        # Conservative sign: absorbed side branches never make QWM
        # optimistic.
        assert d_qwm > 0.97 * d_ref

    def test_oai21_rise_through_pmos_stack(self, tech, evaluator):
        # a1 falls with a0 high: pull-up through the MP0-MP1 stack.
        stage = builders.oai21_gate(tech)
        inputs = {"a1": StepSource(tech.vdd, 0.0, T0),
                  "a0": ConstantSource(0.0),
                  "a2": ConstantSource(tech.vdd)}
        sol = evaluator.evaluate(stage, "out", "rise", inputs,
                                 precharge="dc")
        sim = TransientSimulator(stage, tech, TransientOptions(
            t_stop=400e-12, dt=1e-12))
        res = sim.run(inputs)
        d_ref = res.delay_50("out", tech.vdd, t_input=T0,
                             direction="rise")
        assert accuracy_percent(sol.delay(t_input=T0), d_ref) > 92.0


class TestMonotonicityProperties:
    @settings(max_examples=10, deadline=None)
    @given(load=st.floats(2e-15, 40e-15))
    def test_delay_monotone_in_load(self, tech, evaluator, load):
        light = builders.nmos_stack(tech, 2, widths=[1e-6] * 2,
                                    load=load)
        heavy = builders.nmos_stack(tech, 2, widths=[1e-6] * 2,
                                    load=load * 1.5)
        inputs = {"g1": StepSource(0, tech.vdd, 0),
                  "g2": ConstantSource(tech.vdd)}
        d_light = evaluator.evaluate(light, "out", "fall",
                                     inputs).delay()
        d_heavy = evaluator.evaluate(heavy, "out", "fall",
                                     inputs).delay()
        assert d_heavy > d_light

    @settings(max_examples=10, deadline=None)
    @given(scale=st.floats(1.2, 3.0))
    def test_delay_improves_with_uniform_upsizing(self, tech, evaluator,
                                                  scale):
        inputs = {"g1": StepSource(0, tech.vdd, 0),
                  "g2": ConstantSource(tech.vdd),
                  "g3": ConstantSource(tech.vdd)}
        base = builders.nmos_stack(tech, 3, widths=[1e-6] * 3,
                                   load=30e-15)
        wide = builders.nmos_stack(tech, 3, widths=[scale * 1e-6] * 3,
                                   load=30e-15)
        d_base = evaluator.evaluate(base, "out", "fall", inputs).delay()
        d_wide = evaluator.evaluate(wide, "out", "fall", inputs).delay()
        assert d_wide < d_base
