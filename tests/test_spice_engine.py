"""Tests for the SPICE-like engine: MNA assembly, DC, transient."""

import numpy as np
import pytest

from repro.circuit import LogicStage, builders
from repro.circuit.netlist import GND_NODE, VDD_NODE
from repro.spice import (
    ConstantSource,
    StageEquations,
    StepSource,
    TransientOptions,
    TransientSimulator,
    logic_initial_condition,
    solve_dc,
)


class TestStageEquations:
    def test_residual_zero_at_consistent_state(self, tech):
        # Inverter with input low: out at vdd carries no channel current
        # beyond leakage.
        inv = builders.inverter(tech)
        eq = StageEquations(inv, tech)
        f, _ = eq.static_residual(np.array([tech.vdd]), {"a": 0.0})
        assert abs(f[0]) < 1e-6

    def test_jacobian_matches_fd(self, tech):
        nd = builders.nand_gate(tech, 3)
        eq = StageEquations(nd, tech)
        gates = {"a0": 1.8, "a1": 2.5, "a2": 3.0}
        v = np.array([1.0, 2.0, 0.7])
        f0, jac = eq.static_residual(v, gates)
        h = 1e-7
        for j in range(3):
            vp = v.copy()
            vp[j] += h
            fp, _ = eq.static_residual(vp, gates)
            fd_col = (fp - f0) / h
            np.testing.assert_allclose(jac[:, j], fd_col, rtol=1e-3,
                                       atol=1e-9)

    def test_gmin_adds_diagonal(self, tech):
        inv = builders.inverter(tech)
        eq = StageEquations(inv, tech)
        _, j0 = eq.static_residual(np.array([1.0]), {"a": 1.0}, gmin=0.0)
        _, j1 = eq.static_residual(np.array([1.0]), {"a": 1.0}, gmin=1e-3)
        assert j1[0, 0] == pytest.approx(j0[0, 0] + 1e-3)

    def test_node_capacitance_positive(self, tech):
        nd = builders.nand_gate(tech, 2)
        eq = StageEquations(nd, tech)
        caps = eq.node_capacitances(np.array([1.0, 2.0]))
        assert np.all(caps > 0)

    def test_voltage_dependent_caps_shrink_with_bias(self, tech):
        # An NMOS-only node: junction caps shrink monotonically as the
        # node voltage (reverse bias) grows.
        st = builders.nmos_stack(tech, 2, widths=[1e-6, 1e-6])
        eq = StageEquations(st, tech, voltage_dependent_caps=True)
        idx = eq.node_index("n1")
        c_low = eq.node_capacitances(np.array([0.0, 0.0]))[idx]
        c_high = eq.node_capacitances(np.array([3.3, 3.3]))[idx]
        assert c_high < c_low

    def test_wire_stamped_as_pi(self, tech):
        s = LogicStage("rc", tech.vdd)
        s.add_nmos("MN", "a", GND_NODE, "g", 1e-6, tech.lmin)
        s.add_wire("W", "a", "b", 1e-6, 100e-6)
        s.mark_output("b")
        eq = StageEquations(s, tech)
        f, jac = eq.static_residual(np.array([1.0, 0.0]), {"g": 0.0})
        # Wire current flows a -> b.
        from repro.devices.capacitance import wire_resistance

        g = 1.0 / wire_resistance(tech.wire, 1e-6, 100e-6)
        assert f[eq.node_index("b")] == pytest.approx(-g * 1.0)


class TestDC:
    def test_inverter_vtc_endpoints(self, tech):
        inv = builders.inverter(tech)
        eq = StageEquations(inv, tech)
        v_low_in = solve_dc(eq, {"a": 0.0})
        assert v_low_in[eq.node_index("out")] == pytest.approx(tech.vdd,
                                                               abs=0.01)
        v_high_in = solve_dc(eq, {"a": tech.vdd})
        assert v_high_in[eq.node_index("out")] == pytest.approx(0.0,
                                                                abs=0.01)

    def test_inverter_switching_region(self, tech):
        inv = builders.inverter(tech)
        eq = StageEquations(inv, tech)
        v = solve_dc(eq, {"a": 1.4})
        assert 0.2 < v[eq.node_index("out")] < tech.vdd - 0.2

    def test_nand_internal_node_degraded_level(self, tech):
        nd = builders.nand_gate(tech, 2)
        eq = StageEquations(nd, tech)
        v = solve_dc(eq, {"a0": 0.0, "a1": tech.vdd})
        out = v[eq.node_index("out")]
        n1 = v[eq.node_index("n1")]
        assert out == pytest.approx(tech.vdd, abs=0.01)
        # Internal node floats one threshold (or leakage balance) below.
        assert 1.5 < n1 < tech.vdd


class TestLogicInitialCondition:
    def test_inverter_levels(self, tech):
        inv = builders.inverter(tech)
        est = logic_initial_condition(inv, {"a": 0.0})
        assert est["out"] > tech.vdd - 1.3
        est2 = logic_initial_condition(inv, {"a": tech.vdd})
        assert est2["out"] == pytest.approx(0.0)

    def test_floating_gets_default(self, tech):
        st = builders.nmos_stack(tech, 2, widths=[1e-6, 1e-6])
        est = logic_initial_condition(st, {"g1": 0.0, "g2": 0.0},
                                      default=1.1)
        assert est["n1"] == pytest.approx(1.1)
        assert est["out"] == pytest.approx(1.1)


class TestTransient:
    def test_rc_discharge_matches_analytic(self, tech):
        # A wire-only RC from a held node: build NMOS switch fully on
        # with long channel to act as a resistor is messy; instead use
        # the engine on an inverter with a strong step and compare decay
        # monotonicity + endpoint.
        inv = builders.inverter(tech, load=20e-15)
        sim = TransientSimulator(
            inv, tech, TransientOptions(t_stop=300e-12, dt=2e-12))
        res = sim.run({"a": StepSource(0.0, tech.vdd, 20e-12)})
        out = res.voltage("out")
        assert out[0] == pytest.approx(tech.vdd, abs=0.02)
        assert res.final_value("out") < 0.2
        # After the Miller bump settles the waveform is monotone down.
        tail = out[res.times > 40e-12]
        assert np.all(np.diff(tail) < 1e-3)

    def test_trap_close_to_be_at_small_step(self, tech):
        inv = builders.inverter(tech)
        src = {"a": StepSource(0.0, tech.vdd, 10e-12)}
        be = TransientSimulator(inv, tech, TransientOptions(
            t_stop=150e-12, dt=1e-12, method="be")).run(src)
        trap = TransientSimulator(inv, tech, TransientOptions(
            t_stop=150e-12, dt=1e-12, method="trap")).run(src)
        d_be = be.delay_50("out", tech.vdd, t_input=10e-12)
        d_trap = trap.delay_50("out", tech.vdd, t_input=10e-12)
        assert d_trap == pytest.approx(d_be, rel=0.05)

    def test_missing_source_rejected(self, tech):
        nd = builders.nand_gate(tech, 2)
        sim = TransientSimulator(nd, tech)
        with pytest.raises(ValueError, match="missing input"):
            sim.run({"a0": 0.0})

    def test_explicit_initial_condition_respected(self, tech):
        st = builders.nmos_stack(tech, 3, widths=[1e-6] * 3)
        sim = TransientSimulator(st, tech, TransientOptions(
            t_stop=20e-12, dt=1e-12))
        res = sim.run({"g1": 0.0, "g2": 0.0, "g3": 0.0},
                      initial={"n1": 2.0, "n2": 2.5, "out": 3.3})
        assert res.voltage("n1")[0] == pytest.approx(2.0)
        # With all gates off, nothing moves.
        assert res.voltage("n1")[-1] == pytest.approx(2.0, abs=0.05)

    def test_stats_populated(self, tech):
        inv = builders.inverter(tech)
        sim = TransientSimulator(inv, tech, TransientOptions(
            t_stop=50e-12, dt=1e-12))
        res = sim.run({"a": StepSource(0, tech.vdd, 5e-12)})
        assert res.stats.steps == 50
        assert res.stats.newton_iterations > 0
        assert res.stats.device_evaluations > 0
        assert res.stats.wall_time > 0

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            TransientOptions(t_stop=-1.0)
        with pytest.raises(ValueError):
            TransientOptions(method="rk4")

    def test_stack_cascade_order(self, tech):
        # The Fig. 7 mechanism: lower nodes cross thresholds first.
        st = builders.nmos_stack(tech, 4, widths=[1e-6] * 4, load=10e-15)
        inputs = {"g1": StepSource(0, tech.vdd, 0)}
        inputs.update({f"g{k}": ConstantSource(tech.vdd)
                       for k in range(2, 5)})
        sim = TransientSimulator(st, tech, TransientOptions(
            t_stop=400e-12, dt=2e-12))
        res = sim.run(inputs, initial={n.name: tech.vdd
                                       for n in st.internal_nodes})
        crossings = [res.crossing_time(name, 0.5 * tech.vdd, "fall")
                     for name in ("n1", "n2", "n3", "out")]
        assert all(c is not None for c in crossings)
        assert crossings == sorted(crossings)


class TestPseudoTransientDC:
    def test_matches_plain_newton_on_inverter(self, tech):
        from repro.spice.dc import pseudo_transient_dc

        inv = builders.inverter(tech)
        eq = StageEquations(inv, tech)
        levels = {"a": 0.0}
        plain = solve_dc(eq, levels)
        ptc = pseudo_transient_dc(eq, levels,
                                  np.full(eq.n, 0.5 * tech.vdd))
        np.testing.assert_allclose(ptc, plain, atol=5e-3)

    def test_settles_hard_pass_gate_bias(self, tech):
        # The configuration that defeats plain Newton (paper Fig. 1
        # merged stage at a floating pass-net bias): solve_dc must
        # complete via its PTC fallback and satisfy KCL.
        from repro.circuit.builders import pass_transistor_netlist
        from repro.circuit.stage import extract_stages

        graph = extract_stages(pass_transistor_netlist(tech), tech=tech)
        stage = graph.stage_of_net["z"]
        eq = StageEquations(stage, tech)
        levels = {"a": 0.0, "b": tech.vdd, "sel": tech.vdd}
        v = solve_dc(eq, levels)
        residual, _ = eq.static_residual(v, levels)
        assert float(np.max(np.abs(residual))) < 1e-6


class TestMultiLengthDevices:
    def test_qwm_on_long_channel_stack(self, tech, library):
        # A stack with non-minimum channel length characterizes its own
        # table through the library and still matches the reference.
        from repro.circuit.netlist import GND_NODE
        from repro.circuit import LogicStage
        from repro.core import WaveformEvaluator
        from repro.spice import ConstantSource as CS, StepSource as SS

        long_l = 2.0 * tech.lmin
        stage = LogicStage("longL", vdd=tech.vdd)
        stage.add_nmos("M2", src="out", snk="n1", gate="g2",
                       w=2e-6, l=long_l)
        stage.add_nmos("M1", src="n1", snk=GND_NODE, gate="g1",
                       w=2e-6, l=long_l)
        stage.mark_output("out")
        stage.set_load("out", 10e-15)
        inputs = {"g1": SS(0, tech.vdd, 20e-12), "g2": CS(tech.vdd)}
        evaluator = WaveformEvaluator(tech, library=library)
        sol = evaluator.evaluate(stage, "out", "fall", inputs)
        d_q = sol.delay(t_input=20e-12)

        sim = TransientSimulator(stage, tech, TransientOptions(
            t_stop=500e-12, dt=1e-12))
        res = sim.run(inputs, initial={"n1": tech.vdd,
                                       "out": tech.vdd})
        d_s = res.delay_50("out", tech.vdd, t_input=20e-12)
        assert abs(d_q - d_s) / d_s < 0.07
        # The library now caches a second NMOS length.
        assert ("n", round(long_l, 12)) in library._cache
