"""Tests for crosstalk bounds and glitch estimation."""

import pytest

from repro.circuit import builders
from repro.interconnect import (
    glitch_peak,
    miller_decoupled_cap,
    noise_immunity_ok,
    victim_delay_bounds,
)
from repro.spice import ConstantSource, StepSource


class TestMillerDecoupling:
    def test_factors(self):
        assert miller_decoupled_cap(1e-15, 0.0) == 0.0
        assert miller_decoupled_cap(1e-15, 1.0) == pytest.approx(1e-15)
        assert miller_decoupled_cap(1e-15, 2.0) == pytest.approx(2e-15)

    def test_validation(self):
        with pytest.raises(ValueError):
            miller_decoupled_cap(-1e-15, 1.0)
        with pytest.raises(ValueError):
            miller_decoupled_cap(1e-15, 5.0)


class TestDelayBounds:
    def test_bounds_ordered_and_meaningful(self, tech, evaluator):
        st = builders.nmos_stack(tech, 3, widths=[1e-6] * 3,
                                 load=10e-15)
        inputs = {"g1": StepSource(0, tech.vdd, 0),
                  "g2": ConstantSource(tech.vdd),
                  "g3": ConstantSource(tech.vdd)}
        bounds = victim_delay_bounds(
            evaluator, st, "out", "fall", inputs,
            victim_node="out", coupling_cap=8e-15)
        assert bounds.best < bounds.nominal < bounds.worst
        assert bounds.delta > 0
        assert bounds.window > bounds.delta
        # 8 fF of coupling on a ~15 fF net moves the delay noticeably.
        assert bounds.delta / bounds.nominal > 0.05

    def test_zero_coupling_collapses_bounds(self, tech, evaluator):
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2,
                                 load=10e-15)
        inputs = {"g1": StepSource(0, tech.vdd, 0),
                  "g2": ConstantSource(tech.vdd)}
        bounds = victim_delay_bounds(
            evaluator, st, "out", "fall", inputs,
            victim_node="out", coupling_cap=0.0)
        assert bounds.best == pytest.approx(bounds.worst, rel=1e-9)

    def test_original_stage_untouched(self, tech, evaluator):
        st = builders.nmos_stack(tech, 2, widths=[1e-6] * 2,
                                 load=10e-15)
        inputs = {"g1": StepSource(0, tech.vdd, 0),
                  "g2": ConstantSource(tech.vdd)}
        before = st.node("out").load_cap
        victim_delay_bounds(evaluator, st, "out", "fall", inputs,
                            victim_node="out", coupling_cap=5e-15)
        assert st.node("out").load_cap == before


class TestGlitch:
    def test_fast_aggressor_reaches_charge_sharing_limit(self):
        peak = glitch_peak(coupling_cap=2e-15, victim_cap=8e-15,
                           aggressor_slew=1e-15,
                           victim_resistance=5e3, vdd=3.3)
        assert peak == pytest.approx(3.3 * 0.2, rel=0.05)

    def test_slow_aggressor_attenuates(self):
        fast = glitch_peak(2e-15, 8e-15, 1e-12, 5e3, 3.3)
        slow = glitch_peak(2e-15, 8e-15, 500e-12, 5e3, 3.3)
        assert slow < 0.3 * fast

    def test_zero_coupling_no_glitch(self):
        assert glitch_peak(0.0, 8e-15, 1e-12, 5e3, 3.3) == 0.0

    def test_monotone_in_coupling(self):
        peaks = [glitch_peak(c, 8e-15, 20e-12, 5e3, 3.3)
                 for c in (0.5e-15, 1e-15, 2e-15, 4e-15)]
        assert peaks == sorted(peaks)

    def test_validation(self):
        with pytest.raises(ValueError):
            glitch_peak(-1.0, 1e-15, 1e-12, 1e3, 3.3)

    def test_noise_immunity_check(self):
        assert noise_immunity_ok(0.3, 3.3)
        assert not noise_immunity_ok(2.0, 3.3)
