#!/usr/bin/env python
"""Full transistor-level STA flow: netlist -> stages -> timing -> edit.

Parses a SPICE-style deck, extracts channel-connected logic stages (the
NAND output feeding a pass transistor merges into one stage — the
paper's Fig. 1 scenario), runs longest-path STA with QWM as the stage
engine, then demonstrates the incremental re-timing and sizing-
sensitivity layers.

Run:  python examples/full_sta.py
"""

from repro import CMOSP35
from repro.analysis import IncrementalTimer, SizingSensitivity
from repro.circuit import extract_stages
from repro.core import WaveformEvaluator
from repro.io import parse_spice_netlist

DECK = """
* two-level design with a pass transistor between cells (paper Fig. 1)
* NAND2
Mpa x a VDD VDD pmos W=2u L=0.35u
Mpb x b VDD VDD pmos W=2u L=0.35u
Mna x a m  0   nmos W=1u L=0.35u
Mnb m b 0  0   nmos W=1u L=0.35u
* wire to the pass transistor
Rw x y W=1u L=30u
* pass transistor into node z
Mps z sel y 0 nmos W=1u L=0.35u
* output inverter
Mpo out z VDD VDD pmos W=2u L=0.35u
Mno out z 0   0   nmos W=1u L=0.35u
Cout out 0 5f
.input a b sel
.output out
.end
"""


def main() -> None:
    tech = CMOSP35

    netlist = parse_spice_netlist(DECK, tech, name="fig1_flow")
    graph = extract_stages(netlist, tech=tech)
    print("stage partitioning (channel-connected components):")
    for stage in graph.stages:
        outputs = ", ".join(n.name for n in stage.outputs)
        print(f"  {stage.name}: {len(stage.transistors)} transistors, "
              f"{len(stage.wires)} wires, inputs [{', '.join(stage.inputs)}]"
              f" -> outputs [{outputs}]")

    timer = IncrementalTimer(tech, graph)
    result = timer.analyze()
    print(f"\nfull STA: {timer.last_stats.arcs_evaluated} QWM arc "
          f"evaluations")
    print(f"worst arrival: {result.worst.net} {result.worst.direction} "
          f"at {result.worst.time * 1e12:.1f} ps")
    print("critical path: " + " -> ".join(
        f"{net}({d})" for net, d in result.critical_path))

    # --- incremental re-timing after a resize -------------------------
    big_stage = graph.stage_of_net["z"]
    timer.resize_transistor(big_stage.name, "Mps", 2e-6)
    result2 = timer.analyze()
    print(f"\nafter widening the pass transistor to 2 um:")
    print(f"  re-evaluated {timer.last_stats.arcs_evaluated} arcs, "
          f"reused {timer.last_stats.arcs_cached} from cache")
    print(f"  worst arrival: {result2.worst.time * 1e12:.1f} ps "
          f"(was {result.worst.time * 1e12:.1f} ps)")

    # --- which device should be sized next? ---------------------------
    from repro.spice import ConstantSource, StepSource

    evaluator = WaveformEvaluator(tech, library=timer.analyzer
                                  .evaluator.library)
    sensitivity = SizingSensitivity(evaluator)
    inputs = {"a": StepSource(0.0, tech.vdd, 0.0),
              "b": ConstantSource(tech.vdd),
              "sel": ConstantSource(tech.vdd)}
    print("\ndelay sensitivity of the merged NAND+pass stage "
          "(z falling, a switching):")
    for res in sensitivity.all_path_devices(
            big_stage, "z", "fall", inputs, precharge="degraded"):
        print(f"  {res.device:<4} w={res.nominal_width * 1e6:.2f} um   "
              f"d(delay)/d(w) = {res.sensitivity * 1e12 * 1e-6:+.3f} "
              f"ps/um   ({res.normalized:+.3f} %/%)")


if __name__ == "__main__":
    main()
