#!/usr/bin/env python
"""Device characterization walkthrough (paper Section V-A, Figs. 5 & 8).

Shows the full table-model pipeline QWM relies on:

1. sweep the golden analytic MOSFET over the (Vs, Vg) grid,
2. fit the Vd dependence at every point — linear in saturation,
   quadratic in triode — storing the paper's seven parameters,
3. query the compressed table off-grid and compare against the golden
   model.

Run:  python examples/characterize_device.py
"""

import numpy as np

from repro import CMOSP35, TableModelLibrary, nmos_model
from repro.devices import characterize_device


def main() -> None:
    tech = CMOSP35
    golden = nmos_model(tech)
    w, l = 2.0 * tech.wmin, tech.lmin

    # --- Fig. 5: the I/V relationship being compressed ---------------
    print("golden NMOS model (vg = vdd):")
    for vs in (0.0, 1.0, 2.0):
        row = [golden.ids(w, l, tech.vdd, vs + vds, vs) * 1e3
               for vds in (0.2, 0.8, 1.6, 2.4)]
        print(f"  vs={vs:.1f} V: " + "  ".join(f"{i:6.3f} mA"
                                               for i in row))

    # --- Section V-A: sweep + fit -------------------------------------
    grid = characterize_device(golden, tech, w=w, l=l, grid_step=0.1)
    n_points = grid.vs_values.size * grid.vg_values.size
    print(f"\ncharacterized {n_points} (Vs, Vg) grid points, "
          f"{grid.n_parameters} stored parameters (7 per point)")

    fit = grid.fits[0][-1]  # vs = 0, vg = vdd
    print("fit at (Vs=0, Vg=vdd):")
    print(f"  saturation: Ids = {fit.s1:.3e} * Vds + {fit.s0:.3e}")
    print(f"  triode    : Ids = {fit.t2:.3e} * Vds^2 "
          f"+ {fit.t1:.3e} * Vds + {fit.t0:.3e}")
    print(f"  vth = {fit.vth:.3f} V, vdsat = {fit.vdsat:.3f} V")

    # --- Table accuracy off-grid --------------------------------------
    library = TableModelLibrary(tech)
    table = library.get("n")
    rng = np.random.default_rng(0)
    ion = golden.ids(w, l, tech.vdd, tech.vdd, 0.0)
    errors = []
    for _ in range(2000):
        vg, va, vb = rng.uniform(0.0, tech.vdd, 3)
        errors.append(abs(table.iv(w, l, vg, va, vb)
                          - golden.ids(w, l, vg, va, vb)) / ion)
    print(f"\ntable vs golden over 2000 random bias points:")
    print(f"  mean |error| = {np.mean(errors) * 100:.3f}% of Ion")
    print(f"  max  |error| = {np.max(errors) * 100:.3f}% of Ion")

    # Derivatives come from the fits, no re-sampling (paper: "can be
    # computed very fast").
    q = table.iv_query(w, l, 2.5, 2.0, 0.5)
    print(f"\nfast-derivative query at (vg=2.5, va=2.0, vb=0.5):")
    print(f"  ids = {q.ids * 1e3:.4f} mA, dI/dVgate = {q.g_gate * 1e3:.4f}"
          f" mS, dI/dVsrc = {q.g_src * 1e3:.4f} mS")


if __name__ == "__main__":
    main()
