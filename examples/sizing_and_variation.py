#!/usr/bin/env python
"""Design loops QWM's speed makes practical: sizing + Monte Carlo.

1. Greedy sensitivity-driven sizing of a heavily loaded NAND3's pull
   path toward a delay target (each iteration = a handful of QWM
   evaluations).
2. A 200-sample width-variation Monte Carlo on the sized gate for a
   3-sigma sign-off number.
3. A 5-corner re-characterization sweep.

Run:  python examples/sizing_and_variation.py
"""

import numpy as np

from repro import CMOSP35, ConstantSource, StepSource, WaveformEvaluator, \
    builders
from repro.analysis import GreedySizer, MonteCarloTiming
from repro.devices import TableModelLibrary, all_corners, corner_spread


def main() -> None:
    tech = CMOSP35
    evaluator = WaveformEvaluator(tech)

    stage = builders.nand_gate(tech, 3, load=40e-15)  # heavy load
    inputs = {"a0": StepSource(0.0, tech.vdd, 0.0),
              "a1": ConstantSource(tech.vdd),
              "a2": ConstantSource(tech.vdd)}

    # --- sizing ------------------------------------------------------
    sizer = GreedySizer(evaluator, step_factor=1.4, max_iterations=12)
    result = sizer.optimize(stage, "out", "fall", inputs,
                            target_delay=150e-12, precharge="degraded")
    print("greedy sizing of the NAND3 pull path (40 fF load):")
    print(f"  initial delay : {result.initial_delay * 1e12:.1f} ps")
    for step in result.steps:
        print(f"  {step.device}: {step.old_width * 1e6:.2f} -> "
              f"{step.new_width * 1e6:.2f} um   "
              f"delay {step.delay_before * 1e12:.1f} -> "
              f"{step.delay_after * 1e12:.1f} ps")
    print(f"  final delay   : {result.final_delay * 1e12:.1f} ps "
          f"({result.improvement * 100:.1f}% faster, target "
          f"{'met' if result.met_target else 'not met'})")

    # --- Monte Carlo on the sized gate --------------------------------
    mc = MonteCarloTiming(evaluator, width_sigma=0.05,
                          rng=np.random.default_rng(0))
    dist = mc.run(result.stage, "out", "fall", inputs, n_samples=200,
                  precharge="degraded")
    print(f"\nwidth-variation Monte Carlo (200 samples, sigma_W=5%):")
    print(f"  mean {dist.mean * 1e12:.1f} ps, sigma "
          f"{dist.std * 1e12:.2f} ps, p99.7 "
          f"{dist.quantile(0.997) * 1e12:.1f} ps")

    # --- corners -----------------------------------------------------
    print("\nprocess corners (re-characterized per corner):")
    delays = {}
    for name, corner_tech in all_corners(tech).items():
        lib = TableModelLibrary(corner_tech, grid_step=0.15)
        ev = WaveformEvaluator(corner_tech, library=lib)
        corner_stage = builders.nand_gate(corner_tech, 3, load=40e-15)
        sol = ev.evaluate(corner_stage, "out", "fall", inputs,
                          precharge="degraded")
        delays[name] = sol.delay()
        print(f"  {name}: {delays[name] * 1e12:.1f} ps")
    slowest, fastest, spread = corner_spread(delays)
    print(f"  spread {spread * 100:.1f}% ({fastest} -> {slowest})")


if __name__ == "__main__":
    main()
