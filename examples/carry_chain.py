#!/usr/bin/env python
"""Manchester carry chain: the paper's Example 2 and Fig. 9 workload.

A Manchester adder's carry nodes are channel-connected through the pass
transistors, so the whole chain is one logic stage — the motivating case
for transistor-level (rather than gate-abstraction) timing analysis.
The worst case ripples the carry from c0 through every pass transistor:
a 6-series-NMOS discharge for 5 bits.

This example builds the chain, extracts the ripple path, evaluates it
with QWM, compares against the reference engine, and prints the carry
arrival at every bit position.

Run:  python examples/carry_chain.py
"""

from repro import (
    CMOSP35,
    ConstantSource,
    StepSource,
    TransientOptions,
    TransientSimulator,
    WaveformEvaluator,
    builders,
)

BITS = 5
T_SWITCH = 20e-12


def main() -> None:
    tech = CMOSP35
    chain = builders.manchester_carry_chain(tech, bits=BITS)
    print(f"Manchester carry chain, {BITS} bit slices")
    print(f"  one logic stage with {len(chain.transistors)} transistors")
    print(f"  inputs: {', '.join(chain.inputs)}")

    # Evaluate phase: precharge off (phi high), all propagate signals
    # high, no generate; the carry-in pull-down fires the ripple.
    inputs = {
        "phi": ConstantSource(tech.vdd),
        "cin_pull": StepSource(0.0, tech.vdd, T_SWITCH),
    }
    for i in range(BITS):
        inputs[f"P{i}"] = ConstantSource(tech.vdd)
        inputs[f"G{i}"] = ConstantSource(0.0)

    evaluator = WaveformEvaluator(tech)
    final_carry = f"c{BITS}"
    solution = evaluator.evaluate(chain, output=final_carry,
                                  direction="fall", inputs=inputs,
                                  precharge="full")
    print(f"\nQWM ripple path: "
          f"{' -> '.join(d.name for d in solution.path.devices)}")
    print(f"  K = {solution.path.length} series NMOS "
          f"(the paper's Fig. 9 stack for {BITS} bits)")

    # Reference simulation of the full chain (including precharge
    # devices and generate pull-downs as junction loads).
    simulator = TransientSimulator(chain, tech, TransientOptions(
        t_stop=900e-12, dt=1e-12))
    initial = {n.name: tech.vdd for n in chain.internal_nodes}
    reference = simulator.run(inputs, initial=initial)

    print(f"\n{'carry':>6} {'QWM arrival':>14} {'reference':>14} "
          f"{'error':>8}")
    for i in range(1, BITS + 1):
        node = f"c{i}"
        wave = solution.waveforms.get(node)
        t_ref = reference.crossing_time(node, 0.5 * tech.vdd, "fall")
        if wave is None or t_ref is None:
            continue
        t_qwm = wave.crossing_time(0.5 * tech.vdd)
        err = abs(t_qwm - t_ref) / (t_ref - T_SWITCH) * 100.0
        print(f"{node:>6} {t_qwm * 1e12:>11.1f} ps "
              f"{t_ref * 1e12:>11.1f} ps {err:>7.2f}%")

    speedup = reference.stats.wall_time / solution.stats.wall_time
    print(f"\nQWM {solution.stats.wall_time * 1e3:.1f} ms vs reference "
          f"{reference.stats.wall_time * 1e3:.1f} ms -> {speedup:.1f}x")


if __name__ == "__main__":
    main()
