#!/usr/bin/env python
"""Quickstart: evaluate a NAND3's worst-case delay with QWM.

Builds a minimum-sized NAND3 in the CMOSP35-like technology, evaluates
its worst-case falling transition (bottom input switches last) with
piecewise Quadratic Waveform Matching, and cross-checks the result
against the SPICE-like reference engine.

Run:  python examples/quickstart.py
"""

from repro import (
    CMOSP35,
    ConstantSource,
    StepSource,
    TransientOptions,
    TransientSimulator,
    WaveformEvaluator,
    builders,
)

T_SWITCH = 20e-12  # the input steps 20 ps into the analysis


def main() -> None:
    tech = CMOSP35
    stage = builders.nand_gate(tech, n_inputs=3)

    # Worst case: a1/a2 already high, the bottom input a0 switches last.
    inputs = {
        "a0": StepSource(0.0, tech.vdd, T_SWITCH),
        "a1": ConstantSource(tech.vdd),
        "a2": ConstantSource(tech.vdd),
    }

    # --- QWM: solve the discharge at a handful of critical points ----
    evaluator = WaveformEvaluator(tech)  # characterizes tables lazily
    solution = evaluator.evaluate(stage, output="out", direction="fall",
                                  inputs=inputs, precharge="degraded")
    d_qwm = solution.delay(t_input=T_SWITCH)

    print("QWM evaluation")
    print(f"  path length K        : {solution.path.length} transistors")
    print(f"  critical points      : {len(solution.critical_times)}")
    print(f"  Newton iterations    : {solution.stats.newton_iterations}")
    print(f"  table-model queries  : {solution.stats.device_evaluations}")
    print(f"  solver wall time     : {solution.stats.wall_time * 1e3:.2f} ms")
    print(f"  50% fall delay       : {d_qwm * 1e12:.2f} ps")

    # --- Reference: SPICE-like engine, Newton at every 1 ps step -----
    simulator = TransientSimulator(stage, tech, TransientOptions(
        t_stop=400e-12, dt=1e-12))
    reference = simulator.run(inputs)
    d_ref = reference.delay_50("out", tech.vdd, t_input=T_SWITCH,
                               direction="fall")

    print("\nSPICE-like reference (1 ps steps)")
    print(f"  time steps           : {reference.stats.steps}")
    print(f"  Newton iterations    : {reference.stats.newton_iterations}")
    print(f"  device evaluations   : {reference.stats.device_evaluations}")
    print(f"  transient wall time  : {reference.stats.wall_time * 1e3:.2f} ms")
    print(f"  50% fall delay       : {d_ref * 1e12:.2f} ps")

    error = abs(d_qwm - d_ref) / d_ref * 100.0
    speedup = reference.stats.wall_time / solution.stats.wall_time
    print(f"\ndelay error {error:.2f}%  |  speedup {speedup:.1f}x")

    # Piecewise waveform: sample the output at the critical points,
    # exactly how the paper plots QWM results (Fig. 9).
    print("\nQWM output waveform (critical points):")
    wave = solution.output_waveform
    for t in wave.breakpoints:
        print(f"  t = {t * 1e12:7.2f} ps   out = {wave.value(t):.3f} V")


if __name__ == "__main__":
    main()
