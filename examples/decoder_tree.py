#!/usr/bin/env python
"""Memory decoder tree with long wires (paper Example 3 / Fig. 10).

The decoder's inter-level wires double in length at every tree level and
connect transistor diffusions, so neither gate abstraction nor lumped
loads apply — the case the paper built QWM + AWE π macromodels for.

This example builds a 3-level (8-wordline) decoder, shows the AWE
π reduction of each wire run, evaluates the selected wordline with QWM,
and compares waveforms and runtime against the reference engine.

Run:  python examples/decoder_tree.py
"""

import numpy as np

from repro import (
    CMOSP35,
    ConstantSource,
    StepSource,
    TransientOptions,
    TransientSimulator,
    WaveformEvaluator,
    builders,
)
from repro.devices.capacitance import wire_capacitance, wire_resistance
from repro.interconnect import uniform_line_pi

LEVELS = 3
UNIT_WIRE = 60e-6  # the level-0 wire; doubles per level
T_SWITCH = 20e-12


def main() -> None:
    tech = CMOSP35
    decoder = builders.decoder_tree(tech, levels=LEVELS,
                                    unit_wire_length=UNIT_WIRE)
    print(f"decoder tree: {LEVELS} levels, {2 ** LEVELS} wordlines, "
          f"{len(decoder.transistors)} transistors, "
          f"{len(decoder.wires)} wires")

    print("\nwire electricals and pi macromodels per level:")
    for level in range(LEVELS):
        length = UNIT_WIRE * 2 ** level
        r = wire_resistance(tech.wire, tech.wmin, length)
        c = wire_capacitance(tech.wire, tech.wmin, length)
        pi = uniform_line_pi(r, c)
        print(f"  level {level}: {length * 1e6:5.0f} um  "
              f"R={r:6.1f} ohm  C={c * 1e15:6.1f} fF  ->  "
              f"pi({pi.c_near * 1e15:.1f} fF, {pi.r:.1f} ohm, "
              f"{pi.c_far * 1e15:.1f} fF)")

    # Select wordline t111: all address bits high, phi fires.
    inputs = {"phi": StepSource(0.0, tech.vdd, T_SWITCH)}
    for j in range(LEVELS):
        inputs[f"A{j}"] = ConstantSource(tech.vdd)
        inputs[f"A{j}b"] = ConstantSource(0.0)

    evaluator = WaveformEvaluator(tech)
    selected = "t" + "1" * LEVELS
    solution = evaluator.evaluate(decoder, output=selected,
                                  direction="fall", inputs=inputs,
                                  precharge="full")
    print(f"\nQWM path to {selected}:")
    for device, node in zip(solution.path.devices,
                            solution.path.node_names):
        kind = (f"pi wire R={device.resistance:.1f} ohm"
                if device.kind.value == "wire"
                else f"{device.kind.value} gate={device.gate}")
        print(f"  {device.name:<18} -> {node:<6} ({kind})")

    simulator = TransientSimulator(decoder, tech, TransientOptions(
        t_stop=1200e-12, dt=1e-12))
    initial = {n.name: tech.vdd for n in decoder.internal_nodes}
    reference = simulator.run(inputs, initial=initial)

    d_qwm = solution.delay(t_input=T_SWITCH)
    d_ref = reference.delay_50(selected, tech.vdd, t_input=T_SWITCH,
                               direction="fall")
    err = abs(d_qwm - d_ref) / d_ref * 100.0
    print(f"\nselected wordline 50% delay: QWM {d_qwm * 1e12:.1f} ps, "
          f"reference {d_ref * 1e12:.1f} ps ({100 - err:.2f}% accuracy)")
    unselected = "t" + "0" * LEVELS
    print(f"unselected wordline {unselected} stays at "
          f"{reference.final_value(unselected):.2f} V")

    # The paper's "closely spaced waveform pairs" across each wire.
    print("\nwire-terminal pairs (max separation during discharge):")
    names = solution.path.node_names
    for device, outer in zip(solution.path.devices, names):
        if device.kind.value != "wire":
            continue
        inner = names[names.index(outer) - 1]
        mask = reference.times > T_SWITCH
        gap = float(np.max(np.abs(reference.voltage(inner)[mask]
                                  - reference.voltage(outer)[mask])))
        print(f"  {inner} / {outer}: {gap * 1e3:.1f} mV")

    speedup = reference.stats.wall_time / solution.stats.wall_time
    print(f"\nspeedup vs 1 ps reference: {speedup:.1f}x "
          f"(paper: 6x vs its 10 ps run, 96.44% accuracy)")


if __name__ == "__main__":
    main()
