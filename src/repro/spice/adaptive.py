"""LTE-controlled adaptive transient analysis.

Real SPICE engines do not run at fixed 1 ps steps: they grow the step
when the solution is smooth and shrink it through fast transitions,
keeping the local truncation error (LTE) near a target.  This engine
implements the standard predictor/corrector scheme on top of the same
stage equations as the fixed-step engine:

1. predict the next solution by linear extrapolation of the history,
2. correct with a backward-Euler Newton solve,
3. estimate the LTE from the predictor/corrector gap and accept or
   retry with a smaller step, rescaling ``dt`` by the usual
   ``sqrt(tol / lte)`` rule.

It exists both as a library feature and as a benchmark reference: the
paper's fixed 1 ps / 10 ps comparisons bracket what an adaptive run
achieves (see ``benchmarks/bench_adaptive.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.circuit.netlist import LogicStage
from repro.devices.technology import Technology
from repro.linalg.newton import (
    NewtonConvergenceError,
    NewtonOptions,
    NewtonSolver,
)
from repro.obs import inc
from repro.obs.profile import profile_phase
from repro.resilience import faults
from repro.spice.dc import logic_initial_condition, solve_dc
from repro.spice.mna import StageEquations
from repro.spice.results import SimulationStats, TransientResult
from repro.spice.sources import SourceLike, as_source


class TransientBudgetExceeded(RuntimeError):
    """The adaptive engine exhausted its step or wall-clock budget.

    Step halving around a non-smooth point can otherwise attempt an
    unbounded number of steps (each rejection is a full Newton solve);
    the budget turns that pathology into a structured, catchable
    failure carrying how far the analysis got.
    """

    def __init__(self, message: str, attempts: int,
                 wall_seconds: float, t_reached: float):
        super().__init__(message)
        self.attempts = attempts
        self.wall_seconds = wall_seconds
        self.t_reached = t_reached


@dataclass
class AdaptiveOptions:
    """Controls for :class:`AdaptiveTransientSimulator`.

    Attributes:
        t_stop: analysis window [s].
        dt_min: smallest allowed step [s].
        dt_max: largest allowed step [s].
        dt_initial: starting step [s].
        lte_tol: accepted local truncation error per step [V].
        grow_limit: maximum step growth factor per accepted step.
        shrink_limit: minimum step shrink factor per rejected step.
        newton: per-step Newton controls.
        max_steps: budget on step *attempts* (accepted + LTE-rejected +
            Newton-failed); exceeding it raises
            :class:`TransientBudgetExceeded`.
        max_wall_seconds: optional wall-clock budget for one run [s].
    """

    t_stop: float = 500e-12
    dt_min: float = 10e-15
    dt_max: float = 20e-12
    dt_initial: float = 0.5e-12
    lte_tol: float = 2e-3
    grow_limit: float = 2.0
    shrink_limit: float = 0.25
    newton: NewtonOptions = field(default_factory=lambda: NewtonOptions(
        abstol=1e-9, xtol=1e-7, max_iterations=40, max_step=0.5))
    max_steps: int = 200_000
    max_wall_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0 < self.dt_min <= self.dt_initial <= self.dt_max:
            raise ValueError("need dt_min <= dt_initial <= dt_max")
        if self.lte_tol <= 0:
            raise ValueError("lte_tol must be positive")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if self.max_wall_seconds is not None and self.max_wall_seconds <= 0:
            raise ValueError("max_wall_seconds must be positive or None")


class AdaptiveTransientSimulator:
    """Variable-step backward-Euler transient engine for one stage."""

    def __init__(self, stage: LogicStage, tech: Technology,
                 options: Optional[AdaptiveOptions] = None):
        self.stage = stage
        self.tech = tech
        self.options = options or AdaptiveOptions()
        self.equations = StageEquations(stage, tech)

    def run(self, inputs: Dict[str, SourceLike],
            initial: Optional[Dict[str, float]] = None) -> TransientResult:
        """Run the adaptive analysis (same interface as the fixed engine)."""
        with profile_phase("spice.adaptive", tag=self.stage.name) as pp, \
                faults.scope_default(rung="spice",
                                     stage=self.stage.name):
            result = self._run(inputs, initial)
            pp.count("steps", result.stats.steps)
            pp.count("newton_iterations", result.stats.newton_iterations)
            pp.count("device_evaluations",
                     result.stats.device_evaluations)
            return result

    def _run(self, inputs: Dict[str, SourceLike],
             initial: Optional[Dict[str, float]]) -> TransientResult:
        opts = self.options
        eq = self.equations
        sources = {name: as_source(src) for name, src in inputs.items()}
        v = self._initial_state(sources, initial)

        times: List[float] = [0.0]
        history: List[np.ndarray] = [v.copy()]
        stats = SimulationStats()
        eq.device_evaluations = 0
        solver = NewtonSolver(opts.newton)
        gate_prev = eq.gate_values(sources, 0.0)

        t = 0.0
        dt = opts.dt_initial
        prev_dt: Optional[float] = None
        attempts = 0
        t_start = time.perf_counter()
        while t < opts.t_stop - 1e-18:
            attempts += 1
            wall = time.perf_counter() - t_start
            if attempts > opts.max_steps or (
                    opts.max_wall_seconds is not None
                    and wall > opts.max_wall_seconds):
                inc("spice.budget.exceeded")
                what = ("step budget" if attempts > opts.max_steps
                        else "wall-clock budget")
                raise TransientBudgetExceeded(
                    f"adaptive transient exceeded its {what} "
                    f"({attempts - 1} attempts, {wall:.3g}s) at "
                    f"t={t:.3e}s of {opts.t_stop:.3e}s",
                    attempts=attempts - 1, wall_seconds=wall,
                    t_reached=t)
            dt = min(dt, opts.t_stop - t)
            # Break the step at input discontinuities (SPICE-style
            # breakpoints): land exactly on the edge, and since that
            # step necessarily contains the discontinuity, the LTE test
            # is waived for it and integration restarts small after.
            dt, at_breakpoint = self._limit_to_source_edges(sources, t, dt)
            t_new = t + dt
            gate_new = eq.gate_values(sources, t_new)
            caps = eq.node_capacitances(v)
            v_old = v.copy()

            miller = np.zeros(eq.n)
            for idx, gate, cap in eq.gate_couplings:
                dvg = (gate_new[gate] - gate_prev[gate]) / dt
                miller[idx] -= cap * dvg

            def residual(x: np.ndarray) -> np.ndarray:
                f, _ = eq.static_residual(x, gate_new)
                return f + caps * (x - v_old) / dt + miller

            def jacobian(x: np.ndarray) -> np.ndarray:
                _, jac = eq.static_residual(x, gate_new)
                jac = jac.copy()
                jac[np.diag_indices(eq.n)] += caps / dt
                return jac

            predictor = self._predict(history, times, dt, prev_dt)
            try:
                result = solver.solve(residual, jacobian, predictor)
            except NewtonConvergenceError:
                if dt <= opts.dt_min * 1.001:
                    raise
                dt = max(dt * opts.shrink_limit, opts.dt_min)
                continue

            v_new = np.clip(result.x, -2.0, self.stage.vdd + 2.0)
            lte = float(np.max(np.abs(v_new - predictor))) \
                if prev_dt is not None else 0.0
            if (lte > opts.lte_tol and dt > opts.dt_min * 1.001
                    and not at_breakpoint):
                dt = max(dt * max(np.sqrt(opts.lte_tol / lte) * 0.8,
                                  opts.shrink_limit), opts.dt_min)
                continue

            # Accept.
            prev_dt = dt
            t = t_new
            v = v_new
            gate_prev = gate_new
            times.append(t)
            history.append(v.copy())
            stats.steps += 1
            stats.newton_iterations += result.iterations
            if at_breakpoint:
                # Restart small after the discontinuity; the history is
                # not smooth across it, so the predictor resets too.
                dt = opts.dt_initial
                prev_dt = None
            elif lte > 0:
                dt = min(dt * min(np.sqrt(opts.lte_tol / lte),
                                  opts.grow_limit), opts.dt_max)
            else:
                dt = min(dt * opts.grow_limit, opts.dt_max)
        stats.wall_time = time.perf_counter() - t_start
        stats.device_evaluations = eq.device_evaluations

        stacked = np.vstack(history)
        voltages = {name: stacked[:, eq.node_index(name)]
                    for name in eq.node_names}
        return TransientResult(times=np.asarray(times), voltages=voltages,
                               stats=stats, label="spice-adaptive")

    # ------------------------------------------------------------------
    def _predict(self, history: List[np.ndarray], times: List[float],
                 dt: float, prev_dt: Optional[float]) -> np.ndarray:
        if prev_dt is None or len(history) < 2:
            return history[-1].copy()
        slope = (history[-1] - history[-2]) / prev_dt
        return history[-1] + slope * dt

    def _limit_to_source_edges(self, sources, t: float, dt: float):
        """Shrink the step so it lands on (not across) a step edge.

        Returns ``(dt, at_breakpoint)``; ``at_breakpoint`` is True when
        the step ends exactly on a source discontinuity.
        """
        limit = dt
        breakpoint_hit = False
        approach = 1.5 * self.options.dt_initial
        for src in sources.values():
            t_step = getattr(src, "t_step", None)
            if t_step is None or not t < t_step <= t + limit:
                continue
            gap = t_step - t
            if gap > approach:
                # Walk up to the edge first; backward Euler evaluates
                # the whole step at its end time, so the edge-containing
                # step must stay short or the device conducts for the
                # entire (pre-edge) span.
                limit = gap - self.options.dt_initial
                breakpoint_hit = False
            else:
                limit = gap
                breakpoint_hit = True
        return limit, breakpoint_hit

    def _initial_state(self, sources, initial) -> np.ndarray:
        eq = self.equations
        levels = eq.gate_values(sources, 0.0)
        seed = logic_initial_condition(self.stage, levels)
        if initial is not None:
            seed.update(initial)
            return np.array([seed[name] for name in eq.node_names])
        if eq.n == 0:
            return np.zeros(0)
        guess = np.array([seed[name] for name in eq.node_names])
        return solve_dc(eq, levels, initial_guess=guess)
