"""SPICE-like reference simulator (the repository's HSPICE stand-in).

A time-domain, Newton-Raphson-per-timestep transient engine over the
golden analytic MOSFET model: the approach the paper positions QWM
against.  "The timing analysis for non-linear circuits ... is usually
performed by a SPICE like, time domain integration based approach,
involving expensive Newton Raphson iterations at numerous time steps."

The engine runs at fixed user step sizes (the paper compares HSPICE at
1 ps and 10 ps) so the cost structure — one nonlinear solve per step —
matches the baseline being reproduced.  Solve statistics (steps, Newton
iterations, device evaluations, wall time) are recorded for the speedup
tables.
"""

from repro.spice.sources import (
    ConstantSource,
    PulseSource,
    PWLSource,
    RampSource,
    Source,
    StepSource,
    as_source,
)
from repro.spice.results import SimulationStats, TransientResult
from repro.spice.mna import StageEquations
from repro.spice.dc import solve_dc, logic_initial_condition
from repro.spice.transient import TransientOptions, TransientSimulator
from repro.spice.adaptive import (
    AdaptiveOptions,
    AdaptiveTransientSimulator,
    TransientBudgetExceeded,
)

__all__ = [
    "ConstantSource",
    "PulseSource",
    "PWLSource",
    "RampSource",
    "Source",
    "StepSource",
    "as_source",
    "SimulationStats",
    "TransientResult",
    "StageEquations",
    "solve_dc",
    "logic_initial_condition",
    "TransientOptions",
    "TransientSimulator",
    "AdaptiveOptions",
    "AdaptiveTransientSimulator",
    "TransientBudgetExceeded",
]
