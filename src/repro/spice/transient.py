"""Fixed-step transient analysis with Newton-Raphson at every step.

This is the cost model the paper measures HSPICE against: the user picks
a step size (1 ps or 10 ps in the paper's tables) and the engine performs
one nonlinear solve per step.  Backward-Euler and trapezoidal
integration are supported; capacitances may follow the node voltages
(evaluated at the last accepted solution, explicit-in-C) or stay at
their large-signal equivalents.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.circuit.netlist import LogicStage
from repro.devices.technology import Technology
from repro.linalg.newton import NewtonOptions, NewtonSolver
from repro.obs import inc, span
from repro.obs.profile import profile_phase
from repro.spice.dc import logic_initial_condition, solve_dc
from repro.spice.mna import StageEquations
from repro.spice.results import SimulationStats, TransientResult
from repro.spice.sources import SourceLike, as_source


@dataclass
class TransientOptions:
    """Controls for :class:`TransientSimulator`.

    Attributes:
        t_stop: end of the analysis window [s].
        dt: fixed time step [s] (the paper uses 1e-12 and 1e-11).
        method: ``"be"`` (backward Euler) or ``"trap"`` (trapezoidal).
        voltage_dependent_caps: see :class:`StageEquations`.
        newton: Newton-Raphson controls for the per-step solves.
        dc_init: if True and no explicit initial condition is given,
            run a DC operating point at t=0 to initialize.
    """

    t_stop: float = 500e-12
    dt: float = 1e-12
    method: str = "be"
    voltage_dependent_caps: bool = True
    newton: NewtonOptions = field(default_factory=lambda: NewtonOptions(
        abstol=1e-9, xtol=1e-7, max_iterations=50, max_step=0.5))
    dc_init: bool = True

    def __post_init__(self) -> None:
        if self.t_stop <= 0 or self.dt <= 0:
            raise ValueError("t_stop and dt must be positive")
        if self.method not in ("be", "trap"):
            raise ValueError("method must be 'be' or 'trap'")


class TransientSimulator:
    """SPICE-style transient engine for one logic stage.

    Args:
        stage: the stage to simulate.
        tech: technology (golden device models).
        options: analysis controls.
    """

    def __init__(self, stage: LogicStage, tech: Technology,
                 options: Optional[TransientOptions] = None):
        self.stage = stage
        self.tech = tech
        self.options = options or TransientOptions()
        self.equations = StageEquations(
            stage, tech,
            voltage_dependent_caps=self.options.voltage_dependent_caps)

    def run(self, inputs: Dict[str, SourceLike],
            initial: Optional[Dict[str, float]] = None) -> TransientResult:
        """Run the transient analysis.

        Args:
            inputs: gate input name -> driving source (or constant level).
            initial: optional node name -> initial voltage [V]; missing
                nodes are initialized by DC analysis (``dc_init=True``)
                or a switch-level estimate.

        Returns:
            Waveforms for every internal node, with solver statistics.
        """
        with profile_phase("spice.transient", tag=self.stage.name) as pp, \
                span("spice.transient", stage=self.stage.name,
                     method=self.options.method,
                     dt=self.options.dt) as sp:
            result = self._run(inputs, initial)
            sp.set(steps=result.stats.steps,
                   newton_iterations=result.stats.newton_iterations)
            pp.count("steps", result.stats.steps)
            pp.count("newton_iterations", result.stats.newton_iterations)
            pp.count("device_evaluations",
                     result.stats.device_evaluations)
        stats = result.stats
        inc("spice.steps", stats.steps)
        inc("spice.newton.iterations", stats.newton_iterations)
        inc("spice.device.evaluations", stats.device_evaluations)
        return result

    def _run(self, inputs: Dict[str, SourceLike],
             initial: Optional[Dict[str, float]]) -> TransientResult:
        opts = self.options
        eq = self.equations
        sources = {name: as_source(src) for name, src in inputs.items()}
        missing = sorted(
            {e.gate_input for e in self.stage.transistors} - set(sources))
        if missing:
            raise ValueError(f"missing input sources for {missing}")

        v = self._initial_state(sources, initial)

        n_steps = int(round(opts.t_stop / opts.dt))
        times = np.linspace(0.0, n_steps * opts.dt, n_steps + 1)
        history = np.empty((n_steps + 1, eq.n))
        history[0] = v

        stats = SimulationStats()
        eq.device_evaluations = 0
        solver = NewtonSolver(opts.newton)
        gate_prev = eq.gate_values(sources, 0.0)
        # Static residual at t=0 for the trapezoidal history term.
        f_static_prev, _ = eq.static_residual(v, gate_prev)

        t_start = time.perf_counter()
        for step in range(1, n_steps + 1):
            t_new = times[step]
            gate_new = eq.gate_values(sources, t_new)
            caps = eq.node_capacitances(v)
            v_old = v.copy()
            dt = opts.dt

            # Gate-coupling (Miller) injection from moving inputs: the
            # known d(vg)/dt drives current into the coupled nodes.
            miller = np.zeros(eq.n)
            for idx, gate, cap in eq.gate_couplings:
                dvg = (gate_new[gate] - gate_prev[gate]) / dt
                miller[idx] = miller[idx] - cap * dvg

            if opts.method == "be":
                def residual(x: np.ndarray) -> np.ndarray:
                    f, _ = eq.static_residual(x, gate_new)
                    return f + caps * (x - v_old) / dt + miller

                def jacobian(x: np.ndarray) -> np.ndarray:
                    _, jac = eq.static_residual(x, gate_new)
                    jac = jac.copy()
                    jac[np.diag_indices(eq.n)] += caps / dt
                    return jac
            else:
                # Trapezoidal: C*(v'-v)/dt = -(f(v') + f(v))/2 + inj.
                def residual(x: np.ndarray) -> np.ndarray:
                    f, _ = eq.static_residual(x, gate_new)
                    return (0.5 * (f + f_static_prev)
                            + caps * (x - v_old) / dt + miller)

                def jacobian(x: np.ndarray) -> np.ndarray:
                    _, jac = eq.static_residual(x, gate_new)
                    jac = 0.5 * jac
                    jac[np.diag_indices(eq.n)] += caps / dt
                    return jac

            result = solver.solve(residual, jacobian, v)
            # Loose divergence guard only: Miller kicks legitimately push
            # floating nodes past the rails (no junction diodes in the
            # device model), so the bounds must not clip real charge.
            v = np.clip(result.x, -2.0, self.stage.vdd + 2.0)
            history[step] = v
            stats.steps += 1
            stats.newton_iterations += result.iterations
            if opts.method == "trap":
                f_static_prev, _ = eq.static_residual(v, gate_new)
            gate_prev = gate_new
        stats.wall_time = time.perf_counter() - t_start
        stats.device_evaluations = eq.device_evaluations

        voltages = {name: history[:, eq.node_index(name)]
                    for name in eq.node_names}
        return TransientResult(times=times, voltages=voltages,
                               stats=stats, label="spice")

    # ------------------------------------------------------------------
    def _initial_state(self, sources, initial) -> np.ndarray:
        eq = self.equations
        levels = eq.gate_values(sources, 0.0)
        if initial is not None:
            estimate = logic_initial_condition(self.stage, levels)
            estimate.update(initial)
            return np.array([estimate[name] for name in eq.node_names])
        if self.options.dc_init and eq.n > 0:
            seed = logic_initial_condition(self.stage, levels)
            guess = np.array([seed[name] for name in eq.node_names])
            return solve_dc(eq, levels, initial_guess=guess)
        seed = logic_initial_condition(self.stage, levels)
        return np.array([seed[name] for name in eq.node_names])
