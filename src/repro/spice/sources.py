"""Input voltage sources (waveforms driving stage gate inputs)."""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional, Sequence, Union


class Source:
    """Base class for time-dependent voltage sources."""

    def value(self, t: float) -> float:
        """Source voltage at time ``t`` [V]."""
        raise NotImplementedError

    def slope(self, t: float) -> float:
        """Time derivative ``dv/dt`` at ``t`` [V/s].

        The default is a centered finite difference; ideal steps and
        constants report zero away from the discontinuity, which is the
        correct contribution to the QWM Jacobian's time column.
        """
        h = 1e-15
        return (self.value(t + h) - self.value(t - h)) / (2.0 * h)

    def next_break(self, t: float) -> Optional[float]:
        """The next instant after ``t`` where the waveform description
        changes segment (a ramp ends, a step fires), or None when the
        source is a single segment from ``t`` on.

        QWM treats these instants as critical points: the Miller
        injection of a moving gate is discontinuous across them, so a
        solve region must not span one.
        """
        return None

    def __call__(self, t: float) -> float:
        return self.value(t)


@dataclass(frozen=True)
class ConstantSource(Source):
    """A DC level."""

    level: float

    def value(self, t: float) -> float:
        return self.level

    def slope(self, t: float) -> float:
        return 0.0


@dataclass(frozen=True)
class StepSource(Source):
    """An ideal step from ``v0`` to ``v1`` at ``t_step``.

    The paper's simplified presentation assumes step inputs ("the
    switching input is a step signal"); the implementation, like the
    paper's, does not require them.
    """

    v0: float
    v1: float
    t_step: float = 0.0

    def value(self, t: float) -> float:
        return self.v1 if t >= self.t_step else self.v0

    def slope(self, t: float) -> float:
        return 0.0

    def next_break(self, t: float) -> Optional[float]:
        return self.t_step if t < self.t_step else None


@dataclass(frozen=True)
class RampSource(Source):
    """A saturated ramp from ``v0`` to ``v1`` starting at ``t_start``."""

    v0: float
    v1: float
    t_start: float = 0.0
    t_rise: float = 50e-12

    def __post_init__(self) -> None:
        if self.t_rise <= 0:
            raise ValueError("t_rise must be positive")

    def value(self, t: float) -> float:
        if t <= self.t_start:
            return self.v0
        if t >= self.t_start + self.t_rise:
            return self.v1
        frac = (t - self.t_start) / self.t_rise
        return self.v0 + (self.v1 - self.v0) * frac

    def slope(self, t: float) -> float:
        if self.t_start < t < self.t_start + self.t_rise:
            return (self.v1 - self.v0) / self.t_rise
        return 0.0

    def next_break(self, t: float) -> Optional[float]:
        if t < self.t_start:
            return self.t_start
        if t < self.t_start + self.t_rise:
            return self.t_start + self.t_rise
        return None


@dataclass(frozen=True)
class PulseSource(Source):
    """A SPICE-style pulse: delay, rise, width, fall, period."""

    v0: float
    v1: float
    delay: float
    rise: float
    width: float
    fall: float
    period: float = 0.0

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.v0
        local = t - self.delay
        if self.period > 0:
            local = local % self.period
        if local < self.rise:
            return self.v0 + (self.v1 - self.v0) * local / self.rise
        local -= self.rise
        if local < self.width:
            return self.v1
        local -= self.width
        if local < self.fall:
            return self.v1 + (self.v0 - self.v1) * local / self.fall
        return self.v0

    def next_break(self, t: float) -> Optional[float]:
        edges = [self.delay, self.delay + self.rise,
                 self.delay + self.rise + self.width,
                 self.delay + self.rise + self.width + self.fall]
        if self.period > 0:
            cycle = max(0.0, t - self.delay) // self.period
            for shift in (cycle * self.period,
                          (cycle + 1) * self.period):
                for edge in edges:
                    if edge + shift > t:
                        return edge + shift
            return None
        for edge in edges:
            if edge > t:
                return edge
        return None


class PWLSource(Source):
    """Piecewise-linear source from ``(time, value)`` breakpoints."""

    def __init__(self, points: Sequence[Sequence[float]]):
        if len(points) < 1:
            raise ValueError("PWL source needs at least one point")
        times = [float(p[0]) for p in points]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("PWL times must be strictly increasing")
        self.times = times
        self.values = [float(p[1]) for p in points]

    def value(self, t: float) -> float:
        times, values = self.times, self.values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        hi = bisect.bisect_right(times, t)
        lo = hi - 1
        frac = (t - times[lo]) / (times[hi] - times[lo])
        return values[lo] + (values[hi] - values[lo]) * frac

    def next_break(self, t: float) -> Optional[float]:
        idx = bisect.bisect_right(self.times, t)
        return self.times[idx] if idx < len(self.times) else None


SourceLike = Union[Source, float, int]


def as_source(value: SourceLike) -> Source:
    """Coerce a number into a :class:`ConstantSource`."""
    if isinstance(value, Source):
        return value
    return ConstantSource(float(value))
