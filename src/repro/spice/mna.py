"""Nodal equations for a logic stage (residual/Jacobian assembly).

The unknowns are the internal node voltages of a stage; the polar source
and sink are fixed at vdd and 0, and gate inputs are driven by known
source waveforms.  :class:`StageEquations` assembles

* the *static* residual (transistor channel currents via the golden
  analytic model, wire resistive currents) and its dense Jacobian, and
* the node capacitance vector (voltage-dependent junction caps, wire
  caps split half per end, external loads) plus gate-coupling (Miller)
  capacitances to the driven inputs,

which the DC and transient solvers combine with their own companion
terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.elements import DeviceKind
from repro.circuit.netlist import LogicStage
from repro.devices.capacitance import (
    equivalent_junction_cap,
    junction_capacitance,
    wire_capacitance,
    wire_resistance,
)
from repro.devices.mosfet import MosfetModel, nmos_model, pmos_model
from repro.devices.technology import Technology


@dataclass
class _TransistorRef:
    """Pre-resolved transistor bookkeeping for fast evaluation."""

    model: MosfetModel
    w: float
    l: float
    gate: str
    src_index: int  # -1 for VDD, -2 for GND
    snk_index: int
    gate_half_cap: float  # 0.5*Cox*W*L + Cov*W, each channel terminal


@dataclass
class _WireRef:
    resistance: float
    src_index: int
    snk_index: int


def _polarity_params(tech: Technology, kind: DeviceKind):
    return tech.nmos if kind is DeviceKind.NMOS else tech.pmos


class StageEquations:
    """Residual/Jacobian assembler for one logic stage.

    Args:
        stage: the logic stage to simulate.
        tech: technology providing the golden device models.
        voltage_dependent_caps: if True, junction capacitances follow the
            instantaneous node voltage (evaluated at the previous accepted
            solution, explicit-in-capacitance); if False, the large-signal
            equivalent capacitance over the full swing is used.
    """

    VDD_INDEX = -1
    GND_INDEX = -2

    def __init__(self, stage: LogicStage, tech: Technology,
                 voltage_dependent_caps: bool = True):
        self.stage = stage
        self.tech = tech
        self.vdd = stage.vdd
        self.voltage_dependent_caps = voltage_dependent_caps
        self.node_names: List[str] = [n.name for n in stage.internal_nodes]
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self.node_names)}
        self.n = len(self.node_names)
        self.device_evaluations = 0

        models = {"n": nmos_model(tech), "p": pmos_model(tech)}
        self._transistors: List[_TransistorRef] = []
        self._wires: List[_WireRef] = []
        # Per-node fixed capacitance (wire halves + loads) and junction
        # attachment lists for the voltage-dependent part.
        self._fixed_cap = np.zeros(self.n)
        self._junctions: List[List[Tuple[DeviceKind, float]]] = [
            [] for _ in range(self.n)]
        # Gate-coupling caps: (node_index, gate_signal, cap_value).
        self.gate_couplings: List[Tuple[int, str, float]] = []

        for node in stage.internal_nodes:
            self._fixed_cap[self._index[node.name]] += node.load_cap

        for edge in stage.edges:
            src_idx = self._node_index(edge.src.name)
            snk_idx = self._node_index(edge.snk.name)
            if edge.kind is DeviceKind.WIRE:
                r = wire_resistance(tech.wire, edge.w, edge.l)
                c = wire_capacitance(tech.wire, edge.w, edge.l)
                self._wires.append(_WireRef(r, src_idx, snk_idx))
                for idx in (src_idx, snk_idx):
                    if idx >= 0:
                        self._fixed_cap[idx] += 0.5 * c
                continue
            params = _polarity_params(tech, edge.kind)
            half_gate = 0.5 * params.cox * edge.w * edge.l + params.cov * edge.w
            ref = _TransistorRef(
                model=models[edge.kind.polarity],
                w=edge.w, l=edge.l, gate=edge.gate_input,
                src_index=src_idx, snk_index=snk_idx,
                gate_half_cap=half_gate)
            self._transistors.append(ref)
            for idx in (src_idx, snk_idx):
                if idx >= 0:
                    self._junctions[idx].append((edge.kind, edge.w))
                    self.gate_couplings.append(
                        (idx, edge.gate_input, half_gate))

    # ------------------------------------------------------------------
    def _node_index(self, name: str) -> int:
        if name == self.stage.source.name:
            return self.VDD_INDEX
        if name == self.stage.sink.name:
            return self.GND_INDEX
        return self._index[name]

    def node_index(self, name: str) -> int:
        """Index of an internal node in the unknown vector."""
        return self._index[name]

    def _voltage(self, v: np.ndarray, index: int) -> float:
        if index == self.VDD_INDEX:
            return self.vdd
        if index == self.GND_INDEX:
            return 0.0
        return float(v[index])

    # ------------------------------------------------------------------
    def static_residual(self, v: np.ndarray,
                        gate_values: Dict[str, float],
                        gmin: float = 0.0
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Sum of element currents leaving each internal node, + Jacobian.

        Args:
            v: internal node voltages.
            gate_values: input-signal name -> gate voltage at this instant.
            gmin: optional shunt conductance from every node to ground
                (DC convergence aid).

        Returns:
            ``(residual, jacobian)``: residual[i] is the net current
            leaving node i through resistive/channel elements; jacobian
            is its dense derivative.
        """
        f = np.zeros(self.n)
        jac = np.zeros((self.n, self.n))

        for t in self._transistors:
            vg = gate_values[t.gate]
            v_src = self._voltage(v, t.src_index)
            v_snk = self._voltage(v, t.snk_index)
            op = t.model.evaluate(t.w, t.l, vg, v_src, v_snk)
            self.device_evaluations += 1
            # Current src -> snk leaves the src node and enters the snk.
            if t.src_index >= 0:
                f[t.src_index] += op.ids
                jac[t.src_index, t.src_index] += op.g_src
                if t.snk_index >= 0:
                    jac[t.src_index, t.snk_index] += op.g_snk
            if t.snk_index >= 0:
                f[t.snk_index] -= op.ids
                jac[t.snk_index, t.snk_index] -= op.g_snk
                if t.src_index >= 0:
                    jac[t.snk_index, t.src_index] -= op.g_src

        for wire in self._wires:
            v_src = self._voltage(v, wire.src_index)
            v_snk = self._voltage(v, wire.snk_index)
            g = 1.0 / wire.resistance
            current = g * (v_src - v_snk)
            if wire.src_index >= 0:
                f[wire.src_index] += current
                jac[wire.src_index, wire.src_index] += g
                if wire.snk_index >= 0:
                    jac[wire.src_index, wire.snk_index] -= g
            if wire.snk_index >= 0:
                f[wire.snk_index] -= current
                jac[wire.snk_index, wire.snk_index] += g
                if wire.src_index >= 0:
                    jac[wire.snk_index, wire.src_index] -= g

        if gmin > 0.0:
            f += gmin * v
            jac[np.diag_indices(self.n)] += gmin

        return f, jac

    # ------------------------------------------------------------------
    def node_capacitances(self, v: np.ndarray) -> np.ndarray:
        """Per-node capacitance to ground [F] at the given voltages.

        Includes junction caps (voltage dependent if enabled), wire cap
        halves, external loads and the channel-side halves of the gate
        capacitances (their coupling to moving inputs is handled
        separately via :attr:`gate_couplings`).
        """
        caps = self._fixed_cap.copy()
        for idx in range(self.n):
            for kind, w in self._junctions[idx]:
                params = _polarity_params(self.tech, kind)
                if kind is DeviceKind.NMOS:
                    v_reverse = float(v[idx])
                else:
                    v_reverse = self.vdd - float(v[idx])
                if self.voltage_dependent_caps:
                    caps[idx] += junction_capacitance(params, w, v_reverse)
                else:
                    caps[idx] += equivalent_junction_cap(
                        params, w, 0.0, self.vdd)
        for idx, _gate, cap in self.gate_couplings:
            caps[idx] += cap
        return caps

    def gate_values(self, sources: Dict[str, "object"], t: float
                    ) -> Dict[str, float]:
        """Evaluate every input source at time ``t``."""
        return {name: src.value(t) for name, src in sources.items()}
