"""Simulation result containers and waveform measurement utilities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class SimulationStats:
    """Cost accounting for one simulation run.

    Attributes:
        steps: accepted time steps (or QWM matching points).
        newton_iterations: total Newton-Raphson iterations.
        device_evaluations: total device-model evaluations.
        wall_time: elapsed solver time [s] (excludes model building /
            characterization, matching the paper's "transient time only"
            comparison).
    """

    steps: int = 0
    newton_iterations: int = 0
    device_evaluations: int = 0
    wall_time: float = 0.0

    def merge(self, other: "SimulationStats") -> "SimulationStats":
        """Accumulate another run's counters into a new object."""
        return SimulationStats(
            steps=self.steps + other.steps,
            newton_iterations=self.newton_iterations + other.newton_iterations,
            device_evaluations=self.device_evaluations
            + other.device_evaluations,
            wall_time=self.wall_time + other.wall_time,
        )

    def accumulate(self, other: "SimulationStats") -> "SimulationStats":
        """Add another run's counters into *this* object (returns self).

        The in-place variant of :meth:`merge`; parallel STA workers fold
        per-arc stats into one local accumulator with it, so counter
        aggregation never depends on shared mutable state.
        """
        self.steps += other.steps
        self.newton_iterations += other.newton_iterations
        self.device_evaluations += other.device_evaluations
        self.wall_time += other.wall_time
        return self

    def __add__(self, other: object) -> "SimulationStats":
        if not isinstance(other, SimulationStats):
            return NotImplemented
        return self.merge(other)

    def __radd__(self, other: object) -> "SimulationStats":
        # Supports sum(stats_list) which seeds the fold with int 0.
        if other == 0:
            return self.merge(SimulationStats())
        return NotImplemented


@dataclass
class TransientResult:
    """Waveforms produced by a transient analysis.

    Attributes:
        times: sample instants, ascending [s].
        voltages: node name -> sampled voltages [V].
        stats: solver cost accounting.
        label: human-readable engine tag (``"spice"``, ``"qwm"``, ...).
    """

    times: np.ndarray
    voltages: Dict[str, np.ndarray]
    stats: SimulationStats = field(default_factory=SimulationStats)
    label: str = ""

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.voltages = {
            name: np.asarray(v, dtype=float)
            for name, v in self.voltages.items()
        }
        for name, v in self.voltages.items():
            if v.shape != self.times.shape:
                raise ValueError(
                    f"waveform {name!r} has {v.shape[0]} samples, "
                    f"expected {self.times.shape[0]}")

    @property
    def node_names(self) -> List[str]:
        return list(self.voltages)

    def voltage(self, node: str) -> np.ndarray:
        """Sampled waveform of one node."""
        return self.voltages[node]

    def at(self, node: str, t: float) -> float:
        """Linearly interpolated node voltage at time ``t``."""
        return float(np.interp(t, self.times, self.voltages[node]))

    def sample(self, node: str, times: np.ndarray) -> np.ndarray:
        """Resample one node's waveform onto a new time axis."""
        return np.interp(times, self.times, self.voltages[node])

    def crossing_time(self, node: str, level: float,
                      direction: str = "auto",
                      after: float = 0.0) -> Optional[float]:
        """First time the node crosses ``level`` (linear interpolation).

        Args:
            node: node name.
            level: voltage threshold [V].
            direction: ``"rise"``, ``"fall"`` or ``"auto"`` (either).
            after: ignore crossings before this time [s].

        Returns:
            The crossing time, or None if the level is never crossed.
        """
        t = self.times
        v = self.voltages[node]
        for i in range(1, t.size):
            if t[i] < after:
                continue
            v0, v1 = v[i - 1], v[i]
            crossed_up = v0 < level <= v1
            crossed_down = v0 > level >= v1
            if direction == "rise" and not crossed_up:
                continue
            if direction == "fall" and not crossed_down:
                continue
            if direction == "auto" and not (crossed_up or crossed_down):
                continue
            if v1 == v0:
                return float(t[i])
            frac = (level - v0) / (v1 - v0)
            return float(t[i - 1] + frac * (t[i] - t[i - 1]))
        return None

    def delay_50(self, node: str, vdd: float, t_input: float = 0.0,
                 direction: str = "auto") -> Optional[float]:
        """Propagation delay: input event to the node's 50% crossing [s]."""
        crossing = self.crossing_time(node, 0.5 * vdd, direction=direction,
                                      after=t_input)
        if crossing is None:
            return None
        return crossing - t_input

    def slew(self, node: str, vdd: float, direction: str,
             low_frac: float = 0.1, high_frac: float = 0.9) -> Optional[float]:
        """Transition time between the 10% and 90% levels [s]."""
        lo, hi = low_frac * vdd, high_frac * vdd
        if direction == "rise":
            t_lo = self.crossing_time(node, lo, "rise")
            t_hi = self.crossing_time(node, hi, "rise")
        elif direction == "fall":
            t_hi = self.crossing_time(node, hi, "fall")
            t_lo = self.crossing_time(node, lo, "fall")
        else:
            raise ValueError("direction must be 'rise' or 'fall'")
        if t_lo is None or t_hi is None:
            return None
        return abs(t_lo - t_hi)

    def final_value(self, node: str) -> float:
        return float(self.voltages[node][-1])
