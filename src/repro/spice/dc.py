"""DC operating-point analysis.

Solves the static nodal equations of a stage at fixed input levels.
Convergence is aided by *gmin stepping*: a shunt conductance from every
node to ground is swept down decade by decade, each solution seeding the
next — the standard SPICE continuation method.  Floating nodes (e.g. the
internal nodes of an off NMOS stack, which only connect through
sub-threshold leakage) settle at the leakage-balanced voltage, exactly
as they do in HSPICE.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.circuit.elements import DeviceKind
from repro.circuit.netlist import LogicStage
from repro.linalg.newton import NewtonConvergenceError, NewtonOptions, NewtonSolver
from repro.spice.mna import StageEquations
from repro.spice.sources import SourceLike, as_source


def solve_dc(equations: StageEquations,
             input_levels: Dict[str, float],
             initial_guess: Optional[np.ndarray] = None,
             gmin_start: float = 1e-3,
             gmin_final: float = 1e-12,
             abstol: float = 1e-12) -> np.ndarray:
    """Solve the DC operating point of a stage.

    Args:
        equations: assembled stage equations.
        input_levels: gate input name -> DC voltage [V].
        initial_guess: starting node voltages; defaults to mid-rail.
        gmin_start: initial shunt conductance for the continuation [S].
        gmin_final: final (residual) shunt conductance [S].
        abstol: Newton residual tolerance at the final gmin [A].

    Returns:
        Internal node voltages.

    Raises:
        NewtonConvergenceError: if the continuation fails to converge.
    """
    n = equations.n
    if n == 0:
        return np.zeros(0)
    v = (np.full(n, 0.5 * equations.vdd) if initial_guess is None
         else np.array(initial_guess, dtype=float))

    gmin = gmin_start
    solver = NewtonSolver(NewtonOptions(
        abstol=1e-9, xtol=1e-12, max_iterations=200,
        max_step=0.3 * equations.vdd))
    while True:
        current_gmin = gmin

        def residual(x: np.ndarray) -> np.ndarray:
            f, _ = equations.static_residual(x, input_levels,
                                             gmin=current_gmin)
            return f

        def jacobian(x: np.ndarray) -> np.ndarray:
            _, jac = equations.static_residual(x, input_levels,
                                               gmin=current_gmin)
            return jac

        if gmin <= gmin_final:
            solver = NewtonSolver(NewtonOptions(
                abstol=abstol, xtol=1e-12, max_iterations=200,
                max_step=0.3 * equations.vdd))
        try:
            result = solver.solve(residual, jacobian, v)
            v = result.x
        except NewtonConvergenceError:
            # Pseudo-transient continuation: the model's vds = 0 body-
            # effect kink (a pass device whose terminals float together)
            # can trap plain Newton in a cycle.  Backward-Euler settling
            # regularizes the Jacobian with C/dt and walks through it.
            v = pseudo_transient_dc(equations, input_levels, v,
                                    gmin=current_gmin)
        if gmin <= gmin_final:
            return v
        gmin = max(gmin * 1e-2, gmin_final)


def pseudo_transient_dc(equations: StageEquations,
                        input_levels: Dict[str, float],
                        v0: np.ndarray,
                        gmin: float = 0.0,
                        dt_start: float = 1e-12,
                        dt_max: float = 1e-9,
                        max_steps: int = 400,
                        settle_tol: float = 1e-6) -> np.ndarray:
    """DC by backward-Euler settling (pseudo-transient continuation).

    Integrates the stage with frozen inputs until the state stops
    moving, growing the step geometrically; the C/dt diagonal keeps the
    per-step Newton solves well conditioned even across the device
    model's non-smooth points.  This is the classic SPICE fallback when
    the plain operating-point Newton fails.

    Raises:
        NewtonConvergenceError: if even the settling steps fail.
    """
    v = np.array(v0, dtype=float, copy=True)
    dt = dt_start
    solver = NewtonSolver(NewtonOptions(
        abstol=1e-9, xtol=1e-10, max_iterations=80,
        max_step=0.3 * equations.vdd))
    for _ in range(max_steps):
        caps = equations.node_capacitances(v)
        v_old = v.copy()

        def residual(x: np.ndarray) -> np.ndarray:
            f, _ = equations.static_residual(x, input_levels, gmin=gmin)
            return f + caps * (x - v_old) / dt

        def jacobian(x: np.ndarray) -> np.ndarray:
            _, jac = equations.static_residual(x, input_levels,
                                               gmin=gmin)
            jac = jac.copy()
            jac[np.diag_indices(equations.n)] += caps / dt
            return jac

        try:
            result = solver.solve(residual, jacobian, v)
        except NewtonConvergenceError:
            dt *= 0.25
            if dt < 1e-16:
                raise
            continue
        moved = float(np.max(np.abs(result.x - v))) if equations.n else 0.0
        v = result.x
        if moved < settle_tol and dt >= dt_max:
            return v
        dt = min(dt * 2.0, dt_max)
    return v


def logic_initial_condition(stage: LogicStage,
                            input_levels: Dict[str, SourceLike],
                            default: Optional[float] = None
                            ) -> Dict[str, float]:
    """Switch-level estimate of the node voltages for given input levels.

    Propagates strong rail connections through conducting transistors
    (NMOS on when its gate is above mid-rail, PMOS below) and through
    wires.  Nodes reachable from ground get 0; nodes reachable from the
    supply only through NMOS get the threshold-degraded level
    ``vdd - vth``; through PMOS, full ``vdd``.  Unreachable (floating)
    nodes get ``default`` (mid-rail if omitted).

    This is the seed a transient run uses before an exact DC solve, and
    doubles as a tiny switch-level simulator for tests.
    """
    vdd = stage.vdd
    default = 0.5 * vdd if default is None else default
    levels = {name: as_source(src).value(0.0) for name, src in
              input_levels.items()}

    def is_on(edge) -> bool:
        gate_v = levels[edge.gate_input]
        if edge.kind is DeviceKind.NMOS:
            return gate_v > 0.5 * vdd
        return gate_v < 0.5 * vdd

    def conducting(edge) -> bool:
        return edge.kind is DeviceKind.WIRE or is_on(edge)

    # BFS from each pole over conducting elements.
    values: Dict[str, float] = {}

    def sweep(start_node, value: float, nmos_degrade: bool) -> None:
        frontier = [(start_node, value)]
        seen = set()
        while frontier:
            node, val = frontier.pop()
            if node.name in seen:
                continue
            seen.add(node.name)
            if node is not stage.source and node is not stage.sink:
                prev = values.get(node.name)
                if prev is None or (value == 0.0):
                    values[node.name] = val if prev is None else min(prev, val)
            for edge in node.edges:
                if not conducting(edge):
                    continue
                nxt = edge.other(node)
                if nxt is stage.source or nxt is stage.sink:
                    continue
                nxt_val = val
                if (nmos_degrade and edge.kind is DeviceKind.NMOS):
                    vth = 0.55  # first-order; exact values come from DC
                    nxt_val = min(val, levels[edge.gate_input] - vth)
                frontier.append((nxt, nxt_val))

    sweep(stage.sink, 0.0, nmos_degrade=False)
    sweep(stage.source, vdd, nmos_degrade=True)

    return {node.name: values.get(node.name, default)
            for node in stage.internal_nodes}
