"""Waveform persistence and terminal rendering."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.spice.results import TransientResult


def save_csv_result(result: TransientResult, path: str,
                    nodes: Optional[Sequence[str]] = None) -> None:
    """Write a transient result to CSV (time column first)."""
    names = list(nodes) if nodes else result.node_names
    columns = [result.times] + [result.voltage(n) for n in names]
    header = ",".join(["time"] + names)
    np.savetxt(path, np.column_stack(columns), delimiter=",",
               header=header, comments="")


def load_csv_result(path: str, label: str = "csv") -> TransientResult:
    """Read a transient result written by :func:`save_csv_result`."""
    with open(path) as handle:
        header = handle.readline().strip()
    names = header.split(",")
    if not names or names[0] != "time":
        raise ValueError(f"{path}: expected a 'time' leading column")
    data = np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
    if data.shape[1] != len(names):
        raise ValueError(f"{path}: column count mismatch")
    voltages = {name: data[:, i + 1] for i, name in enumerate(names[1:])}
    return TransientResult(times=data[:, 0], voltages=voltages,
                           label=label)


def ascii_plot(result: TransientResult, nodes: Sequence[str],
               width: int = 72, height: int = 16,
               v_max: Optional[float] = None) -> str:
    """Render waveforms as an ASCII chart (one glyph per node).

    A quick terminal look at simulation output, in the spirit of the
    line-printer plots classic SPICE shipped with.
    """
    if not nodes:
        raise ValueError("need at least one node to plot")
    glyphs = "*o+x#@%&"
    t0, t1 = float(result.times[0]), float(result.times[-1])
    if v_max is None:
        v_max = max(float(np.max(result.voltage(n))) for n in nodes)
    v_min = min(0.0, *(float(np.min(result.voltage(n))) for n in nodes))
    span = max(v_max - v_min, 1e-12)

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    sample_times = np.linspace(t0, t1, width)
    for node_idx, name in enumerate(nodes):
        glyph = glyphs[node_idx % len(glyphs)]
        values = result.sample(name, sample_times)
        for col, value in enumerate(values):
            row = int(round((v_max - value) / span * (height - 1)))
            row = min(max(row, 0), height - 1)
            grid[row][col] = glyph

    lines = []
    for row_idx, row in enumerate(grid):
        level = v_max - span * row_idx / (height - 1)
        lines.append(f"{level:7.2f}V |" + "".join(row))
    axis = " " * 9 + "+" + "-" * width
    labels = (f"{' ':9} {t0 * 1e12:.0f} ps"
              + " " * max(width - 24, 1)
              + f"{t1 * 1e12:.0f} ps")
    legend = "  ".join(f"{glyphs[i % len(glyphs)]}={n}"
                       for i, n in enumerate(nodes))
    return "\n".join(lines + [axis, labels, "legend: " + legend])
