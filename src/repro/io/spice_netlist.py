"""SPICE-style netlist parsing (a practical flat subset).

Supported cards (case insensitive, ``*`` and ``$`` comments,
``+`` continuations):

* ``Mname drain gate source bulk model W=.. L=..`` — transistor; the
  model name decides the polarity (contains ``p`` -> PMOS).
* ``Rname a b value`` / ``Rname a b W=.. L=..`` — a wire segment; with
  explicit geometry the wire's RC comes from the technology, with a
  plain value it becomes a wire of equivalent resistance and the
  technology's default width.
* ``Cname node 0 value`` — a grounded load capacitance.
* ``.input a b c`` / ``.output x y`` — primary I/O markers
  (non-standard but common in timing decks).
* ``.end`` — optional terminator.

Engineering suffixes (f, p, n, u, m, k, meg, g, t) are understood.

The drain/source order of an ``M`` card maps to the structural
src/snk pair of :class:`~repro.circuit.stage.FlatTransistor`; bulk
terminals must be tied to the rails (checked).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.circuit.netlist import GND_NODE, VDD_NODE
from repro.circuit.stage import FlatNetlist
from repro.devices.technology import Technology

_SUFFIXES = {
    "t": 1e12, "g": 1e9, "meg": 1e6, "k": 1e3, "m": 1e-3,
    "u": 1e-6, "n": 1e-9, "p": 1e-12, "f": 1e-15,
}

_NUMBER_RE = re.compile(
    r"^([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)(meg|[tgkmunpf])?$",
    re.IGNORECASE)


class NetlistSyntaxError(ValueError):
    """A netlist line could not be parsed."""

    def __init__(self, message: str, line_number: int, line: str):
        super().__init__(f"line {line_number}: {message}: {line!r}")
        self.line_number = line_number
        self.line = line


def parse_value(token: str) -> float:
    """Parse a SPICE number with an optional engineering suffix."""
    match = _NUMBER_RE.match(token.strip())
    if not match:
        raise ValueError(f"not a SPICE number: {token!r}")
    base = float(match.group(1))
    suffix = (match.group(2) or "").lower()
    return base * _SUFFIXES.get(suffix, 1.0)


def _parse_params(tokens: List[str]) -> Dict[str, float]:
    params: Dict[str, float] = {}
    for token in tokens:
        if "=" not in token:
            raise ValueError(f"expected name=value, got {token!r}")
        name, value = token.split("=", 1)
        params[name.lower()] = parse_value(value)
    return params


def _canonical_net(name: str) -> str:
    lowered = name.lower()
    if lowered in ("0", "gnd", "vss", "ground"):
        return GND_NODE
    if lowered in ("vdd", "vcc", "pwr"):
        return VDD_NODE
    return name


def _join_continuations(text: str) -> List[str]:
    lines: List[str] = []
    for raw in text.splitlines():
        stripped = raw.split("$", 1)[0].rstrip()
        if not stripped or stripped.lstrip().startswith("*"):
            lines.append("")
            continue
        if stripped.lstrip().startswith("+") and any(lines):
            previous = max(i for i, l in enumerate(lines) if l)
            lines[previous] += " " + stripped.lstrip()[1:].strip()
            lines.append("")
        else:
            lines.append(stripped)
    return lines


def parse_spice_netlist(text: str, tech: Technology,
                        name: str = "netlist") -> FlatNetlist:
    """Parse a flat SPICE-style deck into a :class:`FlatNetlist`.

    Args:
        text: the netlist source.
        tech: technology used for wire geometry back-calculation.
        name: design name for the resulting netlist.

    Raises:
        NetlistSyntaxError: on any malformed card.
    """
    netlist = FlatNetlist(name, vdd=tech.vdd)
    for number, line in enumerate(_join_continuations(text), start=1):
        if not line:
            continue
        tokens = line.split()
        card = tokens[0]
        kind = card[0].upper()
        try:
            if kind == "M":
                _parse_mosfet(netlist, tokens, tech)
            elif kind == "R":
                _parse_resistor(netlist, tokens, tech)
            elif kind == "C":
                _parse_capacitor(netlist, tokens)
            elif kind == ".":
                _parse_directive(netlist, tokens)
            elif kind == "V":
                continue  # supply declarations are implicit
            else:
                raise ValueError(f"unsupported card {card!r}")
        except NetlistSyntaxError:
            raise
        except ValueError as exc:
            raise NetlistSyntaxError(str(exc), number, line) from exc
    return netlist


def _parse_mosfet(netlist: FlatNetlist, tokens: List[str],
                  tech: Technology) -> None:
    if len(tokens) < 6:
        raise ValueError("M card needs drain gate source bulk model")
    name = tokens[0]
    drain, gate, source, bulk = (_canonical_net(t) for t in tokens[1:5])
    model = tokens[5].lower()
    params = _parse_params(tokens[6:])
    w = params.get("w")
    l = params.get("l", tech.lmin)
    if w is None:
        raise ValueError("M card missing W=")
    polarity = "p" if "p" in model else "n"
    expected_bulk = VDD_NODE if polarity == "p" else GND_NODE
    if bulk != expected_bulk:
        raise ValueError(
            f"bulk of {name} must tie to {expected_bulk}, got {bulk}")
    if polarity == "p":
        netlist.add_pmos(name, gate=gate, src=drain, snk=source, w=w, l=l)
    else:
        netlist.add_nmos(name, gate=gate, src=drain, snk=source, w=w, l=l)


def _parse_resistor(netlist: FlatNetlist, tokens: List[str],
                    tech: Technology) -> None:
    if len(tokens) < 4:
        raise ValueError("R card needs two nodes and a value or geometry")
    name = tokens[0]
    a, b = _canonical_net(tokens[1]), _canonical_net(tokens[2])
    if "=" in tokens[3]:
        params = _parse_params(tokens[3:])
        w = params.get("w", tech.wmin)
        l = params.get("l")
        if l is None:
            raise ValueError("R card with geometry needs L=")
    else:
        resistance = parse_value(tokens[3])
        w = tech.wmin
        l = resistance * w / tech.wire.sheet_resistance
    netlist.add_wire(name, a=a, b=b, w=w, l=l)


def _parse_capacitor(netlist: FlatNetlist, tokens: List[str]) -> None:
    if len(tokens) < 4:
        raise ValueError("C card needs two nodes and a value")
    a, b = _canonical_net(tokens[1]), _canonical_net(tokens[2])
    value = parse_value(tokens[3])
    if b == GND_NODE:
        netlist.set_load(a, value)
    elif a == GND_NODE:
        netlist.set_load(b, value)
    else:
        raise ValueError("only grounded load capacitors are supported")


def _parse_directive(netlist: FlatNetlist, tokens: List[str]) -> None:
    directive = tokens[0].lower()
    if directive == ".input":
        for net in tokens[1:]:
            netlist.mark_input(_canonical_net(net))
    elif directive == ".output":
        for net in tokens[1:]:
            netlist.mark_output(_canonical_net(net))
    elif directive in (".end", ".ends"):
        return
    else:
        raise ValueError(f"unsupported directive {directive!r}")


def write_spice_netlist(netlist: FlatNetlist, tech: Technology) -> str:
    """Render a :class:`FlatNetlist` back into a SPICE-style deck."""
    lines = [f"* {netlist.name} (repro QWM reproduction)"]
    for t in netlist.transistors:
        model = "pmos" if t.polarity == "p" else "nmos"
        bulk = VDD_NODE if t.polarity == "p" else GND_NODE
        lines.append(
            f"{t.name} {t.src} {t.gate} {t.snk} {bulk} {model} "
            f"W={t.w:.4e} L={t.l:.4e}")
    for w in netlist.wires:
        lines.append(f"{w.name} {w.a} {w.b} W={w.w:.4e} L={w.l:.4e}")
    for net, cap in sorted(netlist.load_caps.items()):
        lines.append(f"Cload_{net} {net} 0 {cap:.4e}")
    if netlist.primary_inputs:
        lines.append(".input " + " ".join(sorted(netlist.primary_inputs)))
    if netlist.primary_outputs:
        lines.append(".output " + " ".join(sorted(netlist.primary_outputs)))
    lines.append(".end")
    return "\n".join(lines) + "\n"
