"""Netlist and waveform I/O.

* :mod:`repro.io.spice_netlist` — parse a SPICE-style transistor
  netlist (a practical subset: M/C/R cards, .subckt-free flat decks)
  into a :class:`~repro.circuit.stage.FlatNetlist`, and write one back.
* :mod:`repro.io.waveforms` — save/load transient results as CSV and
  render quick ASCII waveform plots for terminal inspection.
"""

from repro.io.spice_netlist import (
    NetlistSyntaxError,
    parse_spice_netlist,
    write_spice_netlist,
)
from repro.io.waveforms import (
    ascii_plot,
    load_csv_result,
    save_csv_result,
)

__all__ = [
    "NetlistSyntaxError",
    "parse_spice_netlist",
    "write_spice_netlist",
    "ascii_plot",
    "load_csv_result",
    "save_csv_result",
]
