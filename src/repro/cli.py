"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``sta [DECK.sp]``
    Parse a SPICE-style deck, extract logic stages, run QWM-driven
    longest-path STA, and print the arrival/critical-path reports.
    Without a deck a built-in ``--bits`` address decoder is timed.
    ``--required 500p`` adds slack; ``--corners`` re-times at the
    process corners.  ``--workers 4 --backend thread`` evaluates
    stages on a worker pool (identical arrivals, see
    :mod:`repro.analysis.parallel`); ``--cache`` / ``--cache-file``
    reuse solved arcs across isomorphic stages and runs.
    ``--no-escalation`` restores fail-fast arc solves (by default a
    failed solve degrades down the resilience ladder and the arrival
    is tagged with the absorbing rung, see
    :mod:`repro.resilience.ladder`).  ``--audit N`` shadow-SPICE
    audits N deterministically sampled arcs of the run and prints the
    per-arc error distribution with phase attribution
    (:mod:`repro.analysis.audit`); ``--history`` appends the errors
    to the accuracy ledger.

``simulate DECK.sp --input a=step:0:3.3:20p --node out``
    Transient-simulate a single-stage deck with the reference engine
    and print the measured delay plus an ASCII waveform plot.

``characterize``
    Characterize the device tables and print their statistics.

``lint DECK.sp`` / ``lint --code``
    Run the static pre-simulation checks (:mod:`repro.lint`) on a deck
    and print the diagnostics; exits 1 when errors are found.
    ``--format json`` emits a machine-readable report (top-level
    ``schema_version`` pins the shape), ``--models`` additionally
    characterizes and lints the device tables, ``--disable ERC005`` /
    ``--severity ERC007=error`` tune rules.  ``--code`` instead runs
    the determinism/concurrency rule pack over the repo's own sources
    (:mod:`repro.lint.rules_code`): findings recorded in
    ``.lint-baseline.json`` (auto-discovered, or ``--baseline PATH``)
    are suppressed with their justification, stale entries warn, and
    ``--sarif OUT.sarif`` writes a SARIF 2.1.0 log for CI annotation;
    ``--fail-on warning`` tightens the gate for CI.

``golden [--update]``
    Differential QWM-vs-SPICE suite: re-measure every stored golden
    case with QWM and compare against the stored reference-simulator
    numbers (exit 1 outside the tolerance bands).  ``--update``
    re-runs *both* engines over the slew x load grid and rewrites
    ``tests/golden/*.json``.  ``--flight-bundles DIR`` records the run
    with the flight recorder and writes a self-contained debug bundle
    under DIR for every band violation (see ``replay``).

``replay BUNDLE.json``
    Deterministically re-run the solve a flight bundle captured and
    compare the Newton iteration trajectories bit-for-bit against the
    recording (exit 1 on divergence).  ``--verbose`` prints every
    replayed iteration.

``report [DECK.sp]``
    Run STA under the flight recorder and print the per-run
    convergence report: fallback histogram, Newton iteration
    distribution, worst regions, cache attribution.  Without a deck a
    built-in ``--bits`` address decoder is timed.  ``--json`` emits
    the aggregated summary instead.

``chaos``
    Run the deterministic fault-injection scenario matrix
    (:mod:`repro.resilience.chaos`): every fault class — NaN table
    cells, forced Newton non-convergence, worker crashes/hangs,
    cache-store truncation, stage timeouts — is injected under a
    fixed ``--seed`` against a built-in decoder, and the report says
    which escalation rung absorbed each one (exit 1 if any scenario
    is not absorbed).  ``--scenario NAME`` narrows the matrix
    (repeatable, see ``--list``); ``--json`` emits the
    machine-readable report.

``bench-diff``
    Compare the last two entries of the benchmark history ledger
    (``benchmarks/results/BENCH_history.jsonl``, appended by the bench
    suite) and flag metrics that regressed by more than 10 % (exit 1;
    CI runs this report-only).

``accuracy-diff``
    The accuracy analogue: compare the last two entries of the
    accuracy history ledger (``benchmarks/results/
    ACCURACY_history.jsonl``, appended by ``golden --history``,
    ``sta --audit N --history`` and the ``BENCH_ACCURACY=1`` bench
    section) and flag cases whose delay error *grew* by more than
    1 pp or newly left the tolerance band (direction-aware: shrinking
    error never flags).  Names the worst-drifting case and its
    attributed solver phase; exit 1 on drift.

``stats [DECK.sp]``
    Evaluate one transition with QWM under full telemetry and print a
    cost-breakdown table: regions, Newton iterations per region, device
    evaluations, linear-solve counts, resilience-ladder escalations and
    the wall-time span tree.  Without a deck, ``--circuit nand3`` (and
    friends) runs a built-in stage.  ``--json`` emits the breakdown
    plus the raw metrics dump.

``profile [TARGET]``
    Run a workload under the phase-level cost-attribution profiler
    (:mod:`repro.obs.profile`) and print self-/cumulative-time tables
    plus the hottest ``(phase, stage)`` cells.  TARGET is a pytest
    file (``repro profile benchmarks/bench_headline.py``, run
    in-process), a single-stage deck, or empty for a built-in circuit.
    ``--speedscope FILE`` / ``--collapsed FILE`` export flame-graph
    formats.

Global flags: ``--trace FILE`` writes a Chrome ``trace_event`` file
(load at chrome://tracing or https://ui.perfetto.dev), ``--metrics
FILE`` writes the metrics-registry JSON dump (both enable telemetry
for any command), and ``--profile FILE`` enables the phase profiler
for any command and writes a speedscope profile on exit.  The three
compose freely; precedence is irrelevant because each drives its own
subsystem.  Telemetry and profiling are disabled by default and cost
one attribute check per instrumentation point when off; the profiler
adds < 5 % wall time when on (asserted in the benchmark suite).

Voltage/time values accept SPICE suffixes (``20p``, ``3.3``, ``50f``).
Source specs: ``name=step:v0:v1:t``, ``name=ramp:v0:v1:t0:trise``,
``name=dc:v``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from repro.analysis import IncrementalTimer
from repro.analysis.report import (
    arrival_report,
    corner_report,
    critical_path_report,
    design_summary,
)
from repro.circuit import extract_stages
from repro.devices import CMOSP35, TableModelLibrary
from repro.devices.corners import all_corners
from repro.io import ascii_plot, parse_spice_netlist
from repro.io.spice_netlist import parse_value
from repro.obs import ObsConfig, configure, disable, format_span_tree, telemetry
from repro.resilience.ladder import QUALITY_ORDER, QUALITY_RANK
from repro.obs.profile import (
    ProfileConfig,
    configure_profile,
    disable_profile,
    export_speedscope,
    profiler,
    render_profile,
    summarize_profile,
    to_collapsed,
)
from repro.spice import (
    ConstantSource,
    RampSource,
    Source,
    StepSource,
    TransientOptions,
    TransientSimulator,
)


#: Default accuracy-history ledger, next to the bench ledger.
ACCURACY_HISTORY_PATH = os.path.join("benchmarks", "results",
                                     "ACCURACY_history.jsonl")


def _git_sha() -> str:
    """HEAD commit for ledger entries (``unknown`` outside a repo)."""
    import subprocess

    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def parse_source_spec(spec: str) -> (str, Source):
    """Parse ``name=kind:args`` into an input name and a Source."""
    if "=" not in spec:
        raise ValueError(f"expected name=spec, got {spec!r}")
    name, body = spec.split("=", 1)
    parts = body.split(":")
    kind = parts[0].lower()
    args = [parse_value(p) for p in parts[1:]]
    if kind == "dc" and len(args) == 1:
        return name, ConstantSource(args[0])
    if kind == "step" and len(args) == 3:
        return name, StepSource(args[0], args[1], args[2])
    if kind == "ramp" and len(args) == 4:
        return name, RampSource(args[0], args[1], args[2], args[3])
    raise ValueError(f"bad source spec {spec!r} (kinds: dc:v, "
                     "step:v0:v1:t, ramp:v0:v1:t0:trise)")


def _cmd_sta(args: argparse.Namespace) -> int:
    from repro.analysis.parallel import ExecutionConfig, StageResultCache

    tech = CMOSP35
    if args.deck:
        with open(args.deck) as handle:
            text = handle.read()
        deck_name = args.deck
    else:
        text = None
        deck_name = f"decoder{args.bits} (built-in)"
    required = parse_value(args.required) if args.required else None
    audit = args.audit or 0

    parallel = (args.workers > 1 or args.backend != "serial"
                or args.cache or args.cache_file
                or args.deadline is not None or args.journal)
    execution = None
    cache = None
    if parallel:
        execution = ExecutionConfig(
            workers=args.workers, backend=args.backend,
            cache=bool(args.cache or args.cache_file),
            cache_path=args.cache_file,
            deadline=args.deadline, grace=args.grace,
            journal_path=args.journal, resume=args.resume)
        if execution.wants_cache:
            # Built here (not inside the engine) so corner re-timing
            # shares one cache and the hit/miss totals can be printed.
            cache = StageResultCache(max_entries=execution.cache_size,
                                     path=args.cache_file)

    resilience = None
    if args.no_escalation:
        from repro.resilience.ladder import EscalationPolicy

        resilience = EscalationPolicy(enabled=False)

    def run(technology, with_audit=False):
        if text is not None:
            netlist = parse_spice_netlist(text, technology,
                                          name=args.deck)
        else:
            from repro.circuit import builders

            netlist = builders.decoder_netlist(technology,
                                               bits=args.bits)
        graph = extract_stages(netlist, tech=technology)
        # An audited run needs the full analyzer (the auditor re-solves
        # sampled arcs through stage_arc and the shadow-SPICE engine).
        if parallel or resilience is not None or with_audit:
            from repro.analysis import StaticTimingAnalyzer

            analyzer = StaticTimingAnalyzer(technology,
                                            execution=execution,
                                            cache=cache,
                                            resilience=resilience)
            if with_audit:
                from repro.analysis.audit import analyze_with_audit

                result, report = analyze_with_audit(
                    analyzer, graph, audit, seed=args.audit_seed,
                    band_pct=args.audit_band)
                return graph, result, report
            return graph, analyzer.analyze(graph), None
        timer = IncrementalTimer(technology, graph)
        return graph, timer.analyze(), None

    graph, result, audit_report = run(tech, with_audit=audit > 0)
    print(design_summary(graph, result))
    print()
    print(critical_path_report(result, required=required))
    print()
    print(arrival_report(result, limit=args.limit))
    if audit_report is not None:
        print()
        print(audit_report.render())
        if args.history:
            from repro.obs.accuracy import (append_history_entry,
                                            history_entry)

            entry = history_entry(
                "sta-audit", audit_report.history_cases(),
                git_sha=_git_sha(),
                extra={"design": deck_name,
                       "seed": args.audit_seed})
            path = append_history_entry(
                entry, args.history_file or ACCURACY_HISTORY_PATH)
            print(f"appended audit entry to {path}", file=sys.stderr)

    if args.corners:
        delays = {}
        for name, corner_tech in all_corners(tech).items():
            _, corner_result, _ = run(corner_tech)
            if corner_result.worst is not None:
                delays[name] = corner_result.worst.time
        print()
        print(corner_report(delays))
    if cache is not None:
        print()
        print(f"stage cache: {cache.hits} hits / {cache.misses} misses"
              f" ({len(cache)} entries)")
        if args.cache_file:
            print(f"stage cache stored at {args.cache_file}")
    if required is not None and result.worst is not None \
            and result.worst.time > required:
        return 1
    if args.fail_on_degraded is not None:
        threshold = QUALITY_RANK[args.fail_on_degraded]
        offenders = [arrival
                     for arrival in result.arrivals.values()
                     if arrival.quality is not None
                     and QUALITY_RANK.get(arrival.quality, 0)
                     >= threshold]
        if offenders:
            print(f"fail-on-degraded: {len(offenders)} arrival(s) at "
                  f"or below the {args.fail_on_degraded!r} rung",
                  file=sys.stderr)
            return 3
        if getattr(result, "partial", False):
            print("fail-on-degraded: run is partial (interrupted "
                  "before every stage completed)", file=sys.stderr)
            return 3
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    tech = CMOSP35
    with open(args.deck) as handle:
        text = handle.read()
    netlist = parse_spice_netlist(text, tech, name=args.deck)
    graph = extract_stages(netlist, tech=tech)
    if len(graph.stages) != 1:
        print(f"error: simulate needs a single-stage deck "
              f"(found {len(graph.stages)} stages)", file=sys.stderr)
        return 2
    stage = graph.stages[0]

    sources: Dict[str, Source] = {}
    for spec in args.input or []:
        name, source = parse_source_spec(spec)
        sources[name] = source
    for name in stage.inputs:
        sources.setdefault(name, ConstantSource(0.0))

    options = TransientOptions(t_stop=parse_value(args.t_stop),
                               dt=parse_value(args.dt))
    result = TransientSimulator(stage, tech, options).run(sources)

    nodes = args.node or [n.name for n in stage.outputs] \
        or result.node_names[:1]
    for node in nodes:
        delay = result.delay_50(node, tech.vdd)
        slew_fall = result.slew(node, tech.vdd, "fall")
        slew_rise = result.slew(node, tech.vdd, "rise")
        slews = []
        if slew_fall:
            slews.append(f"fall slew {slew_fall * 1e12:.1f} ps")
        if slew_rise:
            slews.append(f"rise slew {slew_rise * 1e12:.1f} ps")
        delay_text = (f"50% at {delay * 1e12:.1f} ps"
                      if delay is not None else "no 50% crossing")
        print(f"{node}: {delay_text}" + ("; " + ", ".join(slews)
                                         if slews else ""))
    if not args.no_plot:
        print()
        print(ascii_plot(result, nodes, width=args.width))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    tech = CMOSP35
    library = TableModelLibrary(tech, grid_step=parse_value(args.grid_step))
    for polarity in args.polarity:
        table = library.get(polarity)
        grid = table.grid
        print(f"{polarity}-table: {grid.vs_values.size}x"
              f"{grid.vg_values.size} grid points, "
              f"{grid.n_parameters} parameters "
              f"(w_ref={grid.w_ref * 1e6:.2f} um, "
              f"l_ref={grid.l_ref * 1e6:.2f} um)")
        ion = table.iv(grid.w_ref, grid.l_ref,
                       tech.vdd if polarity == "n" else 0.0,
                       tech.vdd, 0.0)
        print(f"  Ion({polarity}) = {abs(ion) * 1e3:.3f} mA, "
              f"vth0 = {table.threshold(tech.vdd, 0.0, 0.0):.3f} V")
    return 0


def _parse_severity_overrides(specs) -> dict:
    from repro.lint import Severity

    overrides = {}
    for spec in specs or []:
        if "=" not in spec:
            raise ValueError(f"expected RULE=LEVEL, got {spec!r}")
        rule, level = spec.split("=", 1)
        overrides[rule] = Severity.parse(level)
    return overrides


def _cmd_lint_code(args: argparse.Namespace) -> int:
    """``repro lint --code``: self-analysis with baseline gating."""
    from repro.lint import (Baseline, default_scan_root,
                            discover_baseline, lint_code, to_sarif)

    root = args.root or default_scan_root()
    report = lint_code(
        root, disable=tuple(args.disable or ()),
        severity_overrides=_parse_severity_overrides(args.severity))

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        baseline_path = discover_baseline(os.getcwd()) \
            or discover_baseline(root)
    baseline = (Baseline.load(baseline_path) if baseline_path
                else Baseline())
    result = baseline.apply(report)
    gated = result.report

    if args.sarif:
        sarif = to_sarif(gated, suppressed=result.suppressed)
        with open(args.sarif, "w", encoding="utf-8") as handle:
            json.dump(sarif, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.format == "json":
        data = gated.to_json()
        data["baseline"] = {
            "path": baseline_path,
            "suppressed": len(result.suppressed),
            "stale": len(result.stale),
        }
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(f"code lint over {root}")
        print(gated.format_text())
        if baseline_path:
            print(f"baseline {baseline_path}: "
                  f"{len(result.suppressed)} finding(s) suppressed, "
                  f"{len(result.stale)} stale entr(y/ies)")
    failing = list(gated.errors)
    if args.fail_on == "warning":
        failing += gated.warnings
    return 1 if failing else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.core.qwm import QWMOptions
    from repro.lint import LintContext, LintRunner

    if args.code:
        return _cmd_lint_code(args)
    if args.deck is None:
        raise ValueError("a DECK is required unless --code is given")

    tech = CMOSP35
    with open(args.deck) as handle:
        text = handle.read()
    netlist = parse_spice_netlist(text, tech,
                                  name=os.path.basename(args.deck))

    ctx = LintContext.from_netlist(
        netlist, tech=tech, options=QWMOptions(),
        grid_step=parse_value(args.grid_step))
    if args.models:
        library = TableModelLibrary(tech,
                                    grid_step=parse_value(args.grid_step))
        ctx.tables = [library.get("n"), library.get("p")]
        ctx.corners = all_corners(tech)

    runner = LintRunner(
        disable=tuple(args.disable or ()),
        severity_overrides=_parse_severity_overrides(args.severity))
    report = runner.run(ctx)
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.format_text())
    return 1 if report.errors else 0


#: Built-in circuits for ``repro stats`` (name -> stage factory).
_STATS_CIRCUITS = {
    "inverter": lambda b, tech: b.inverter(tech),
    "nand2": lambda b, tech: b.nand_gate(tech, 2),
    "nand3": lambda b, tech: b.nand_gate(tech, 3),
    "nand4": lambda b, tech: b.nand_gate(tech, 4),
    "nor2": lambda b, tech: b.nor_gate(tech, 2),
    "nor3": lambda b, tech: b.nor_gate(tech, 3),
    "aoi21": lambda b, tech: b.aoi21_gate(tech),
    "oai21": lambda b, tech: b.oai21_gate(tech),
}


def _stats_stage(args: argparse.Namespace, tech):
    """Resolve the stage ``repro stats`` should evaluate."""
    if args.deck:
        with open(args.deck) as handle:
            text = handle.read()
        netlist = parse_spice_netlist(text, tech, name=args.deck)
        graph = extract_stages(netlist, tech=tech)
        if len(graph.stages) != 1:
            raise ValueError(
                f"stats needs a single-stage deck "
                f"(found {len(graph.stages)} stages)")
        return graph.stages[0], os.path.basename(args.deck)
    from repro.circuit import builders

    return _STATS_CIRCUITS[args.circuit](builders, tech), args.circuit


def _counter_total(registry, name: str, **labels) -> float:
    metric = registry.get(name)
    if metric is None:
        return 0.0
    return metric.value(**labels) if labels else metric.total()


def _evaluate_single_arc(args: argparse.Namespace):
    """Solve the one transition ``stats``/``profile`` target describes.

    Returns ``(solution, circuit_name, output, switching_input)``.
    """
    from repro.core import WaveformEvaluator

    tech = CMOSP35
    stage, circuit_name = _stats_stage(args, tech)
    outputs = [n.name for n in stage.outputs]
    output = args.output or (outputs[0] if outputs else None)
    if output is None:
        raise ValueError("stage has no output node; pass --output")
    inputs_avail = list(stage.inputs)
    switching = args.input or (inputs_avail[0] if inputs_avail else None)
    if switching is None:
        raise ValueError("stage has no inputs to switch")
    if switching not in inputs_avail:
        raise ValueError(f"unknown input {switching!r} "
                         f"(stage inputs: {inputs_avail})")

    vdd = stage.vdd
    rising_in = args.direction == "fall"
    v0, v1 = (0.0, vdd) if rising_in else (vdd, 0.0)
    held = vdd if args.direction == "fall" else 0.0
    sources: Dict[str, Source] = {switching: StepSource(v0, v1, 0.0)}
    for name in inputs_avail:
        sources.setdefault(name, ConstantSource(held))

    library = TableModelLibrary(tech,
                                grid_step=parse_value(args.grid_step))
    evaluator = WaveformEvaluator(tech, library=library)
    solution = evaluator.evaluate(stage, output=output,
                                  direction=args.direction,
                                  inputs=sources)
    return solution, circuit_name, output, switching


def _stats_audit_record(args: argparse.Namespace, output: str,
                        switching: str) -> Dict:
    """Shadow-SPICE audit of the single arc ``stats`` evaluated."""
    from repro.analysis import StaticTimingAnalyzer
    from repro.analysis.audit import ArcSample, audit_arc
    from repro.analysis.parallel import canonical_form_for

    tech = CMOSP35
    stage, _ = _stats_stage(args, tech)
    library = TableModelLibrary(tech,
                                grid_step=parse_value(args.grid_step))
    analyzer = StaticTimingAnalyzer(tech, library=library)
    sample = ArcSample(
        stage=stage.name, output=output, direction=args.direction,
        switching_input=switching, input_slew=None,
        fingerprint=canonical_form_for(stage, analyzer).fingerprint)
    return audit_arc(analyzer, stage, sample)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.resilience.ladder import QUALITY_ORDER

    solution, circuit_name, output, switching = \
        _evaluate_single_arc(args)
    audit_record = (_stats_audit_record(args, output, switching)
                    if args.audit else None)
    bundle = telemetry()
    registry = bundle.metrics
    stats = solution.stats
    delay = solution.delay()
    solves = {
        "sherman_morrison":
            _counter_total(registry, "linalg.solve.sherman_morrison"),
        "dense_lu": _counter_total(registry, "linalg.solve.dense_lu"),
    }
    failures = _counter_total(registry, "newton.convergence.failures")
    cache = {
        "miss": _counter_total(registry, "device.table.cache",
                               result="miss"),
        "hit": _counter_total(registry, "device.table.cache",
                              result="hit"),
    }
    # Resilience-ladder activity: without these a degraded run (rungs
    # burning wall time on retries/SPICE) under-reports where time went.
    escalations = {rung: _counter_total(registry,
                                        "resilience.escalations",
                                        rung=rung)
                   for rung in QUALITY_ORDER}
    arc_quality = {quality: _counter_total(registry,
                                           "resilience.arc.quality",
                                           quality=quality)
                   for quality in QUALITY_ORDER}

    if args.json:
        document = {
            "circuit": circuit_name,
            "output": output,
            "direction": args.direction,
            "switching_input": switching,
            "delay_seconds": delay,
            "stats": {
                "regions": stats.steps,
                "newton_iterations": stats.newton_iterations,
                "device_evaluations": stats.device_evaluations,
                "wall_time_seconds": stats.wall_time,
            },
            "linear_solves": solves,
            "convergence_failures": failures,
            "characterization_cache": cache,
            "resilience": {
                "escalations": escalations,
                "arc_quality": arc_quality,
            },
            "metrics": registry.to_json(),
            "trace": bundle.tracer.stats(),
        }
        if audit_record is not None:
            document["accuracy"] = audit_record
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0

    per_region = (stats.newton_iterations / stats.steps
                  if stats.steps else 0.0)
    title = (f"QWM cost breakdown: {circuit_name} {output} "
             f"{args.direction} (switching {switching})")
    rule = "-" * max(len(title), 50)
    delay_text = (f"{delay * 1e12:.2f} ps" if delay is not None
                  else "no crossing")
    print(title)
    print(rule)
    print(f"{'regions solved':<26}{stats.steps:>10}")
    print(f"{'newton iterations':<26}{stats.newton_iterations:>10}"
          f"   ({per_region:.1f} / region)")
    print(f"{'device evaluations':<26}{stats.device_evaluations:>10}")
    print(f"{'linear solves':<26}"
          f"{int(solves['sherman_morrison']):>10} sherman-morrison"
          f" / {int(solves['dense_lu'])} dense-lu")
    print(f"{'convergence failures':<26}{int(failures):>10}")
    print(f"{'characterization cache':<26}"
          f"{int(cache['miss']):>10} miss / {int(cache['hit'])} hit")
    total_esc = int(sum(escalations.values()))
    esc_text = " / ".join(f"{int(count)} {rung}"
                          for rung, count in escalations.items())
    print(f"{'ladder escalations':<26}{total_esc:>10}   ({esc_text})")
    if any(arc_quality.values()):
        quality_text = " / ".join(f"{int(count)} {quality}"
                                  for quality, count
                                  in arc_quality.items() if count)
        print(f"{'arc quality':<26}{'':>10}   ({quality_text})")
    print(f"{'delay (50%)':<26}{delay_text:>10}")
    print(f"{'solver wall time':<26}"
          f"{stats.wall_time * 1e3:>10.1f} ms")
    if audit_record is not None:
        err = audit_record["delay_error_pct"]
        err_text = (f"{err:.2f}%" if err is not None
                    else audit_record["status"])
        dominant = audit_record["attribution"].get("dominant") or "-"
        print(f"{'shadow-SPICE error':<26}{err_text:>10}   "
              f"(attributed to {dominant})")
    print()
    print("wall-time tree")
    print(rule)
    print(format_span_tree(bundle.tracer.records(),
                           dropped=bundle.tracer.stats()["dropped"]))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run a workload under the phase profiler and report attribution.

    The target is either a pytest file (benchmarks/bench_*.py — run
    in-process so the profiler ledger survives the workload's own
    telemetry lifecycle), a single-stage SPICE deck, or empty (a
    built-in circuit via ``--circuit``).
    """
    target = args.target
    prof = configure_profile(ProfileConfig(enabled=True,
                                           max_cells=args.max_cells))
    if target is not None and target.endswith(".py"):
        if not os.path.exists(target):
            raise FileNotFoundError(target)
        import pytest

        workload = target
        code = pytest.main([target, "-q", "--no-header"])
        if code not in (0, 5):  # 5 = no tests collected (plain script)
            print(f"profile: workload exited with code {code}",
                  file=sys.stderr)
    else:
        args.deck = target
        workload = None
        for _ in range(max(1, args.repeat)):
            _, workload, _, _ = _evaluate_single_arc(args)

    ledger = prof.to_json()
    summary = summarize_profile(ledger)
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(to_collapsed(ledger))
        print(f"profile: wrote collapsed stacks to {args.collapsed}",
              file=sys.stderr)
    if args.speedscope:
        export_speedscope(ledger, args.speedscope,
                          name=f"repro profile {workload}")
        print(f"profile: wrote speedscope profile to {args.speedscope}",
              file=sys.stderr)
    if args.json:
        print(json.dumps({"workload": workload, "ledger": ledger,
                          "summary": summary},
                         indent=2, sort_keys=True))
    else:
        print(f"workload: {workload}")
        print(render_profile(summary, top=args.top))
    return 0


def _cmd_golden(args: argparse.Namespace) -> int:
    from repro.analysis import golden

    tech = CMOSP35
    directory = args.dir or golden.default_golden_dir()
    if args.update:
        print(f"regenerating golden records (QWM + reference SPICE "
              f"over {len(golden.golden_cases())} cases)...")
        records = golden.generate(
            tech, progress=lambda r: print(f"  {r.case.name}: "
                                           f"delta {r.delay_error_pct:.2f}%"))
        paths = golden.save(records, directory)
        over = [r for r in records
                if r.delay_error_pct > golden.DELAY_TOLERANCE_PCT]
        for record in over:
            print(f"warning: {record.case.name} generated "
                  f"{record.delay_error_pct:.2f}% over the "
                  f"{golden.DELAY_TOLERANCE_PCT:.1f}% band",
                  file=sys.stderr)
        print(f"wrote {len(records)} cases to {len(paths)} files "
              f"under {directory}")
        return 1 if over else 0
    records = golden.load(directory)
    if args.flight_bundles:
        from repro.obs import (FlightConfig, configure_flight,
                               disable_flight)

        recorder = configure_flight(FlightConfig(
            enabled=True, capture_bundles=True,
            bundle_dir=args.flight_bundles))
        try:
            diffs = golden.check(records, tech)
        finally:
            written = recorder.stats()["bundles"]
            disable_flight()
        if written:
            print(f"wrote {written} debug bundle(s) under "
                  f"{args.flight_bundles} (inspect with `repro replay`)",
                  file=sys.stderr)
    else:
        diffs = golden.check(records, tech)
    print(golden.format_report(diffs))
    if args.history:
        from repro.obs.accuracy import (append_history_entry,
                                        history_entry)

        entry = history_entry("golden", golden.history_cases(diffs),
                              git_sha=_git_sha())
        path = append_history_entry(
            entry, args.history_file or ACCURACY_HISTORY_PATH)
        print(f"appended golden entry to {path}", file=sys.stderr)
    return 0 if all(d.ok for d in diffs) else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.obs.bundles import load_bundle, replay_bundle

    bundle = load_bundle(args.bundle)
    print(f"bundle: {args.bundle}")
    print(f"reason: {bundle.get('reason')}   "
          f"stage: {bundle['stage']['name']}   "
          f"arc: {bundle['output']} {bundle['direction']}")
    extra = bundle.get("extra") or {}
    if extra:
        context = "  ".join(f"{k}={v}" for k, v in sorted(extra.items()))
        print(f"context: {context}")
    result = replay_bundle(bundle, verbose=args.verbose)
    print(result.render())
    return 0 if result.identical else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import StaticTimingAnalyzer
    from repro.analysis.parallel import ExecutionConfig, StageResultCache
    from repro.obs import (FlightConfig, configure_flight, disable_flight,
                           render_report, summarize_ledger)

    tech = CMOSP35
    if args.deck:
        with open(args.deck) as handle:
            text = handle.read()
        netlist = parse_spice_netlist(text, tech, name=args.deck)
        design = os.path.basename(args.deck)
    else:
        from repro.circuit import builders

        netlist = builders.decoder_netlist(tech, bits=args.bits)
        design = f"decoder{args.bits} (built-in)"
    graph = extract_stages(netlist, tech=tech)

    execution = None
    cache = None
    if args.cache or args.workers > 1:
        execution = ExecutionConfig(
            workers=args.workers,
            backend="thread" if args.workers > 1 else "serial",
            cache=args.cache)
        if args.cache:
            cache = StageResultCache()

    recorder = configure_flight(FlightConfig(
        enabled=True, event_limit=args.event_limit))
    audit_report = None
    try:
        analyzer = StaticTimingAnalyzer(tech, execution=execution,
                                        cache=cache)
        if args.audit:
            from repro.analysis.audit import analyze_with_audit

            result, audit_report = analyze_with_audit(
                analyzer, graph, args.audit, seed=args.audit_seed)
        else:
            result = analyzer.analyze(graph)
        summary = summarize_ledger(recorder)
    finally:
        disable_flight()

    worst = result.worst
    if args.json:
        document = {
            "design": design,
            "stages": len(graph.stages),
            "worst_arrival_seconds": (worst.time if worst else None),
            "worst_event": ([worst.net, worst.direction]
                            if worst else None),
            "summary": summary,
        }
        if audit_report is not None:
            document["accuracy"] = audit_report.to_json()
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(f"design: {design}   stages: {len(graph.stages)}")
    if worst is not None:
        print(f"worst arrival: {worst.time * 1e12:.2f} ps "
              f"({worst.net} {worst.direction})")
    print()
    print(render_report(summary))
    if audit_report is not None:
        print()
        print(audit_report.render())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience.chaos import (default_scenarios, format_report,
                                        run_matrix)

    if args.list:
        for scenario in default_scenarios("<target>"):
            print(f"{scenario.name:<18} {scenario.description}")
        return 0
    report = run_matrix(seed=args.seed, bits=args.bits,
                        only=args.scenario or None)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(format_report(report))
    return 0 if report.absorbed_all else 1


#: Relative change beyond which ``bench-diff`` flags a regression.
BENCH_DIFF_THRESHOLD_PCT = 10.0

#: Metric-name fragments where smaller values are better.
_LOWER_IS_BETTER = ("error", "seconds", "time", "failures")


def _bench_regressions(prev: Dict, last: Dict,
                       threshold_pct: float) -> List[Dict]:
    """Metrics of ``last`` that regressed vs ``prev`` beyond the band."""
    regressions = []
    prev_metrics = prev.get("metrics", {})
    for name, current in last.get("metrics", {}).items():
        baseline = prev_metrics.get(name)
        if baseline is None or baseline == 0:
            continue
        change_pct = 100.0 * (current - baseline) / abs(baseline)
        lower_better = any(frag in name for frag in _LOWER_IS_BETTER)
        worse = change_pct > threshold_pct if lower_better \
            else change_pct < -threshold_pct
        regressions.append({
            "metric": name, "baseline": baseline, "current": current,
            "change_pct": change_pct, "regression": worse,
        })
    return regressions


def _phase_attribution(prev: Dict, last: Dict) -> Optional[Dict]:
    """The phase whose self time grew the most between two entries.

    Both history entries must carry a ``phases`` section (frame label
    -> exclusive seconds, written by the bench suite when profiling is
    on); returns None when either lacks one or nothing grew.
    """
    prev_phases = prev.get("phases") or {}
    last_phases = last.get("phases") or {}
    if not prev_phases or not last_phases:
        return None
    best = None
    for frame in sorted(last_phases):
        delta = last_phases[frame] - prev_phases.get(frame, 0.0)
        if best is None or delta > best[1]:
            best = (frame, delta)
    if best is None or best[1] <= 0.0:
        return None
    frame, delta = best
    baseline = prev_phases.get(frame, 0.0)
    change_pct = (100.0 * delta / baseline) if baseline > 0 else None
    return {"phase": frame, "delta_seconds": delta,
            "change_pct": change_pct}


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    history = args.history or os.path.join(
        "benchmarks", "results", "BENCH_history.jsonl")
    if not os.path.exists(history):
        print(f"bench-diff: no history at {history} (run the benchmark "
              f"suite first)", file=sys.stderr)
        return 0
    entries = []
    with open(history) as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    if args.run:
        entries = [e for e in entries if e.get("run") == args.run]
    if len(entries) < 2:
        print(f"bench-diff: {len(entries)} history entr"
              f"{'y' if len(entries) == 1 else 'ies'} in {history}; "
              "need two to compare")
        return 0
    prev, last = entries[-2], entries[-1]
    if prev.get("smoke") != last.get("smoke"):
        print("bench-diff: note: comparing a smoke run against a full "
              "run — absolute numbers are not comparable",
              file=sys.stderr)
    rows = _bench_regressions(prev, last, args.threshold)
    attribution = _phase_attribution(prev, last)
    print(f"bench-diff: {prev.get('git_sha', '?')[:12]} -> "
          f"{last.get('git_sha', '?')[:12]} "
          f"(run={last.get('run', '?')}, band ±{args.threshold:.0f}%)")
    time_like = ("seconds", "time")
    for row in rows:
        marker = "REGRESSION" if row["regression"] else "ok"
        print(f"  {row['metric']:<28} {row['baseline']:>12.4g} -> "
              f"{row['current']:>12.4g}  {row['change_pct']:>+8.2f}%  "
              f"{marker}")
        if (row["regression"] and attribution is not None
                and any(frag in row["metric"] for frag in time_like)):
            pct = attribution["change_pct"]
            growth = (f"+{pct:.0f}% self-time" if pct is not None
                      else f"+{attribution['delta_seconds'] * 1e3:.1f}ms "
                           "self-time (new phase)")
            print(f"      regression attributed to: "
                  f"{attribution['phase']}, {growth}")
    if attribution is not None:
        pct = attribution["change_pct"]
        growth = (f"+{pct:.0f}%" if pct is not None else "new")
        print(f"  phase attribution: largest self-time growth in "
              f"{attribution['phase']} ({growth})")
    flagged = [r for r in rows if r["regression"]]
    if flagged:
        print(f"{len(flagged)} metric(s) regressed beyond "
              f"{args.threshold:.0f}%")
        return 1
    print("no regressions beyond the band")
    return 0


#: Delay-error growth (percentage points) beyond which accuracy-diff
#: flags a case.  Tighter than bench-diff's 10 % relative band because
#: the golden errors are small (1-8 %) and drift of one point matters.
ACCURACY_DIFF_THRESHOLD_PP = 1.0


def _cmd_accuracy_diff(args: argparse.Namespace) -> int:
    from repro.obs.accuracy import (accuracy_regressions,
                                    load_history_entries,
                                    worst_regression)

    history = args.history or ACCURACY_HISTORY_PATH
    entries = load_history_entries(history)
    if not entries:
        print(f"accuracy-diff: no history at {history} (run "
              f"`repro golden --history` or `repro sta --audit N "
              f"--history` first)", file=sys.stderr)
        return 0
    # Entries from different sources (golden suite, audits, bench)
    # measure different cases; compare within the latest entry's run
    # unless --run narrows it explicitly.
    run = args.run or entries[-1].get("run")
    entries = [e for e in entries if e.get("run") == run]
    if len(entries) < 2:
        print(f"accuracy-diff: {len(entries)} history entr"
              f"{'y' if len(entries) == 1 else 'ies'} for run "
              f"{run!r} in {history}; need two to compare")
        return 0
    prev, last = entries[-2], entries[-1]
    rows = accuracy_regressions(prev, last, args.threshold)
    print(f"accuracy-diff: {prev.get('git_sha', '?')[:12]} -> "
          f"{last.get('git_sha', '?')[:12]} "
          f"(run={run}, band +{args.threshold:.1f}pp)")
    for row in rows:
        marker = "DRIFT" if row["regression"] else "ok"
        attribution = row["attribution"] or "-"
        print(f"  {row['case']:<40} "
              f"{row['baseline_error_pct']:>7.2f}% -> "
              f"{row['current_error_pct']:>7.2f}%  "
              f"{row['drift_pp']:>+7.2f}pp  {marker:<6} {attribution}"
              + ("  [left band]" if row["left_band"] else ""))
    if not rows:
        print("  (no cases shared between the two entries)")
    flagged = [r for r in rows if r["regression"]]
    if flagged:
        worst = worst_regression(rows)
        print(f"{len(flagged)} case(s) drifted beyond "
              f"{args.threshold:.1f}pp; worst: {worst['case']} "
              f"({worst['drift_pp']:+.2f}pp, attributed to "
              f"{worst['attribution'] or 'unknown'})")
        return 1
    print("no accuracy drift beyond the band")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transistor-level STA by piecewise quadratic "
                    "waveform matching (Wang & Zhu, DATE 2003)")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="enable telemetry and write a Chrome "
                             "trace_event file")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="enable telemetry and write the metrics "
                             "JSON dump")
    parser.add_argument("--profile", metavar="FILE", default=None,
                        help="enable the phase profiler and write a "
                             "speedscope JSON profile on exit "
                             "(composes with --trace/--metrics; "
                             "measured overhead < 5%%, exactly zero "
                             "when off)")
    sub = parser.add_subparsers(dest="command", required=True)

    sta = sub.add_parser("sta", help="longest-path STA over a deck")
    sta.add_argument("deck", nargs="?", default=None,
                     help="optional deck (default: a built-in address "
                          "decoder, see --bits)")
    sta.add_argument("--bits", type=int, default=3,
                     help="address bits of the built-in decoder when "
                          "no deck is given")
    sta.add_argument("--required", default=None,
                     help="required arrival time (e.g. 500p)")
    sta.add_argument("--corners", action="store_true",
                     help="also time the process corners")
    sta.add_argument("--limit", type=int, default=20,
                     help="arrival-report row limit")
    sta.add_argument("--workers", type=int, default=1,
                     help="worker-pool size for stage evaluation "
                          "(arrivals are identical to serial)")
    sta.add_argument("--backend", default="serial",
                     choices=["serial", "thread", "process"],
                     help="execution backend for --workers > 1")
    sta.add_argument("--cache", action="store_true",
                     help="enable the in-memory stage-result cache "
                          "(isomorphic stages share solved arcs)")
    sta.add_argument("--cache-file", metavar="FILE", default=None,
                     help="persist the stage cache to a JSON store "
                          "(implies --cache; loaded before the run)")
    sta.add_argument("--no-escalation", action="store_true",
                     help="disable the resilience ladder: a failed "
                          "arc solve raises instead of degrading to "
                          "retry/SPICE/bound rungs")
    sta.add_argument("--deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="run-level wall-clock budget: the scheduler "
                          "clamps the escalation ladder per wave "
                          "(full -> no-spice -> bound) so the run "
                          "finishes inside deadline+grace with honest "
                          "quality tags")
    sta.add_argument("--grace", type=float, default=None,
                     metavar="SECONDS",
                     help="explicit grace allowance for the wave in "
                          "flight at the deadline (default: "
                          "max(0.5, 0.1*deadline))")
    sta.add_argument("--journal", metavar="FILE", default=None,
                     help="crash-safe run journal (JSONL, format "
                          "repro-run-journal/1): each completed wave "
                          "checkpoints atomically; combine with "
                          "--resume to continue a killed run")
    sta.add_argument("--resume", action="store_true",
                     help="replay completed waves from --journal "
                          "(fingerprint-validated) and continue; "
                          "arrivals are bit-identical to an "
                          "uninterrupted run")
    sta.add_argument("--fail-on-degraded", nargs="?",
                     const="qwm-retry", default=None,
                     metavar="QUALITY",
                     choices=list(QUALITY_ORDER),
                     help="exit 3 when any arrival's quality is at or "
                          "below the named rung (default threshold: "
                          "qwm-retry), or when the run is partial — "
                          "the CI gate for deadline/journal runs")
    sta.add_argument("--audit", type=int, default=0, metavar="N",
                     help="shadow-SPICE audit: deterministically "
                          "sample N of the run's arcs (stratified by "
                          "canonical stage form), re-solve each with "
                          "the adaptive transient engine and report "
                          "the per-arc error distribution with phase "
                          "attribution")
    sta.add_argument("--audit-seed", type=int, default=0,
                     help="sampling seed (same seed, same arcs)")
    sta.add_argument("--audit-band", type=float, default=10.0,
                     help="audit acceptance band in percent (audit "
                          "arcs outside it emit flight bundles when "
                          "capture is on)")
    sta.add_argument("--history", action="store_true",
                     help="append the audit errors to the accuracy "
                          "history ledger (needs --audit)")
    sta.add_argument("--history-file", metavar="PATH", default=None,
                     help="accuracy ledger path (default: benchmarks/"
                          "results/ACCURACY_history.jsonl)")
    sta.set_defaults(func=_cmd_sta)

    sim = sub.add_parser("simulate",
                         help="reference-simulate a single-stage deck")
    sim.add_argument("deck")
    sim.add_argument("--input", action="append",
                     help="source spec, e.g. a=step:0:3.3:20p")
    sim.add_argument("--node", action="append",
                     help="node(s) to report/plot")
    sim.add_argument("--t-stop", default="500p")
    sim.add_argument("--dt", default="1p")
    sim.add_argument("--width", type=int, default=72)
    sim.add_argument("--no-plot", action="store_true")
    sim.set_defaults(func=_cmd_simulate)

    char = sub.add_parser("characterize",
                          help="build and describe the device tables")
    char.add_argument("--polarity", nargs="+", default=["n", "p"],
                      choices=["n", "p"])
    char.add_argument("--grid-step", default="0.1")
    char.set_defaults(func=_cmd_characterize)

    lint = sub.add_parser("lint",
                          help="static pre-simulation checks on a deck, "
                               "or --code for repo self-analysis")
    lint.add_argument("deck", nargs="?", default=None,
                      help="SPICE deck to lint (omit with --code)")
    lint.add_argument("--format", choices=["text", "json"],
                      default="text", help="report format")
    lint.add_argument("--disable", action="append", metavar="RULE",
                      help="disable a rule by ID, full ID or slug "
                           "(repeatable)")
    lint.add_argument("--severity", action="append",
                      metavar="RULE=LEVEL",
                      help="override a rule's severity, e.g. "
                           "ERC007=error (repeatable)")
    lint.add_argument("--models", action="store_true",
                      help="also characterize and lint the device "
                           "tables (slower)")
    lint.add_argument("--grid-step", default="0.1",
                      help="characterization grid pitch hint [V]")
    lint.add_argument("--code", action="store_true",
                      help="run the determinism/concurrency code "
                           "analysis over the repo's own sources "
                           "instead of a deck")
    lint.add_argument("--root", default=None, metavar="DIR",
                      help="source tree to scan with --code (default: "
                           "the installed repro package)")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="baseline file of accepted findings "
                           "(default: auto-discover .lint-baseline.json)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file")
    lint.add_argument("--sarif", default=None, metavar="OUT",
                      help="with --code, also write a SARIF 2.1.0 log")
    lint.add_argument("--fail-on", choices=["error", "warning"],
                      default="error",
                      help="exit non-zero at this severity or above "
                           "(default: error)")
    lint.set_defaults(func=_cmd_lint)

    stats = sub.add_parser("stats",
                           help="QWM cost breakdown of one transition")
    stats.add_argument("deck", nargs="?", default=None,
                       help="optional single-stage deck (default: a "
                            "built-in circuit, see --circuit)")
    stats.add_argument("--circuit", default="nand3",
                       choices=sorted(_STATS_CIRCUITS),
                       help="built-in stage when no deck is given")
    stats.add_argument("--direction", default="fall",
                       choices=["fall", "rise"],
                       help="output transition to evaluate")
    stats.add_argument("--output", default=None,
                       help="output node (default: the stage's first)")
    stats.add_argument("--input", default=None,
                       help="switching input (default: the stage's "
                            "first)")
    stats.add_argument("--grid-step", default="0.1",
                       help="characterization grid pitch [V]")
    stats.add_argument("--json", action="store_true",
                       help="emit the breakdown and raw metrics as "
                            "JSON")
    stats.add_argument("--audit", action="store_true",
                       help="also shadow-SPICE audit the arc and "
                            "report its error with phase attribution")
    stats.set_defaults(func=_cmd_stats)

    prof = sub.add_parser("profile",
                          help="phase-level cost attribution of a "
                               "workload (pytest file, deck or "
                               "built-in circuit)")
    prof.add_argument("target", nargs="?", default=None,
                      help="a pytest workload (e.g. benchmarks/"
                           "bench_headline.py, run in-process), a "
                           "single-stage deck, or empty for the "
                           "built-in --circuit")
    prof.add_argument("--circuit", default="nand3",
                      choices=sorted(_STATS_CIRCUITS),
                      help="built-in stage when no target is given")
    prof.add_argument("--direction", default="fall",
                      choices=["fall", "rise"],
                      help="output transition for circuit targets")
    prof.add_argument("--output", default=None,
                      help="output node (default: the stage's first)")
    prof.add_argument("--input", default=None,
                      help="switching input (default: the stage's "
                           "first)")
    prof.add_argument("--grid-step", default="0.1",
                      help="characterization grid pitch [V]")
    prof.add_argument("--repeat", type=int, default=1,
                      help="evaluate circuit targets N times (larger "
                           "samples for the self-time table)")
    prof.add_argument("--top", type=int, default=10,
                      help="hottest-cell rows to print")
    prof.add_argument("--max-cells", type=int, default=4096,
                      help="ledger cell cap (drops + counts beyond)")
    prof.add_argument("--speedscope", metavar="FILE", default=None,
                      help="write a speedscope JSON profile "
                           "(open at https://www.speedscope.app)")
    prof.add_argument("--collapsed", metavar="FILE", default=None,
                      help="write Brendan Gregg collapsed stacks "
                           "(for flamegraph.pl and friends)")
    prof.add_argument("--json", action="store_true",
                      help="emit the raw ledger and summary as JSON")
    prof.set_defaults(func=_cmd_profile)

    gold = sub.add_parser("golden",
                          help="differential QWM-vs-SPICE golden suite")
    gold.add_argument("--update", action="store_true",
                      help="re-run both engines over the grid and "
                           "rewrite the stored records (slow)")
    gold.add_argument("--dir", default=None,
                      help="golden directory (default: tests/golden)")
    gold.add_argument("--flight-bundles", metavar="DIR", default=None,
                      help="record the run with the flight recorder "
                           "and write a debug bundle per band "
                           "violation under DIR")
    gold.add_argument("--history", action="store_true",
                      help="append this run's per-case errors to the "
                           "accuracy history ledger")
    gold.add_argument("--history-file", metavar="PATH", default=None,
                      help="accuracy ledger path (default: benchmarks/"
                           "results/ACCURACY_history.jsonl)")
    gold.set_defaults(func=_cmd_golden)

    replay = sub.add_parser("replay",
                            help="deterministically re-run a flight "
                                 "debug bundle")
    replay.add_argument("bundle", help="bundle JSON written by the "
                                       "flight recorder")
    replay.add_argument("--verbose", action="store_true",
                        help="print every replayed Newton iteration")
    replay.set_defaults(func=_cmd_replay)

    rep = sub.add_parser("report",
                         help="per-run convergence/forensics report")
    rep.add_argument("deck", nargs="?", default=None,
                     help="optional deck (default: a built-in address "
                          "decoder, see --bits)")
    rep.add_argument("--bits", type=int, default=3,
                     help="address bits of the built-in decoder")
    rep.add_argument("--workers", type=int, default=1,
                     help="thread-pool size for the STA run")
    rep.add_argument("--cache", action="store_true",
                     help="enable the stage-result cache (the report "
                          "then shows cache attribution)")
    rep.add_argument("--event-limit", type=int, default=200_000,
                     help="flight ledger event cap for the run")
    rep.add_argument("--json", action="store_true",
                     help="emit the aggregated summary as JSON")
    rep.add_argument("--audit", type=int, default=0, metavar="N",
                     help="shadow-SPICE audit N sampled arcs and add "
                          "an accuracy section to the report")
    rep.add_argument("--audit-seed", type=int, default=0,
                     help="audit sampling seed")
    rep.set_defaults(func=_cmd_report)

    chaos = sub.add_parser("chaos",
                           help="deterministic fault-injection "
                                "scenario matrix")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan seed (same seed, same "
                            "injections, same absorbing rungs)")
    chaos.add_argument("--bits", type=int, default=2,
                       help="address bits of the built-in decoder "
                            "the faults are injected into")
    chaos.add_argument("--scenario", action="append", metavar="NAME",
                       help="run only this scenario (repeatable; "
                            "see --list)")
    chaos.add_argument("--list", action="store_true",
                       help="list the scenario matrix and exit")
    chaos.add_argument("--json", action="store_true",
                       help="emit the machine-readable report")
    chaos.set_defaults(func=_cmd_chaos)

    bdiff = sub.add_parser("bench-diff",
                           help="flag regressions between the last two "
                                "benchmark history entries")
    bdiff.add_argument("--history", default=None,
                       help="history file (default: benchmarks/results/"
                            "BENCH_history.jsonl)")
    bdiff.add_argument("--run", default=None,
                       help="only compare entries of this run name")
    bdiff.add_argument("--threshold", type=float,
                       default=BENCH_DIFF_THRESHOLD_PCT,
                       help="regression band in percent")
    bdiff.set_defaults(func=_cmd_bench_diff)

    adiff = sub.add_parser("accuracy-diff",
                           help="flag accuracy drift between the last "
                                "two accuracy history entries")
    adiff.add_argument("--history", default=None,
                       help="history file (default: benchmarks/results/"
                            "ACCURACY_history.jsonl)")
    adiff.add_argument("--run", default=None,
                       help="compare entries of this run name "
                            "(default: the latest entry's run)")
    adiff.add_argument("--threshold", type=float,
                       default=ACCURACY_DIFF_THRESHOLD_PP,
                       help="drift band in percentage points of delay "
                            "error (one-sided: shrinking error never "
                            "flags)")
    adiff.set_defaults(func=_cmd_accuracy_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # The stats command needs telemetry regardless of the export flags.
    wants_telemetry = bool(args.trace or args.metrics
                           or args.command == "stats")
    # --profile enables the phase profiler for any command; the
    # profile subcommand configures its own (and owns the reporting).
    wants_profile = bool(args.profile)
    if wants_telemetry:
        configure(ObsConfig(enabled=True))
    if wants_profile and args.command != "profile":
        configure_profile(ProfileConfig(enabled=True))
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if wants_telemetry:
            bundle = telemetry()
            if args.trace:
                bundle.export_trace(args.trace)
            if args.metrics:
                bundle.export_metrics(args.metrics)
            disable()
        if wants_profile:
            export_speedscope(profiler(), args.profile)
        if wants_profile or args.command == "profile":
            disable_profile()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
