"""``repro.lint`` — static analysis of QWM inputs *and* of the repo.

A rule-based lint framework with two kinds of context: netlist-centric
(netlists, stage graphs, device tables, solver options, RC networks —
checked *before* any transient solve) and code-centric (the repo's own
Python sources, checked for determinism/concurrency hazards).  Five
built-in rule packs:

======  ============================================================
pack    rules
======  ============================================================
erc     ``ERC001-floating-gate`` … ``ERC008-stage-extraction`` —
        structural polar-graph preconditions (Definition 1)
model   ``MOD001-nonfinite-table`` … ``MOD005-corner-mismatch`` —
        tabular I/V and capacitance sanity
solver  ``SOL001-stack-depth`` … ``SOL006-hot-loop-instrumentation``
        — QWM/Newton configuration preflight, plus one code-context
        rule keeping instrumentation out of per-iteration hot loops
        (runs under ``lint --code`` alongside the code pack)
interconnect  ``INT001-negative-rc`` … ``INT003-coupling-self-loop``
code    ``DET001-unordered-iteration`` … ``CONC004-env-mutation`` —
        determinism & concurrency-safety static analysis of
        ``src/repro`` itself (baseline-gated, SARIF export)
======  ============================================================

Typical use::

    from repro.lint import lint_netlist

    report = lint_netlist(netlist, tech=CMOSP35)
    if not report.ok:
        print(report.format_text())

or from the command line: ``python -m repro lint DECK.sp`` for a deck,
``python -m repro lint --code`` for the self-analysis.
"""

from repro.lint.baseline import (
    Baseline,
    BaselineEntry,
    BaselineResult,
    STALE_BASELINE_ID,
    discover_baseline,
)
from repro.lint.code_context import CodeContext, default_scan_root
from repro.lint.context import CouplingCap, LintContext
from repro.lint.diagnostics import (
    Diagnostic,
    LINT_JSON_SCHEMA_VERSION,
    LintReport,
    Location,
    Severity,
)
from repro.lint.runner import (
    LintRule,
    LintRunner,
    PreflightError,
    all_rule_classes,
    lint_code,
    lint_netlist,
    lint_stage,
    preflight,
    register,
    rule_packs,
)
from repro.lint.sarif import to_sarif

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineResult",
    "CodeContext",
    "CouplingCap",
    "Diagnostic",
    "LINT_JSON_SCHEMA_VERSION",
    "LintContext",
    "LintReport",
    "LintRule",
    "LintRunner",
    "Location",
    "PreflightError",
    "STALE_BASELINE_ID",
    "Severity",
    "all_rule_classes",
    "default_scan_root",
    "discover_baseline",
    "lint_code",
    "lint_netlist",
    "lint_stage",
    "preflight",
    "register",
    "rule_packs",
    "to_sarif",
]
