"""``repro.lint`` — static pre-simulation analysis of QWM inputs.

A rule-based lint framework that inspects netlists, stage graphs,
device tables, solver options and interconnect networks *before* any
transient solve, emitting structured :class:`Diagnostic` records with
stable rule IDs.  Four built-in rule packs:

======  ============================================================
pack    rules
======  ============================================================
erc     ``ERC001-floating-gate`` … ``ERC008-stage-extraction`` —
        structural polar-graph preconditions (Definition 1)
model   ``MOD001-nonfinite-table`` … ``MOD005-corner-mismatch`` —
        tabular I/V and capacitance sanity
solver  ``SOL001-stack-depth`` … ``SOL004-telemetry-budget`` —
        QWM/Newton configuration preflight
interconnect  ``INT001-negative-rc`` … ``INT003-coupling-self-loop``
======  ============================================================

Typical use::

    from repro.lint import lint_netlist

    report = lint_netlist(netlist, tech=CMOSP35)
    if not report.ok:
        print(report.format_text())

or from the command line: ``python -m repro lint DECK.sp``.
"""

from repro.lint.context import CouplingCap, LintContext
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
)
from repro.lint.runner import (
    LintRule,
    LintRunner,
    PreflightError,
    all_rule_classes,
    lint_netlist,
    lint_stage,
    preflight,
    register,
    rule_packs,
)

__all__ = [
    "CouplingCap",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "LintRule",
    "LintRunner",
    "Location",
    "PreflightError",
    "Severity",
    "all_rule_classes",
    "lint_netlist",
    "lint_stage",
    "preflight",
    "register",
    "rule_packs",
]
