"""Source-tree context for the code-level rule pack.

Where the netlist-centric :class:`~repro.lint.context.LintContext`
bundles circuit artifacts, a :class:`CodeContext` bundles the repo's own
Python sources: file text, parsed ASTs, parent links and enclosing-symbol
lookup.  The ``code`` rule pack (:mod:`repro.lint.rules_code`) walks it
to enforce the determinism and concurrency-safety contracts the runtime
test suites can only check behaviorally.

Paths are always stored relative to the scanned root with ``/``
separators; the module label drops any leading ``src``/``repro``
segments, so ``analysis/parallel.py`` labels as ``analysis.parallel``
whether the scan root is ``src/repro``, ``repro`` or a temporary copy.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Directory names never descended into when scanning a tree.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def module_label(relpath: str) -> str:
    """Dotted module label for a relative path, root-prefix agnostic."""
    parts = relpath.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    while parts and parts[0] in ("src", "repro"):
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class SourceFile:
    """One parsed Python source file.

    Attributes:
        relpath: path relative to the scan root (``/`` separators).
        text: raw source text.
        tree: parsed module AST, or None when the file failed to parse
            (the failure is recorded on the owning context instead).
        module: dotted module label (see :func:`module_label`).
    """

    def __init__(self, relpath: str, text: str,
                 tree: Optional[ast.Module]):
        self.relpath = relpath
        self.text = text
        self.tree = tree
        self.module = module_label(relpath)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._symbols: Optional[List[Tuple[int, int, str]]] = None

    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (None for the module root)."""
        if self._parents is None:
            self._parents = {}
            if self.tree is not None:
                for outer in ast.walk(self.tree):
                    for inner in ast.iter_child_nodes(outer):
                        self._parents[inner] = outer
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents of ``node`` from innermost to the module root."""
        cursor = self.parent(node)
        while cursor is not None:
            yield cursor
            cursor = self.parent(cursor)

    def symbol_at(self, lineno: int) -> str:
        """Qualified name of the innermost def/class enclosing a line.

        Returns ``"<module>"`` for module-level code.  Used as the
        stable half of baseline fingerprints, so findings survive line
        drift as long as they stay in the same function.
        """
        if self._symbols is None:
            self._symbols = []
            if self.tree is not None:
                self._index_symbols(self.tree, ())
        best = "<module>"
        best_span = None
        for start, end, name in self._symbols:
            if start <= lineno <= end:
                span = end - start
                if best_span is None or span <= best_span:
                    best, best_span = name, span
        return best

    def _index_symbols(self, node: ast.AST, stack: Tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                qual = stack + (child.name,)
                end = getattr(child, "end_lineno", child.lineno)
                self._symbols.append(  # type: ignore[union-attr]
                    (child.lineno, end or child.lineno, ".".join(qual)))
                self._index_symbols(child, qual)
            else:
                self._index_symbols(child, stack)


@dataclass
class CodeContext:
    """The source tree a code-level lint run inspects.

    Attributes:
        root: scan root (directory or ``"<memory>"`` for test sources).
        files: parsed sources, sorted by relpath.
        parse_errors: ``(relpath, message)`` for unparseable files; the
            runner surfaces them as diagnostics instead of crashing.
    """

    root: str
    files: List[SourceFile] = field(default_factory=list)
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, root: str) -> "CodeContext":
        """Scan ``root`` recursively for ``*.py`` files (sorted walk)."""
        ctx = cls(root=os.path.abspath(root))
        relpaths: List[str] = []
        for dirpath, dirnames, filenames in os.walk(ctx.root):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in _SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    full = os.path.join(dirpath, name)
                    relpaths.append(
                        os.path.relpath(full, ctx.root).replace(
                            os.sep, "/"))
        for relpath in sorted(relpaths):
            with open(os.path.join(ctx.root, relpath),
                      encoding="utf-8") as handle:
                ctx._add(relpath, handle.read())
        return ctx

    @classmethod
    def from_sources(cls, sources: Dict[str, str],
                     root: str = "<memory>") -> "CodeContext":
        """Build a context from in-memory ``{relpath: text}`` sources."""
        ctx = cls(root=root)
        for relpath in sorted(sources):
            ctx._add(relpath.replace(os.sep, "/"), sources[relpath])
        return ctx

    def _add(self, relpath: str, text: str) -> None:
        try:
            tree: Optional[ast.Module] = ast.parse(text, filename=relpath)
        except SyntaxError as exc:
            tree = None
            self.parse_errors.append(
                (relpath, f"line {exc.lineno}: {exc.msg}"))
        self.files.append(SourceFile(relpath, text, tree))

    # ------------------------------------------------------------------
    def file(self, relpath: str) -> Optional[SourceFile]:
        """Look a file up by its relative path."""
        relpath = relpath.replace(os.sep, "/")
        for source in self.files:
            if source.relpath == relpath:
                return source
        return None

    def parsed(self) -> Iterator[SourceFile]:
        """Files with a usable AST."""
        return (f for f in self.files if f.tree is not None)


def default_scan_root() -> str:
    """The installed ``repro`` package directory (the self-scan root)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))
