"""ERC rule pack: electrical/structural rule checks.

These are the paper's structural preconditions (Definition 1: a
well-formed polar stage graph) checked statically, before any transient
solve.  Rules inspect the flat netlist when one is present and every
logic stage in the context; both views matter, because some breakage is
only visible pre-extraction (non-positive geometry aborts extraction)
and some only post-extraction (a dangling node added to a stage).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Set

from repro.circuit.netlist import GND_NODE, VDD_NODE
from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.runner import LintRule, register

RAILS = (VDD_NODE, GND_NODE)


def channel_components(netlist: Any) -> List[Dict[str, Any]]:
    """Group a flat netlist into channel-connected components.

    Returns one record per component: its non-supply ``nets``, member
    ``transistors`` and ``wires``, and whether any member touches a
    supply rail (``rail_contact``).  Mirrors the union-find of
    :func:`repro.circuit.stage.extract_stages` without raising on
    malformed inputs.
    """
    parent: Dict[str, str] = {}

    def find(net: str) -> str:
        root = parent.setdefault(net, net)
        while root != parent[root]:
            root = parent[root]
        while parent[net] != root:
            parent[net], net = root, parent[net]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for t in netlist.transistors:
        nets = [n for n in (t.src, t.snk) if n not in RAILS]
        for net in nets:
            find(net)
        if len(nets) == 2:
            union(nets[0], nets[1])
    for w in netlist.wires:
        nets = [n for n in (w.a, w.b) if n not in RAILS]
        for net in nets:
            find(net)
        if len(nets) == 2:
            union(nets[0], nets[1])

    components: Dict[str, Dict[str, Any]] = {}

    def record(*nets: str) -> Dict[str, Any]:
        for net in nets:
            if net not in RAILS:
                root = find(net)
                return components.setdefault(
                    root, {"nets": set(), "transistors": [],
                           "wires": [], "rail_contact": False})
        return components.setdefault(
            "<supply>", {"nets": set(), "transistors": [],
                         "wires": [], "rail_contact": True})

    for t in netlist.transistors:
        comp = record(t.src, t.snk)
        comp["transistors"].append(t)
        comp["nets"].update(n for n in (t.src, t.snk) if n not in RAILS)
        if t.src in RAILS or t.snk in RAILS:
            comp["rail_contact"] = True
    for w in netlist.wires:
        comp = record(w.a, w.b)
        comp["wires"].append(w)
        comp["nets"].update(n for n in (w.a, w.b) if n not in RAILS)
        if w.a in RAILS or w.b in RAILS:
            comp["rail_contact"] = True
    return list(components.values())


def driven_nets(netlist: Any) -> Set[str]:
    """Nets that can carry a driven logic value: channel and wire nets."""
    nets: Set[str] = set()
    for t in netlist.transistors:
        nets.update(n for n in (t.src, t.snk) if n not in RAILS)
    for w in netlist.wires:
        nets.update(n for n in (w.a, w.b) if n not in RAILS)
    return nets


def _stage_loc(stage: Any, element: str = None) -> Location:
    return Location("stage", getattr(stage, "name", "?"), element)


def _net_loc(ctx: LintContext, element: str = None) -> Location:
    return Location("netlist", ctx.design_name, element)


@register
class FloatingGateRule(LintRule):
    """A transistor gate that nothing can ever drive."""

    rule_id = "ERC001"
    slug = "floating-gate"
    pack = "erc"
    default_severity = Severity.ERROR
    description = ("Transistor gates must be primary inputs, rails or "
                   "driven nets; an undriven gate floats.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.netlist is not None:
            net = ctx.netlist
            driven = driven_nets(net) | set(net.primary_inputs)
            for t in net.transistors:
                if t.gate in RAILS or t.gate in driven:
                    continue
                yield self.diag(
                    f"transistor {t.name!r} gate net {t.gate!r} is "
                    "floating (not a primary input and driven by no "
                    "stage)",
                    _net_loc(ctx, t.name),
                    hint=f"mark {t.gate!r} with .input or wire it to a "
                         "driving stage")
        for stage in ctx.stages:
            for edge in stage.edges:
                if edge.kind.is_transistor and not edge.gate_input:
                    yield self.diag(
                        f"transistor {edge.name!r} has no gate input",
                        _stage_loc(stage, edge.name),
                        hint="give the transistor a gate input signal")


@register
class DanglingNodeRule(LintRule):
    """An internal stage node with no incident elements."""

    rule_id = "ERC002"
    slug = "dangling-node"
    pack = "erc"
    default_severity = Severity.ERROR
    description = "Internal stage nodes must connect to an element."

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for stage in ctx.stages:
            for node in stage.internal_nodes:
                if node.degree == 0:
                    yield self.diag(
                        f"node {node.name!r} is dangling",
                        _stage_loc(stage, node.name),
                        hint="remove the node or connect an element")


@register
class PoleUnreachableRule(LintRule):
    """Subgraphs with no conduction path to either pole."""

    rule_id = "ERC003"
    slug = "pole-unreachable"
    pack = "erc"
    default_severity = Severity.ERROR
    description = ("Every connected element must be reachable from the "
                   "VDD/GND poles; unreachable islands can never "
                   "charge or discharge.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.netlist is not None:
            for comp in channel_components(ctx.netlist):
                if comp["transistors"] and not comp["rail_contact"]:
                    nets = ", ".join(sorted(comp["nets"])[:6])
                    yield self.diag(
                        f"channel-connected subgraph {{{nets}}} has no "
                        "path to VDD or GND",
                        _net_loc(ctx, sorted(comp["nets"])[0]),
                        hint="connect the subgraph to a supply rail")
        for stage in ctx.stages:
            if not stage.edges:
                continue
            seen = set()
            frontier = [stage.source, stage.sink]
            while frontier:
                node = frontier.pop()
                if node.name in seen:
                    continue
                seen.add(node.name)
                for edge in node.edges:
                    frontier.append(edge.other(node))
            for node in stage.nodes:
                if node.degree > 0 and node.name not in seen:
                    yield self.diag(
                        f"node {node.name!r} unreachable from the poles",
                        _stage_loc(stage, node.name),
                        hint="connect the island to the stage's "
                             "pull network")


@register
class NonPositiveGeometryRule(LintRule):
    """Zero or negative device geometry."""

    rule_id = "ERC004"
    slug = "nonpositive-geometry"
    pack = "erc"
    default_severity = Severity.ERROR
    description = "Device widths and lengths must be positive."

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.netlist is not None:
            for element in (list(ctx.netlist.transistors)
                            + list(ctx.netlist.wires)):
                if element.w <= 0 or element.l <= 0:
                    yield self.diag(
                        f"element {element.name!r} has non-positive "
                        f"geometry (W={element.w:g}, L={element.l:g})",
                        _net_loc(ctx, element.name),
                        hint="set W= and L= to positive lengths in "
                             "meters")
        for stage in ctx.stages:
            for edge in stage.edges:
                if edge.w <= 0 or edge.l <= 0:
                    yield self.diag(
                        f"edge {edge.name!r} has non-positive geometry",
                        _stage_loc(stage, edge.name),
                        hint="set the edge width/length positive")


@register
class MissingOutputRule(LintRule):
    """Stages (and designs) without marked outputs."""

    rule_id = "ERC005"
    slug = "missing-output"
    pack = "erc"
    default_severity = Severity.ERROR
    description = ("A stage must mark at least one output; a design "
                   "should declare primary outputs.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.netlist is not None and not ctx.netlist.primary_outputs:
            yield self.diag(
                "netlist declares no primary outputs (.output)",
                _net_loc(ctx), severity=Severity.WARNING,
                hint="add a .output card naming the timed nets")
        for stage in ctx.stages:
            if not stage.outputs:
                yield self.diag(
                    "stage has no marked outputs",
                    _stage_loc(stage),
                    hint="mark_output() the stage's observable node")


@register
class EmptyStageRule(LintRule):
    """Stages or netlists with no circuit elements at all."""

    rule_id = "ERC006"
    slug = "empty-stage"
    pack = "erc"
    default_severity = Severity.ERROR
    description = "A stage/netlist must contain at least one element."

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if (ctx.netlist is not None and not ctx.netlist.transistors
                and not ctx.netlist.wires):
            yield self.diag("netlist has no circuit elements",
                            _net_loc(ctx),
                            hint="add M/R cards before linting")
        for stage in ctx.stages:
            if not stage.edges:
                yield self.diag("stage has no circuit elements",
                                _stage_loc(stage),
                                hint="add transistors or wires")


@register
class MixedPolarityPullRule(LintRule):
    """NMOS pulling from VDD / PMOS pulling to GND (degraded levels)."""

    rule_id = "ERC007"
    slug = "mixed-polarity-pull"
    pack = "erc"
    default_severity = Severity.WARNING
    description = ("An NMOS on the VDD rail or a PMOS on the GND rail "
                   "passes a threshold-degraded level.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.netlist is not None:
            for t in ctx.netlist.transistors:
                yield from self._check_element(
                    t.polarity, t.name, (t.src, t.snk),
                    _net_loc(ctx, t.name))
        for stage in ctx.stages:
            for edge in stage.transistors:
                terminals = []
                if edge.src is stage.source:
                    terminals.append(VDD_NODE)
                if edge.snk is stage.source:
                    terminals.append(VDD_NODE)
                if edge.src is stage.sink:
                    terminals.append(GND_NODE)
                if edge.snk is stage.sink:
                    terminals.append(GND_NODE)
                yield from self._check_element(
                    edge.kind.polarity, edge.name, terminals,
                    _stage_loc(stage, edge.name))

    def _check_element(self, polarity: str, name: str, terminals,
                       location: Location) -> Iterator[Diagnostic]:
        if polarity == "n" and VDD_NODE in terminals:
            yield self.diag(
                f"NMOS {name!r} pulls from VDD: the passed high level "
                "degrades by a threshold",
                location,
                hint="use a PMOS pull-up (or accept the degraded swing)")
        if polarity == "p" and GND_NODE in terminals:
            yield self.diag(
                f"PMOS {name!r} pulls to GND: the passed low level "
                "degrades by a threshold",
                location,
                hint="use an NMOS pull-down (or accept the degraded "
                     "swing)")


@register
class StageExtractionRule(LintRule):
    """Stage extraction itself failed on this netlist."""

    rule_id = "ERC008"
    slug = "stage-extraction"
    pack = "erc"
    default_severity = Severity.ERROR
    description = ("The netlist could not be partitioned into logic "
                   "stages; stage-level checks were skipped.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.extraction_error:
            yield self.diag(
                f"stage extraction failed: {ctx.extraction_error}",
                _net_loc(ctx),
                hint="fix the netlist-level errors above and re-lint")
