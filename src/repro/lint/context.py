"""The object bundle a lint run inspects.

A :class:`LintContext` aggregates whatever pre-simulation artifacts are
available — a flat netlist, extracted logic stages, characterized device
tables, solver options, RC trees, coupling capacitors — and every rule
checks only the parts that are present.  This keeps one runner usable
from the CLI (netlist-centric), from ``validate_stage`` (one stage) and
from the solver preflight hooks (stages + options).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class CouplingCap:
    """A victim-aggressor coupling capacitor (not part of FlatNetlist).

    Attributes:
        name: capacitor name.
        net_a: first terminal net.
        net_b: second terminal net.
        cap: capacitance [F].
    """

    name: str
    net_a: str
    net_b: str
    cap: float


@dataclass
class LintContext:
    """Everything a lint run may inspect.  All fields are optional.

    Attributes:
        netlist: a flat :class:`~repro.circuit.stage.FlatNetlist`.
        stages: extracted / hand-built logic stages.
        graph: the :class:`~repro.circuit.stage.StageGraph` when stage
            extraction succeeded.
        extraction_error: message of a failed stage extraction (the
            runner surfaces it as a diagnostic instead of crashing).
        tech: the :class:`~repro.devices.technology.Technology`.
        tables: characterized table device models to lint.
        corners: corner name -> derived Technology (corner-library
            consistency checks).
        options: QWM solver options (duck-typed; anything exposing the
            ``QWMOptions`` attributes works).
        execution: parallel execution configuration (duck-typed
            ``repro.analysis.parallel.ExecutionConfig``) when the run
            goes through the parallel engine; solver-hygiene rules use
            it to reason about per-worker budgets.
        grid_step: characterization grid pitch hint [V] used by the
            stack-depth preflight when no tables are attached.
        rc_trees: interconnect RC trees to lint.
        coupling_caps: coupling capacitors to lint.
        code: a :class:`~repro.lint.code_context.CodeContext` when the
            run inspects the repo's own sources (the ``code`` rule
            pack); netlist rules ignore it and code rules no-op when it
            is absent, so one runner serves both kinds of run.
        design_name: label used in diagnostic locations.
    """

    netlist: Optional[Any] = None
    stages: List[Any] = field(default_factory=list)
    graph: Optional[Any] = None
    extraction_error: Optional[str] = None
    tech: Optional[Any] = None
    tables: List[Any] = field(default_factory=list)
    corners: Dict[str, Any] = field(default_factory=dict)
    options: Optional[Any] = None
    execution: Optional[Any] = None
    grid_step: Optional[float] = None
    rc_trees: List[Any] = field(default_factory=list)
    coupling_caps: List[CouplingCap] = field(default_factory=list)
    code: Optional[Any] = None
    design_name: str = "design"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_netlist(cls, netlist: Any, tech: Optional[Any] = None,
                     extract: bool = True,
                     options: Optional[Any] = None,
                     grid_step: Optional[float] = None) -> "LintContext":
        """Build a context around a flat netlist.

        Stage extraction is attempted (it is itself a structural check);
        a failure is recorded in :attr:`extraction_error` rather than
        raised, so netlist-level rules still run.
        """
        ctx = cls(netlist=netlist, tech=tech, options=options,
                  grid_step=grid_step,
                  design_name=getattr(netlist, "name", "design"))
        if extract:
            from repro.circuit.stage import extract_stages

            try:
                ctx.graph = extract_stages(netlist, tech=tech)
                ctx.stages = list(ctx.graph.stages)
            except (ValueError, KeyError, RecursionError) as exc:
                ctx.extraction_error = str(exc)
        return ctx

    @classmethod
    def from_stage(cls, stage: Any, tech: Optional[Any] = None,
                   options: Optional[Any] = None) -> "LintContext":
        """Build a context around a single logic stage."""
        return cls(stages=[stage], tech=tech, options=options,
                   design_name=getattr(stage, "name", "stage"))

    @classmethod
    def from_code(cls, code: Any) -> "LintContext":
        """Build a context around a source-tree ``CodeContext``."""
        import os

        root = getattr(code, "root", "<memory>")
        return cls(code=code,
                   design_name=os.path.basename(root) or root)

    @classmethod
    def from_stage_graph(cls, graph: Any, tech: Optional[Any] = None,
                         options: Optional[Any] = None,
                         library: Optional[Any] = None,
                         execution: Optional[Any] = None
                         ) -> "LintContext":
        """Build a context around an extracted stage graph."""
        ctx = cls(graph=graph, stages=list(graph.stages), tech=tech,
                  options=options, execution=execution,
                  design_name=getattr(graph, "name", "design"))
        if library is not None:
            ctx.grid_step = getattr(library, "grid_step", None)
        return ctx
