"""Lightweight name-based call graph over a :class:`CodeContext`.

The concurrency rules need to know which functions can run on worker
threads/processes: module-global mutation is harmless from the scheduler
thread but a data race from a pooled task.  Full points-to analysis is
out of scope for a lint pass, so this resolves calls *by simple name* —
a call ``foo(...)`` or ``obj.foo(...)`` links to every function named
``foo`` anywhere in the scanned tree.  That over-approximates
reachability, which is the conservative direction for safety rules: a
function is treated as worker-reachable unless no name path leads to it.

Worker entry points are discovered structurally rather than from a
hard-coded list: any function object passed to ``executor.submit(f,
...)``, an ``initializer=f`` executor keyword, or a
``threading.Thread(target=f)`` call is an entry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.lint.code_context import CodeContext, SourceFile


@dataclass(frozen=True)
class FunctionInfo:
    """One function definition in the scanned tree.

    Attributes:
        qualname: ``"relpath::Qual.Name"`` — unique per definition.
        name: the simple (unqualified) function name.
        relpath: file the definition lives in.
        lineno: definition line.
    """

    qualname: str
    name: str
    relpath: str
    lineno: int


def _call_target_name(func: ast.expr) -> Optional[str]:
    """Simple name a call resolves through (``foo`` / ``x.foo``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _referenced_name(node: ast.expr) -> Optional[str]:
    """Simple name of a function *reference* (not a call)."""
    return _call_target_name(node)


class CallGraph:
    """Name-resolved call graph plus worker-entry discovery."""

    def __init__(self, ctx: CodeContext):
        #: qualname -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: simple name -> qualnames sharing it
        self.by_name: Dict[str, List[str]] = {}
        #: qualname -> simple names it calls or references
        self.calls: Dict[str, Set[str]] = {}
        #: simple names of functions handed to pools/threads
        self.entry_names: Set[str] = set()
        for source in ctx.parsed():
            self._index_file(source)

    # ------------------------------------------------------------------
    def _index_file(self, source: SourceFile) -> None:
        def visit_scope(node: ast.AST, stack: tuple) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    qual = stack + (child.name,)
                    qualname = f"{source.relpath}::{'.'.join(qual)}"
                    info = FunctionInfo(qualname, child.name,
                                        source.relpath, child.lineno)
                    self.functions[qualname] = info
                    self.by_name.setdefault(child.name, []).append(
                        qualname)
                    self.calls[qualname] = self._scope_calls(child)
                    visit_scope(child, qual)
                elif isinstance(child, ast.ClassDef):
                    visit_scope(child, stack + (child.name,))
                else:
                    visit_scope(child, stack)

        visit_scope(source.tree, ())  # type: ignore[arg-type]
        self._find_entries(source)

    @staticmethod
    def _scope_calls(func: ast.AST) -> Set[str]:
        """Simple names called (or referenced as callbacks) in one
        function body, excluding nested function definitions — those
        are separate graph nodes, linked when the outer scope calls or
        passes them by name."""
        called: Set[str] = set()

        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    continue
                if isinstance(child, ast.Call):
                    name = _call_target_name(child.func)
                    if name:
                        called.add(name)
                    for arg in child.args:
                        if not isinstance(arg, ast.Call):
                            ref = _referenced_name(arg)
                            if ref:
                                called.add(ref)
                    for kw in child.keywords:
                        if not isinstance(kw.value, ast.Call):
                            ref = _referenced_name(kw.value)
                            if ref:
                                called.add(ref)
                walk(child)

        walk(func)
        return called

    def _find_entries(self, source: SourceFile) -> None:
        """Record functions handed to executors or threads."""
        for node in ast.walk(source.tree):  # type: ignore[arg-type]
            if not isinstance(node, ast.Call):
                continue
            target = _call_target_name(node.func)
            if target == "submit" and node.args:
                name = _referenced_name(node.args[0])
                if name:
                    self.entry_names.add(name)
            if target in ("ThreadPoolExecutor", "ProcessPoolExecutor",
                          "Thread", "Process", "Timer"):
                for kw in node.keywords:
                    if kw.arg in ("initializer", "target"):
                        name = _referenced_name(kw.value)
                        if name:
                            self.entry_names.add(name)

    # ------------------------------------------------------------------
    def worker_entries(self) -> List[str]:
        """Qualnames of every discovered worker entry function."""
        found: List[str] = []
        for name in sorted(self.entry_names):
            found.extend(self.by_name.get(name, []))
        return found

    def reachable(self,
                  entries: Optional[List[str]] = None) -> Set[str]:
        """Qualnames reachable (by name) from the given entries.

        Defaults to :meth:`worker_entries`.  Includes the entries
        themselves.
        """
        if entries is None:
            entries = self.worker_entries()
        seen: Set[str] = set()
        frontier = list(entries)
        while frontier:
            qualname = frontier.pop()
            if qualname in seen or qualname not in self.functions:
                continue
            seen.add(qualname)
            for callee_name in self.calls.get(qualname, ()):
                for callee in self.by_name.get(callee_name, []):
                    if callee not in seen:
                        frontier.append(callee)
        return seen

    def reachable_names(self) -> Set[str]:
        """Worker-reachable functions as ``relpath::qualname`` strings."""
        return self.reachable()
