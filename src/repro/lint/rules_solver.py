"""Solver-preflight rule pack: QWM configuration sanity.

Bad solver options don't crash immediately — they surface as Newton
divergence deep inside the region cascade.  These rules check the
``QWMOptions``/``NewtonOptions`` bundle (duck-typed via ``ctx.options``)
and the interaction between stage stack depth and the characterization
grid resolution.
"""

from __future__ import annotations

import ast
import math
import re
from typing import Any, Iterator, List, Optional

from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.rules_code import _code, _in_packages, _loc, _unparse
from repro.lint.runner import LintRule, register

#: Milestone fractions above this are considered out of range (the
#: default schedule starts slightly above the rail at 1.10).
MAX_MILESTONE_FRACTION = 1.5
#: Series pull paths deeper than this get a blanket depth warning.
MAX_RECOMMENDED_DEPTH = 16
#: A DFS longest-path search gives up after this many steps and falls
#: back to a BFS shortest-path estimate.
_DFS_STEP_BUDGET = 20000


def _opts_loc(element: str = None) -> Location:
    return Location("options", "qwm", element)


def check_milestone_fractions(fractions) -> List[str]:
    """Problems with a milestone-fraction schedule (empty list = ok).

    Shared between :class:`MilestoneFractionRule` and
    ``QWMOptions.__post_init__`` so the constructor and the lint rule
    can never disagree.
    """
    problems: List[str] = []
    fractions = tuple(fractions)
    if not fractions:
        problems.append("milestone_fractions is empty: the schedule "
                        "would stop at the end of the turn-on cascade")
        return problems
    bad = [f for f in fractions
           if not isinstance(f, (int, float)) or not math.isfinite(f)]
    if bad:
        problems.append(f"milestone_fractions contains non-finite "
                        f"values: {bad}")
        return problems
    out_of_range = [f for f in fractions
                    if f <= 0.0 or f > MAX_MILESTONE_FRACTION]
    if out_of_range:
        problems.append(
            f"milestone fractions {out_of_range} outside "
            f"(0, {MAX_MILESTONE_FRACTION}]: targets at or below "
            "ground (or far above the rail) can never be matched")
    if any(b >= a for a, b in zip(fractions, fractions[1:])):
        problems.append(
            f"milestone_fractions {fractions} must be strictly "
            "decreasing: the scheduler pops targets in order and "
            "silently skips any already above the waveform")
    return problems


def stage_stack_depth(stage: Any) -> int:
    """Deepest series element chain from an output node to a rail.

    Exact (longest simple path) for the small stages QWM targets, with
    a step budget; falls back to the BFS shortest path on pathological
    inputs.
    """
    best = 0
    budget = [_DFS_STEP_BUDGET]
    rails = (stage.source, stage.sink)

    def dfs(node, visited, depth) -> Optional[int]:
        budget[0] -= 1
        if budget[0] <= 0:
            return None
        if node in rails:
            return depth
        deepest = 0
        for edge in node.edges:
            neighbor = edge.other(node)
            if neighbor.name in visited:
                continue
            visited.add(neighbor.name)
            sub = dfs(neighbor, visited, depth + 1)
            visited.discard(neighbor.name)
            if sub is None:
                return None
            deepest = max(deepest, sub)
        return deepest

    for output in stage.outputs:
        found = dfs(output, {output.name}, 0)
        if found is None:
            found = _bfs_depth(stage, output)
        best = max(best, found)
    return best


def _bfs_depth(stage: Any, output: Any) -> int:
    rails = (stage.source, stage.sink)
    frontier = [(output, 0)]
    seen = {output.name}
    while frontier:
        node, depth = frontier.pop(0)
        if node in rails:
            return depth
        for edge in node.edges:
            neighbor = edge.other(node)
            if neighbor.name not in seen:
                seen.add(neighbor.name)
                frontier.append((neighbor, depth + 1))
    return 0


@register
class StackDepthRule(LintRule):
    """Stack depth vs the characterization grid's voltage resolution."""

    rule_id = "SOL001"
    slug = "stack-depth"
    pack = "solver"
    default_severity = Severity.WARNING
    description = ("Deep series stacks space their node voltages "
                   "closer than the table grid pitch resolves.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        pitch = self._grid_pitch(ctx)
        for stage in ctx.stages:
            if not stage.outputs or not stage.edges:
                continue
            depth = stage_stack_depth(stage)
            if depth <= 0:
                continue
            loc = Location("stage", stage.name)
            if depth > MAX_RECOMMENDED_DEPTH:
                yield self.diag(
                    f"deepest pull path has {depth} series elements "
                    f"(recommended maximum {MAX_RECOMMENDED_DEPTH})",
                    loc,
                    hint="split the stage or accept degraded accuracy")
                continue
            if pitch is not None and stage.vdd / depth < 2.0 * pitch:
                yield self.diag(
                    f"deepest pull path of {depth} elements leaves "
                    f"~{stage.vdd / depth:.2f} V per node, under twice "
                    f"the table grid pitch ({pitch:.2f} V): bilinear "
                    "interpolation will dominate the region solves",
                    loc,
                    hint="characterize with a finer grid_step for this "
                         "design")

    @staticmethod
    def _grid_pitch(ctx: LintContext) -> Optional[float]:
        pitches = []
        for table in ctx.tables:
            grid = table.grid
            for axis in (grid.vs_values, grid.vg_values):
                if axis.size >= 2:
                    pitches.append(float(max(
                        axis[k + 1] - axis[k]
                        for k in range(axis.size - 1))))
        if pitches:
            return max(pitches)
        return ctx.grid_step


@register
class MilestoneFractionRule(LintRule):
    """Degenerate milestone-fraction schedules."""

    rule_id = "SOL002"
    slug = "milestone-fractions"
    pack = "solver"
    default_severity = Severity.ERROR
    description = ("Milestone fractions must be finite, inside "
                   "(0, 1.5] and strictly decreasing.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        options = ctx.options
        if options is None or not hasattr(options, "milestone_fractions"):
            return
        for problem in check_milestone_fractions(
                options.milestone_fractions):
            yield self.diag(problem, _opts_loc("milestone_fractions"),
                            hint="use a strictly decreasing schedule "
                                 "like QWMOptions' default")


@register
class NewtonSanityRule(LintRule):
    """Newton/scheduler controls that cannot converge."""

    rule_id = "SOL003"
    slug = "newton-sanity"
    pack = "solver"
    default_severity = Severity.ERROR
    description = ("Newton tolerances, iteration/retry limits and the "
                   "schedule time bound must be sane.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        options = ctx.options
        if options is None:
            return
        newton = getattr(options, "newton", None)
        if newton is not None:
            if getattr(newton, "abstol", 1.0) <= 0:
                yield self.diag(
                    f"newton.abstol is {newton.abstol:g} (must be "
                    "positive): the residual test can never pass",
                    _opts_loc("newton.abstol"),
                    hint="use a small positive residual tolerance, "
                         "e.g. 1e-10")
            if getattr(newton, "xtol", 1.0) <= 0:
                yield self.diag(
                    f"newton.xtol is {newton.xtol:g} (must be "
                    "positive)",
                    _opts_loc("newton.xtol"),
                    hint="use a small positive step tolerance")
            max_iter = getattr(newton, "max_iterations", 100)
            if max_iter < 2:
                yield self.diag(
                    f"newton.max_iterations is {max_iter} (must be "
                    ">= 2 to take a single corrected step)",
                    _opts_loc("newton.max_iterations"))
            elif max_iter < 10:
                yield self.diag(
                    f"newton.max_iterations is {max_iter}: region "
                    "solves routinely need ~10-40 iterations",
                    _opts_loc("newton.max_iterations"),
                    severity=Severity.WARNING,
                    hint="raise max_iterations toward the default 40")
        t_stop = getattr(options, "t_stop", None)
        if t_stop is not None and t_stop <= 0:
            yield self.diag(
                f"t_stop is {t_stop:g} s (must be positive)",
                _opts_loc("t_stop"))
        margin = getattr(options, "turn_on_margin", None)
        if margin is not None and margin < 0:
            yield self.diag(
                f"turn_on_margin is {margin:g} V (must be "
                "non-negative)",
                _opts_loc("turn_on_margin"))
        substeps = getattr(options, "cascade_substeps", None)
        if substeps is not None and substeps < 1:
            yield self.diag(
                f"cascade_substeps is {substeps} (must be >= 1)",
                _opts_loc("cascade_substeps"))
        retries = getattr(options, "max_retries", None)
        if retries is not None and retries < 1:
            yield self.diag(
                f"max_retries is {retries} (must be >= 1)",
                _opts_loc("max_retries"))


@register
class TelemetryBudgetRule(LintRule):
    """Tight Newton budgets are debugged blind without telemetry."""

    rule_id = "SOL004"
    slug = "telemetry-budget"
    pack = "solver"
    default_severity = Severity.WARNING
    description = ("A Newton iteration budget under 10 is prone to "
                   "convergence failures; enable telemetry before "
                   "debugging them.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        from repro.obs import telemetry

        options = ctx.options
        newton = getattr(options, "newton", None) if options else None
        if newton is None:
            return
        max_iter = getattr(newton, "max_iterations", 100)
        if max_iter >= 2 and max_iter < 10 and not telemetry().enabled:
            yield self.diag(
                f"newton.max_iterations is {max_iter} (< 10) while "
                "telemetry is disabled: convergence failures will "
                "leave no trace of which region or attempt failed",
                _opts_loc("telemetry"),
                hint="configure(ObsConfig(enabled=True)) — the "
                     "newton.convergence.failures counter and "
                     "qwm.region spans pinpoint failing regions")


@register
class FlightLedgerBudgetRule(LintRule):
    """Unbounded flight ledgers grow without limit in parallel runs."""

    rule_id = "SOL005"
    slug = "flight-ledger-budget"
    pack = "solver"
    default_severity = Severity.WARNING
    description = ("An enabled flight recorder with no event limit "
                   "accumulates every per-region event of every worker "
                   "for the whole run.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        from repro.obs.flight import flight

        recorder = flight()
        if not recorder.enabled:
            return
        if recorder.config.event_limit is not None:
            return
        execution = ctx.execution
        workers = getattr(execution, "workers", 1) if execution else 1
        backend = getattr(execution, "backend", "serial") \
            if execution else "serial"
        if workers <= 1 and backend == "serial":
            return
        yield self.diag(
            f"flight recorder enabled with event_limit=None (unbounded) "
            f"for a parallel run ({workers} workers, {backend} "
            "backend): every worker's per-region events accumulate in "
            "memory for the whole analysis",
            _opts_loc("flight.event_limit"),
            hint="set FlightConfig(event_limit=...) — the default "
                 "20000 keeps forensics for the most recent solves "
                 "while bounding memory")


# ======================================================================
# SOL006 — instrumentation inside per-iteration inner loops
# ======================================================================
#: Packages whose inner loops are the measured hot path.
_HOT_PACKAGES = ("core", "linalg", "spice", "devices")
#: Module-level telemetry/profiler helpers (called by bare name).
_BARE_INSTRUMENTATION = frozenset({
    "span", "inc", "observe", "set_gauge",
    "profile_phase", "profile_add"})
#: Method-style instrumentation sinks (``recorder.record(...)``).
_ATTR_INSTRUMENTATION = frozenset(
    _BARE_INSTRUMENTATION | {"record", "add_event"})
#: Loop headers that look like per-iteration solver loops.
_ITERATION_HINT = re.compile(
    r"iter|newton|step|converg|max_it|sweep", re.IGNORECASE)
#: Guard tests that mark a call as sampled/decimated.
_SAMPLING_HINT = re.compile(r"sample|every|stride|decim", re.IGNORECASE)


def _instrumentation_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name) and func.id in _BARE_INSTRUMENTATION:
        return func.id
    if isinstance(func, ast.Attribute) \
            and func.attr in _ATTR_INSTRUMENTATION:
        return func.attr
    return None


def _is_iteration_loop(node: ast.AST) -> bool:
    """While loops and iteration-named for loops count as inner loops."""
    if isinstance(node, ast.While):
        return True
    if isinstance(node, ast.For):
        header = f"{_unparse(node.target)} {_unparse(node.iter)}"
        return bool(_ITERATION_HINT.search(header))
    return False


def _block_leaves_loop(block: List[ast.stmt]) -> bool:
    """A branch ending in raise/return/break/continue is not the
    steady-state per-iteration path."""
    return bool(block) and isinstance(
        block[-1], (ast.Raise, ast.Return, ast.Break, ast.Continue))


def _contains(block: List[ast.stmt], node: ast.AST) -> bool:
    return any(node is child or any(node is sub
                                    for sub in ast.walk(child))
               for child in block)


@register
class HotLoopInstrumentationRule(LintRule):
    """Profiling hooks must not slow the hot path they measure."""

    rule_id = "SOL006"
    slug = "hot-loop-instrumentation"
    pack = "solver"
    default_severity = Severity.WARNING
    description = ("An instrumentation call inside a per-iteration "
                   "inner loop (Newton sweeps, time stepping) pays its "
                   "dict/lock cost every iteration; accumulate locally "
                   "and flush once outside the loop, or sample.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        code = _code(ctx)
        if code is None:
            return
        for source in code.parsed():
            if not _in_packages(source, _HOT_PACKAGES):
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _instrumentation_name(node)
                if name is None:
                    continue
                loop = self._enclosing_iteration_loop(source, node)
                if loop is None:
                    continue
                yield self.diag(
                    f"{name}() inside a per-iteration loop (line "
                    f"{loop.lineno}): the instrumentation cost is paid "
                    "on every iteration of the hot path it measures",
                    _loc(source, node.lineno),
                    hint="accumulate into a local counter and flush "
                         "once after the loop (profile_add / "
                         "PhaseFrame.count), or guard the call with a "
                         "sampling test (e.g. `if i % stride == 0`)")

    @staticmethod
    def _enclosing_iteration_loop(source, node: ast.Call
                                  ) -> Optional[ast.AST]:
        """The iteration loop the call runs per-iteration of, if any.

        Exempt when an enclosing branch (between call and loop) is
        sampled (``%``/sampling names in the test) or immediately
        leaves the loop body (ends in raise/return/break/continue —
        a failure/budget path, not the steady-state iteration).
        """
        cursor = node
        for ancestor in source.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                return None
            if isinstance(ancestor, ast.If):
                test = _unparse(ancestor.test)
                if "%" in test or _SAMPLING_HINT.search(test):
                    return None
                for block in (ancestor.body, ancestor.orelse):
                    if _contains(block, cursor) \
                            and _block_leaves_loop(block):
                        return None
            if _is_iteration_loop(ancestor):
                return ancestor
            cursor = ancestor
        return None
