"""Baseline gating for code-level lint findings.

A checked-in ``.lint-baseline.json`` records pre-existing findings that
are correct-by-design, each with a written justification.  A gated run
then distinguishes three populations:

* **new** findings — not in the baseline; these fail CI,
* **suppressed** findings — matched by an entry; reported to SARIF with
  a suppression marker but excluded from the gate,
* **stale** entries — baseline lines whose finding no longer exists
  (the bug was fixed); surfaced as ``BASE001-stale-baseline`` warnings
  so the file shrinks instead of rotting.

Entries match on ``(rule, path, symbol)`` — the enclosing function
rather than the line number — so ordinary edits don't invalidate the
baseline while a *new* instance of the same rule elsewhere still fails.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
)

#: Schema version of the baseline file itself.
BASELINE_SCHEMA_VERSION = 1
#: Rule ID of the synthetic "baseline entry no longer matches" warning.
STALE_BASELINE_ID = "BASE001-stale-baseline"

MatchKey = Tuple[str, str, str]


@dataclass(frozen=True)
class BaselineEntry:
    """One suppressed finding.

    Attributes:
        rule: rule ID (short ``"DET004"`` or full
            ``"DET004-float-equality"``).
        path: repo-relative file path as the analyzer reports it.
        symbol: enclosing function/class qualname (``"<module>"`` for
            module-level findings).
        reason: written justification — required; an empty reason is a
            load error, suppression must never be silent.
    """

    rule: str
    path: str
    symbol: str
    reason: str

    def matches(self, diagnostic: Diagnostic) -> bool:
        location = diagnostic.location
        if location.scope != "code":
            return False
        if (location.container or "") != self.path:
            return False
        if (location.element or "<module>") != self.symbol:
            return False
        return (diagnostic.rule == self.rule
                or diagnostic.rule.startswith(self.rule + "-"))


@dataclass
class BaselineResult:
    """Outcome of gating a report against a baseline.

    Attributes:
        report: kept (new) findings plus one stale-entry warning per
            unmatched baseline line, re-sorted.
        suppressed: findings excluded by the baseline (for SARIF).
        stale: baseline entries that matched nothing.
    """

    report: LintReport
    suppressed: List[Diagnostic]
    stale: List[BaselineEntry]


class Baseline:
    """A loaded baseline file."""

    def __init__(self, entries: Optional[List[BaselineEntry]] = None,
                 path: Optional[str] = None):
        self.entries: List[BaselineEntry] = list(entries or ())
        self.path = path

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Parse a baseline file; raises ValueError on a bad shape."""
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(
                f"baseline {path}: expected an object with 'entries'")
        version = data.get("schema_version")
        if version != BASELINE_SCHEMA_VERSION:
            raise ValueError(
                f"baseline {path}: schema_version {version!r} not "
                f"supported (expected {BASELINE_SCHEMA_VERSION})")
        entries: List[BaselineEntry] = []
        for index, raw in enumerate(data["entries"]):
            try:
                entry = BaselineEntry(
                    rule=str(raw["rule"]), path=str(raw["path"]),
                    symbol=str(raw.get("symbol", "<module>")),
                    reason=str(raw["reason"]))
            except (KeyError, TypeError) as exc:
                raise ValueError(
                    f"baseline {path}: entry {index} malformed "
                    f"({exc})") from None
            if not entry.reason.strip():
                raise ValueError(
                    f"baseline {path}: entry {index} "
                    f"({entry.rule} at {entry.path}) has no reason; "
                    "every suppression needs a written justification")
            entries.append(entry)
        return cls(entries, path=path)

    def to_json(self) -> Dict[str, object]:
        return {
            "schema_version": BASELINE_SCHEMA_VERSION,
            "entries": [
                {"rule": e.rule, "path": e.path, "symbol": e.symbol,
                 "reason": e.reason}
                for e in self.entries
            ],
        }

    # ------------------------------------------------------------------
    def apply(self, report: LintReport) -> BaselineResult:
        """Split a report into new vs suppressed, flag stale entries."""
        kept: List[Diagnostic] = []
        suppressed: List[Diagnostic] = []
        used: Dict[MatchKey, bool] = {
            (e.rule, e.path, e.symbol): False for e in self.entries}
        for diagnostic in report:
            entry = next((e for e in self.entries
                          if e.matches(diagnostic)), None)
            if entry is None:
                kept.append(diagnostic)
            else:
                used[(entry.rule, entry.path, entry.symbol)] = True
                suppressed.append(diagnostic)
        stale = [e for e in self.entries
                 if not used[(e.rule, e.path, e.symbol)]]
        for entry in stale:
            kept.append(Diagnostic(
                rule=STALE_BASELINE_ID, severity=Severity.WARNING,
                message=(f"baseline entry for {entry.rule} at "
                         f"{entry.path}:{entry.symbol} matched no "
                         "finding — the issue appears fixed"),
                location=Location("baseline", entry.path, entry.symbol),
                hint="remove the stale entry from the baseline file"))
        gated = LintReport(kept, rules_checked=report.rules_checked)
        return BaselineResult(report=gated, suppressed=suppressed,
                              stale=stale)


def discover_baseline(start: str) -> Optional[str]:
    """Walk up from ``start`` looking for a ``.lint-baseline.json``."""
    import os

    cursor = os.path.abspath(start)
    for _ in range(6):
        candidate = os.path.join(cursor, ".lint-baseline.json")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(cursor)
        if parent == cursor:
            break
        cursor = parent
    return None
