"""Interconnect rule pack: RC networks and coupling capacitors.

The decoder-tree experiments reduce long wires to π macromodels; a
negative branch resistance or capacitance anywhere upstream silently
corrupts the moments.  These rules inspect
:class:`~repro.interconnect.rc_network.RCTree` instances
(``ctx.rc_trees``), coupling-capacitor records (``ctx.coupling_caps``)
and wire-only islands of the flat netlist.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.circuit.netlist import GND_NODE, VDD_NODE
from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.runner import LintRule, register
from repro.lint.rules_erc import channel_components


@register
class NegativeRCRule(LintRule):
    """Negative or non-finite R/C values in an RC tree."""

    rule_id = "INT001"
    slug = "negative-rc"
    pack = "interconnect"
    default_severity = Severity.ERROR
    description = ("RC tree branch resistances and node capacitances "
                   "must be finite and non-negative.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for index, tree in enumerate(ctx.rc_trees):
            name = getattr(tree, "root", f"tree{index}")
            for node in tree.node_names:
                loc = Location("rc-tree", name, node)
                cap = tree.cap(node)
                if not math.isfinite(cap) or cap < 0:
                    yield self.diag(
                        f"node {node!r} has capacitance {cap:g} F "
                        "(must be finite and non-negative)",
                        loc,
                        hint="check the extraction that produced this "
                             "tree (add_cap accepts negative deltas)")
                if tree.parent(node) is None:
                    continue
                resistance = tree.resistance(node)
                if not math.isfinite(resistance) or resistance < 0:
                    yield self.diag(
                        f"branch to {node!r} has resistance "
                        f"{resistance:g} ohm (must be finite and "
                        "non-negative)",
                        loc, hint="fix the branch resistance")
                elif resistance == 0:
                    yield self.diag(
                        f"branch to {node!r} has zero resistance; the "
                        "node is electrically identical to its parent",
                        loc, severity=Severity.WARNING,
                        hint="collapse the node into its parent")


@register
class DisconnectedRCRule(LintRule):
    """Wire islands not attached to any transistor."""

    rule_id = "INT002"
    slug = "disconnected-rc"
    pack = "interconnect"
    default_severity = Severity.WARNING
    description = ("A wire subnetwork with no transistor and no rail "
                   "contact floats: it can never be driven.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.netlist is None:
            return
        for comp in channel_components(ctx.netlist):
            if comp["transistors"] or not comp["wires"]:
                continue
            if comp["rail_contact"]:
                continue
            nets = sorted(comp["nets"])
            shown = ", ".join(nets[:6])
            yield self.diag(
                f"wire island {{{shown}}} "
                f"({len(comp['wires'])} segment(s)) connects to no "
                "transistor",
                Location("netlist", ctx.design_name, nets[0]),
                hint="connect the wires to a driving stage or delete "
                     "them")


@register
class CouplingSelfLoopRule(LintRule):
    """Degenerate coupling capacitors."""

    rule_id = "INT003"
    slug = "coupling-self-loop"
    pack = "interconnect"
    default_severity = Severity.ERROR
    description = ("A coupling capacitor needs two distinct non-rail "
                   "terminals and a non-negative value.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for cc in ctx.coupling_caps:
            loc = Location("netlist", ctx.design_name, cc.name)
            if cc.net_a == cc.net_b:
                yield self.diag(
                    f"coupling capacitor {cc.name!r} is a self-loop "
                    f"on net {cc.net_a!r}",
                    loc, hint="a capacitor between a net and itself "
                              "has no effect; remove it")
            if cc.cap < 0 or not math.isfinite(cc.cap):
                yield self.diag(
                    f"coupling capacitor {cc.name!r} has value "
                    f"{cc.cap:g} F (must be finite and non-negative)",
                    loc, hint="fix the extracted coupling value")
            for net in (cc.net_a, cc.net_b):
                if net in (VDD_NODE, GND_NODE):
                    yield self.diag(
                        f"coupling capacitor {cc.name!r} terminal "
                        f"{net!r} is a supply rail: that is load, not "
                        "coupling",
                        loc, severity=Severity.WARNING,
                        hint="model rail capacitance as a grounded "
                             "load instead")
