"""SARIF 2.1.0 export for lint reports.

SARIF (Static Analysis Results Interchange Format) is what CI code-
scanning surfaces ingest for inline PR annotation.  The export covers
every diagnostic of a run — including baseline-suppressed findings,
which carry an ``external`` suppression record so consumers show them
as reviewed-and-accepted instead of new.

Only the stable core of the format is emitted: tool driver with rule
metadata, one result per diagnostic with a physical location (file +
line for code findings, a logical location string otherwise).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.lint.diagnostics import Diagnostic, LintReport, Severity

#: SARIF spec version emitted.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning",
          Severity.INFO: "note"}


def _rule_descriptor(rule_cls: Any) -> Dict[str, Any]:
    instance = rule_cls()
    return {
        "id": instance.full_id,
        "name": instance.slug.replace("-", " ").title().replace(" ", ""),
        "shortDescription": {
            "text": instance.description or instance.slug},
        "defaultConfiguration": {
            "level": _LEVEL[instance.default_severity]},
        "properties": {"pack": instance.pack},
    }


def _result(diagnostic: Diagnostic, suppressed: bool,
            path_prefix: str) -> Dict[str, Any]:
    location = diagnostic.location
    entry: Dict[str, Any] = {
        "ruleId": diagnostic.rule,
        "level": _LEVEL[diagnostic.severity],
        "message": {"text": diagnostic.message
                    + (f" (hint: {diagnostic.hint})"
                       if diagnostic.hint else "")},
    }
    if location.scope == "code" and location.container:
        uri = (f"{path_prefix}/{location.container}"
               if path_prefix else location.container)
        physical: Dict[str, Any] = {
            "artifactLocation": {"uri": uri}}
        if location.line is not None:
            physical["region"] = {"startLine": location.line}
        entry["locations"] = [{"physicalLocation": physical}]
    else:
        entry["locations"] = [{
            "logicalLocations": [{
                "fullyQualifiedName": str(location)}]}]
    if suppressed:
        entry["suppressions"] = [{
            "kind": "external",
            "justification": "recorded in .lint-baseline.json"}]
    return entry


def to_sarif(report: LintReport,
             suppressed: Sequence[Diagnostic] = (),
             path_prefix: str = "src/repro",
             tool_version: Optional[str] = None) -> Dict[str, Any]:
    """Render a report (plus suppressed findings) as a SARIF log.

    Args:
        report: the gated report (new findings + stale warnings).
        suppressed: baseline-suppressed findings, emitted with a
            suppression record.
        path_prefix: prefix mapping analyzer-relative paths onto
            repo-relative URIs (the analyzer scans ``src/repro``).
        tool_version: overrides the package version string.
    """
    from repro.lint.runner import all_rule_classes

    if tool_version is None:
        try:
            import repro

            tool_version = getattr(repro, "__version__", "0")
        except ImportError:  # pragma: no cover - defensive
            tool_version = "0"
    results: List[Dict[str, Any]] = []
    for diagnostic in report:
        results.append(_result(diagnostic, False, path_prefix))
    for diagnostic in suppressed:
        results.append(_result(diagnostic, True, path_prefix))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://github.com/repro/repro",
                    "version": str(tool_version),
                    "rules": [_rule_descriptor(cls)
                              for cls in all_rule_classes()],
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
