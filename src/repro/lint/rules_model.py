"""Model rule pack: characterized device-table sanity.

QWM trusts the tabular I/V model blindly inside its Newton solves; a
non-finite fit parameter or a non-monotone current slice turns into a
cryptic ``NewtonConvergenceError`` regions deep into the cascade.
These rules inspect :class:`~repro.devices.table_model.TableDeviceModel`
instances (``ctx.tables``) and the corner library (``ctx.corners``)
before any solve.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, List, Tuple

import numpy as np

from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.runner import LintRule, register

#: Currents more negative than this are flagged as non-physical [A].
NEGATIVE_CURRENT_TOL = -1e-8
#: Fractional back-slide (vs the slice maximum) tolerated before a
#: slice counts as non-monotone; least-squares fits wiggle a little at
#: the triode/saturation boundary.
MONOTONE_TOL = 0.02


def _table_name(table: Any) -> str:
    grid = table.grid
    return f"{grid.polarity}mos-L{grid.l_ref * 1e9:.0f}n"


def _table_loc(table: Any, element: str = None) -> Location:
    return Location("table", _table_name(table), element)


def _fit_params(fit: Any) -> List[float]:
    return [fit.s1, fit.s0, fit.t2, fit.t1, fit.t0, fit.vth, fit.vdsat]


@register
class NonFiniteTableRule(LintRule):
    """NaN/Inf anywhere in a characterized table."""

    rule_id = "MOD001"
    slug = "nonfinite-table"
    pack = "model"
    default_severity = Severity.ERROR
    description = "All stored table parameters must be finite."

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for table in ctx.tables:
            grid = table.grid
            bad: List[str] = []
            if not np.all(np.isfinite(grid.vth_plane)):
                bad.append("vth plane")
            if not np.all(np.isfinite(grid.vdsat_plane)):
                bad.append("vdsat plane")
            broken_fits = 0
            for row in grid.fits:
                for fit in row:
                    if not all(math.isfinite(p)
                               for p in _fit_params(fit)):
                        broken_fits += 1
            if broken_fits:
                bad.append(f"{broken_fits} fit entr"
                           f"{'y' if broken_fits == 1 else 'ies'}")
            if bad:
                yield self.diag(
                    "table contains non-finite parameters: "
                    + ", ".join(bad),
                    _table_loc(table),
                    hint="re-characterize the device; inspect the "
                         "golden model for the offending bias points")


@register
class NonMonotoneIVRule(LintRule):
    """I/V slices that decrease with vds or go negative."""

    rule_id = "MOD002"
    slug = "nonmonotone-iv"
    pack = "model"
    default_severity = Severity.WARNING
    description = ("Forward channel current must be non-negative and "
                   "non-decreasing in vds at every (Vs, Vg) point.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for table in ctx.tables:
            grid = table.grid
            offenders: List[Tuple[float, float, str]] = []
            vdd = grid.vdd
            for i, vs in enumerate(grid.vs_values):
                vds_max = max(vdd - float(vs), 0.1)
                samples = np.linspace(0.0, vds_max, 9)
                for j, vg in enumerate(grid.vg_values):
                    fit = grid.fits[i][j]
                    currents = np.array(
                        [fit.current(float(v)) for v in samples])
                    peak = float(np.max(np.abs(currents)))
                    if float(np.min(currents)) < min(
                            NEGATIVE_CURRENT_TOL,
                            -MONOTONE_TOL * peak):
                        offenders.append((float(vs), float(vg),
                                          "negative current"))
                        continue
                    drop = float(np.max(currents[:-1] - currents[1:]))
                    if drop > MONOTONE_TOL * peak + 1e-9:
                        offenders.append((float(vs), float(vg),
                                          "non-monotone in vds"))
            if offenders:
                vs0, vg0, kind = offenders[0]
                yield self.diag(
                    f"{len(offenders)} of "
                    f"{grid.vs_values.size * grid.vg_values.size} "
                    f"(Vs, Vg) slices are ill-behaved; first: "
                    f"Vs={vs0:.2f} V, Vg={vg0:.2f} V ({kind})",
                    _table_loc(table, f"vs={vs0:.2f},vg={vg0:.2f}"),
                    hint="refine the vds sampling or the fit orders "
                         "for these bias points")


@register
class NonPositiveCapacitanceRule(LintRule):
    """Zero/negative device or node capacitances."""

    rule_id = "MOD003"
    slug = "nonpositive-capacitance"
    pack = "model"
    default_severity = Severity.ERROR
    description = ("Device capacitances must be positive and node "
                   "load capacitances non-negative; QWM divides by "
                   "node capacitance in every region.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for table in ctx.tables:
            grid = table.grid
            for label, value in (
                    ("inputcap", table.inputcap(grid.w_ref, grid.l_ref)),
                    ("srccap", table.srccap(grid.w_ref, grid.l_ref)),
                    ("snkcap", table.snkcap(grid.w_ref, grid.l_ref))):
                if not math.isfinite(value) or value <= 0:
                    yield self.diag(
                        f"{label} is {value:g} F at the reference "
                        "geometry (must be positive)",
                        _table_loc(table, label),
                        hint="check the technology's capacitance "
                             "parameters")
        for stage in ctx.stages:
            for node in stage.nodes:
                if not math.isfinite(node.load_cap) or node.load_cap < 0:
                    yield self.diag(
                        f"node {node.name!r} has load capacitance "
                        f"{node.load_cap:g} F (must be finite and "
                        "non-negative)",
                        Location("stage", stage.name, node.name),
                        hint="fix the load annotation on this node")


@register
class GridCoverageRule(LintRule):
    """Table grid does not cover the operating voltage range."""

    rule_id = "MOD004"
    slug = "grid-coverage"
    pack = "model"
    default_severity = Severity.WARNING
    description = ("The (Vs, Vg) grid must span [0, vdd]; queries "
                   "outside the grid are clipped, silently flattening "
                   "the I/V surface.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        tol = 1e-9
        for table in ctx.tables:
            grid = table.grid
            vdd = grid.vdd
            for label, axis in (("Vs", grid.vs_values),
                                ("Vg", grid.vg_values)):
                lo, hi = float(axis[0]), float(axis[-1])
                if lo > tol or hi < vdd - tol:
                    yield self.diag(
                        f"{label} axis covers [{lo:.2f}, {hi:.2f}] V "
                        f"but the stage operates on [0, {vdd:.2f}] V",
                        _table_loc(table, label),
                        hint="characterize over the full supply range")
            if ctx.tech is not None:
                tech_vdd = getattr(ctx.tech, "vdd", None)
                if tech_vdd is not None and abs(vdd - tech_vdd) > 1e-9:
                    yield self.diag(
                        f"table characterized at vdd={vdd:.2f} V but "
                        f"the technology supplies {tech_vdd:.2f} V",
                        _table_loc(table),
                        severity=Severity.ERROR,
                        hint="re-characterize at the operating supply")


@register
class CornerMismatchRule(LintRule):
    """Corner library inconsistent with the nominal technology."""

    rule_id = "MOD005"
    slug = "corner-mismatch"
    pack = "model"
    default_severity = Severity.WARNING
    description = ("Corner technologies must share supply/geometry "
                   "with nominal and keep physical device parameters.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.tech is None:
            return
        nominal = ctx.tech
        for name, tech_c in sorted(ctx.corners.items()):
            loc = Location("corner", name)
            if abs(tech_c.vdd - nominal.vdd) > 1e-9:
                yield self.diag(
                    f"corner vdd {tech_c.vdd:g} V differs from nominal "
                    f"{nominal.vdd:g} V",
                    loc, hint="corners skew devices, not supplies")
            if abs(tech_c.lmin - nominal.lmin) > 1e-15:
                yield self.diag(
                    f"corner lmin {tech_c.lmin:g} m differs from "
                    f"nominal {nominal.lmin:g} m",
                    loc, hint="corners must share the drawn geometry")
            for pol, params in (("nmos", tech_c.nmos),
                                ("pmos", tech_c.pmos)):
                if params.kp <= 0 or params.vth0 <= 0:
                    yield self.diag(
                        f"corner {pol} parameters are non-physical "
                        f"(kp={params.kp:g}, vth0={params.vth0:g})",
                        Location("corner", name, pol),
                        severity=Severity.ERROR,
                        hint="check the corner skew fractions")
