"""Structured lint diagnostics.

The vocabulary every rule pack emits into: a :class:`Diagnostic` is one
finding with a stable rule ID (``ERC001-floating-gate``), a severity, a
:class:`Location` and a human-readable message plus an optional fix
hint.  A :class:`LintReport` is the ordered collection a
:class:`~repro.lint.runner.LintRunner` produces, with text and JSON
renderings for the CLI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

#: Version of the ``repro lint`` JSON rendering (``LintReport.to_json``
#: and the CLI ``--format json`` / ``--json`` outputs).  Bump on any
#: key rename/removal or semantic change so CI consumers can pin.
#: History: 1 = PR 1 shape (diagnostics + summary); 2 = adds this
#: field itself, optional per-location ``line`` and, in ``--code``
#: runs, a ``baseline`` block.
LINT_JSON_SCHEMA_VERSION = 2


class Severity(enum.Enum):
    """Severity of a diagnostic, ordered error > warning > info."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort rank (errors first)."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    @classmethod
    def parse(cls, text: "Severity | str") -> "Severity":
        """Coerce a string (``"error"``/``"warning"``/``"info"``)."""
        if isinstance(text, cls):
            return text
        try:
            return cls(str(text).strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.value for s in cls]}") from None


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points.

    Attributes:
        scope: the kind of object inspected (``"netlist"``, ``"stage"``,
            ``"table"``, ``"options"``, ``"rc-tree"``, ``"corner"``,
            ``"code"``).
        container: name of the inspected object (design, stage, table,
            or — for code findings — the repo-relative file path).
        element: the offending member (node, net, device, parameter, or
            enclosing function), when one can be singled out.
        line: 1-based source line, for code-level findings only.
    """

    scope: str
    container: Optional[str] = None
    element: Optional[str] = None
    line: Optional[int] = None

    def __str__(self) -> str:
        parts = [self.scope]
        if self.container:
            parts.append(self.container)
        if self.element:
            parts.append(self.element)
        text = ":".join(parts)
        if self.line is not None:
            text += f":L{self.line}"
        return text

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"scope": self.scope,
                                "container": self.container,
                                "element": self.element}
        if self.line is not None:
            data["line"] = self.line
        return data


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes:
        rule: stable full rule ID, e.g. ``"ERC001-floating-gate"``.
        severity: error / warning / info.
        message: human-readable description of the violation.
        location: what the finding points at.
        hint: optional fix suggestion.
    """

    rule: str
    severity: Severity
    message: str
    location: Location
    hint: Optional[str] = None

    @property
    def sort_key(self):
        return (self.severity.rank, self.rule, str(self.location),
                self.message)

    def format(self) -> str:
        """One-line text rendering."""
        text = (f"{self.severity.value:<7} {self.rule} "
                f"at {self.location}: {self.message}")
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.to_json(),
        }
        if self.hint is not None:
            data["hint"] = self.hint
        return data


class LintReport:
    """An ordered, severity-sorted collection of diagnostics."""

    def __init__(self, diagnostics: Sequence[Diagnostic] = (),
                 rules_checked: int = 0):
        self.diagnostics: List[Diagnostic] = sorted(
            diagnostics, key=lambda d: d.sort_key)
        self.rules_checked = rules_checked

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were produced."""
        return not self.errors

    @property
    def rule_ids(self) -> List[str]:
        """Distinct rule IDs present, sorted."""
        return sorted({d.rule for d in self.diagnostics})

    # ------------------------------------------------------------------
    def summary(self) -> str:
        counts = (f"{len(self.errors)} error(s), "
                  f"{len(self.warnings)} warning(s), "
                  f"{len(self.infos)} info(s)")
        if self.rules_checked:
            counts += f" [{self.rules_checked} rule(s) checked]"
        return counts

    def format_text(self) -> str:
        """Multi-line text rendering (diagnostics + summary)."""
        lines = [d.format() for d in self.diagnostics]
        if not lines:
            lines.append("clean: no diagnostics")
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """JSON-serializable rendering (stable ordering)."""
        return {
            "schema_version": LINT_JSON_SCHEMA_VERSION,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
                "rules_checked": self.rules_checked,
            },
        }
