"""Rule base class, registry and the lint runner.

Rules register themselves with :func:`register`; a :class:`LintRunner`
instantiates the selected rules, runs each over a
:class:`~repro.lint.context.LintContext`, applies per-rule severity
overrides and collects everything into a
:class:`~repro.lint.diagnostics.LintReport`.  A rule that crashes is
itself reported as a diagnostic (``LNT999-rule-crash``) instead of
aborting the run.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Type

from repro.lint.context import LintContext
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
)

#: Rule ID of the internal "a rule itself crashed" diagnostic.
RULE_CRASH_ID = "LNT999-rule-crash"


class LintRule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Diagnostic` records (typically built with
    :meth:`diag` so the rule ID and default severity are filled in).

    Attributes:
        rule_id: stable short ID, e.g. ``"ERC001"``.
        slug: kebab-case summary appended to the ID.
        pack: rule-pack name (``"erc"``, ``"model"``, ``"solver"``,
            ``"interconnect"``).
        default_severity: severity when not overridden by the runner.
        description: one-line human description (docs / ``--list``).
    """

    rule_id: str = "LNT000"
    slug: str = "unnamed"
    pack: str = "misc"
    default_severity: Severity = Severity.ERROR
    description: str = ""

    @property
    def full_id(self) -> str:
        """The stable full ID, e.g. ``"ERC001-floating-gate"``."""
        return f"{self.rule_id}-{self.slug}"

    def diag(self, message: str, location: Location,
             hint: Optional[str] = None,
             severity: Optional[Severity] = None) -> Diagnostic:
        """Build a diagnostic attributed to this rule."""
        return Diagnostic(rule=self.full_id,
                          severity=severity or self.default_severity,
                          message=message, location=location, hint=hint)

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for the given context."""
        raise NotImplementedError
        yield  # pragma: no cover


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: add a rule to the global registry."""
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate lint rule ID {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rule_classes() -> List[Type[LintRule]]:
    """Every registered rule class, in rule-ID order."""
    _load_builtin_packs()
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def rule_packs() -> List[str]:
    """Names of the registered rule packs, sorted."""
    return sorted({cls.pack for cls in all_rule_classes()})


def _load_builtin_packs() -> None:
    """Import the built-in rule modules (registration side effect)."""
    from repro.lint import (  # noqa: F401
        rules_code,
        rules_erc,
        rules_interconnect,
        rules_model,
        rules_solver,
    )


def _matches(rule: LintRule, token: str) -> bool:
    """True when ``token`` names this rule (ID, full ID or slug)."""
    token = token.strip().lower()
    return token in (rule.rule_id.lower(), rule.full_id.lower(),
                     rule.slug.lower())


class LintRunner:
    """Runs a selected set of rules over a context.

    Args:
        rules: explicit rule instances; defaults to every registered
            rule (optionally filtered by ``packs``).
        packs: when given, keep only rules from these packs.
        disable: rule IDs / slugs to skip (``"ERC001"``,
            ``"ERC001-floating-gate"`` and ``"floating-gate"`` all
            address the same rule).
        severity_overrides: rule ID -> severity (``Severity`` or
            string) replacing the rule's default.
        min_severity: drop collected diagnostics below this severity
            (``Severity.INFO`` keeps everything).
    """

    def __init__(self, rules: Optional[Iterable[LintRule]] = None,
                 packs: Optional[Iterable[str]] = None,
                 disable: Iterable[str] = (),
                 severity_overrides: Optional[Dict[str, object]] = None,
                 min_severity: Severity = Severity.INFO):
        if rules is None:
            rules = [cls() for cls in all_rule_classes()]
        self.rules: List[LintRule] = list(rules)
        if packs is not None:
            wanted = {p.strip().lower() for p in packs}
            self.rules = [r for r in self.rules
                          if r.pack.lower() in wanted]
        disable = list(disable)
        if disable:
            self.rules = [r for r in self.rules
                          if not any(_matches(r, tok) for tok in disable)]
        self.severity_overrides: Dict[str, Severity] = {}
        for key, value in (severity_overrides or {}).items():
            self.severity_overrides[key] = Severity.parse(value)
        self.min_severity = min_severity

    # ------------------------------------------------------------------
    def _override_for(self, rule: LintRule) -> Optional[Severity]:
        for key, severity in self.severity_overrides.items():
            if _matches(rule, key):
                return severity
        return None

    def run(self, ctx: LintContext) -> LintReport:
        """Run every selected rule; never raises from a rule body."""
        found: List[Diagnostic] = []
        for rule in self.rules:
            override = self._override_for(rule)
            try:
                produced = list(rule.check(ctx))
            except Exception as exc:  # pragma: no cover - defensive
                found.append(Diagnostic(
                    rule=RULE_CRASH_ID, severity=Severity.ERROR,
                    message=(f"rule {rule.full_id} crashed: "
                             f"{type(exc).__name__}: {exc}"),
                    location=Location("lint", ctx.design_name,
                                      rule.full_id)))
                continue
            for diagnostic in produced:
                if override is not None:
                    diagnostic = Diagnostic(
                        rule=diagnostic.rule, severity=override,
                        message=diagnostic.message,
                        location=diagnostic.location,
                        hint=diagnostic.hint)
                if diagnostic.severity.rank <= self.min_severity.rank:
                    found.append(diagnostic)
        return LintReport(found, rules_checked=len(self.rules))


class PreflightError(ValueError):
    """Raised by the opt-in pre-simulation hooks on lint errors."""

    def __init__(self, report: LintReport, what: str = "design"):
        self.report = report
        problems = "; ".join(d.format() for d in report.errors)
        super().__init__(
            f"lint preflight failed for {what}: {problems}")


# ----------------------------------------------------------------------
# Convenience entry points
# ----------------------------------------------------------------------
def lint_netlist(netlist, tech=None, **runner_kwargs) -> LintReport:
    """Lint a flat netlist (extraction attempted automatically)."""
    ctx = LintContext.from_netlist(netlist, tech=tech)
    return LintRunner(**runner_kwargs).run(ctx)


def lint_stage(stage, tech=None, options=None,
               **runner_kwargs) -> LintReport:
    """Lint a single logic stage."""
    ctx = LintContext.from_stage(stage, tech=tech, options=options)
    return LintRunner(**runner_kwargs).run(ctx)


def lint_code(root: Optional[str] = None, **runner_kwargs) -> LintReport:
    """Run the code-level rule pack over a source tree.

    Args:
        root: directory to scan; defaults to the installed ``repro``
            package sources.  The report is *unbaselined* — apply a
            :class:`repro.lint.baseline.Baseline` for gating.
    """
    from repro.lint.code_context import CodeContext, default_scan_root

    code = CodeContext.from_tree(root or default_scan_root())
    ctx = LintContext.from_code(code)
    # The solver pack rides along for its code-context rules (SOL006
    # hot-loop instrumentation); its option/stage rules no-op here
    # because a pure code context carries neither.
    runner_kwargs.setdefault("packs", ["code", "solver"])
    return LintRunner(**runner_kwargs).run(ctx)


def preflight(ctx: LintContext, what: str = "design",
              packs: Optional[Iterable[str]] = None) -> LintReport:
    """Run error-severity rules over a context; raise on any error.

    The opt-in hook :class:`~repro.core.engine.WaveformEvaluator` and
    :class:`~repro.analysis.sta.StaticTimingAnalyzer` call before
    burning solver time.

    Raises:
        PreflightError: when any error-severity diagnostic is found.
    """
    runner = LintRunner(packs=packs, min_severity=Severity.ERROR)
    report = runner.run(ctx)
    if not report.ok:
        raise PreflightError(report, what=what)
    return report
