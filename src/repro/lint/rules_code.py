"""Code-level rule pack: determinism & concurrency-safety lint.

The repo's determinism guarantees (parallel == serial bit-for-bit,
replayable failure bundles, seeded chaos) are enforced behaviorally by
the test suites; this pack enforces them *statically* over the repo's
own sources so a future change can't quietly break the contract with an
unordered ``set`` iteration, an unseeded RNG or a module global mutated
from a worker.  Rules walk a :class:`~repro.lint.code_context.CodeContext`
(attached to the shared ``LintContext`` as ``ctx.code``) and no-op when
none is attached, so the pack coexists with the netlist packs in one
runner.

Two families:

* ``DET00x`` — determinism: unordered iteration feeding ordered output,
  unseeded RNGs, wall-clock reads in result-affecting code, float
  equality in numeric kernels, filesystem-order dependence.
* ``CONC00x`` — concurrency: module-global mutation from worker-
  reachable functions (via :mod:`repro.lint.callgraph`), unlocked
  shared-object mutation in lock-disciplined classes, exception
  swallowing, env mutation near worker pools.

All heuristics are intentionally name-based and conservative; findings
that are correct-by-design are recorded in ``.lint-baseline.json`` with
a written justification rather than silenced in code.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.callgraph import CallGraph
from repro.lint.code_context import CodeContext, SourceFile
from repro.lint.context import LintContext
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.runner import LintRule, register

#: Module-label first segments whose code feeds solver results, arrival
#: ordering or emitted reports (DET001/DET003 scope).
RESULT_PACKAGES = ("core", "linalg", "spice", "analysis", "obs",
                   "interconnect", "circuit", "devices", "resilience",
                   "baselines", "io")
#: Numeric-kernel packages where float ``==`` is (almost) never right.
KERNEL_PACKAGES = ("core", "linalg", "spice")
#: Modules that *are* the fault/chaos harness: deliberate randomness
#: lives here (always behind a seeded Generator).
HARNESS_MODULES = ("resilience.faults", "resilience.chaos")
#: Assignment-target names that mark a wall-clock read as a metrics /
#: timeout sink rather than result-affecting data.
_TIMING_SINK_TARGET = re.compile(
    r"start|t0|now|deadline|elapsed|wall|stamp|submitted|began|created|"
    r"tic|toc", re.IGNORECASE)
#: Call names that are telemetry/trace sinks (wall-clock may flow in).
_SINK_CALLS = {"inc", "observe", "record", "set", "set_gauge",
               "add_event", "log", "debug", "info", "warning", "error"}
#: Container methods that mutate their receiver in place.
_MUTATING_METHODS = {"append", "extend", "insert", "add", "update",
                     "pop", "popitem", "clear", "remove", "discard",
                     "setdefault", "appendleft", "popleft"}
#: Loop-body calls that materialize iteration order.
_ORDER_SINK_METHODS = {"append", "extend", "insert", "appendleft",
                       "write", "writelines", "put"}
#: Filesystem-enumeration callables returning OS-ordered listings.
_FS_ORDER_ATTRS = {"listdir", "scandir", "iterdir", "rglob", "iglob",
                   "glob"}


def _code(ctx: LintContext) -> Optional[CodeContext]:
    return getattr(ctx, "code", None)


def _loc(source: SourceFile, lineno: int) -> Location:
    return Location("code", source.relpath, source.symbol_at(lineno),
                    line=lineno)


def _in_packages(source: SourceFile, packages: Tuple[str, ...]) -> bool:
    head = source.module.split(".", 1)[0]
    return head in packages


def _callgraph(code: CodeContext) -> CallGraph:
    graph = getattr(code, "_callgraph", None)
    if graph is None:
        graph = CallGraph(code)
        code._callgraph = graph  # type: ignore[attr-defined]
    return graph


def _qualname(source: SourceFile, lineno: int) -> str:
    return f"{source.relpath}::{source.symbol_at(lineno)}"


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)  # type: ignore[attr-defined]
    except (AttributeError, ValueError, RecursionError):
        return ""  # pragma: no cover - py<3.9 / pathological AST


def _under_lock(source: SourceFile, node: ast.AST) -> bool:
    """True when ``node`` sits inside a ``with <something lock-ish>``."""
    for ancestor in source.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                if "lock" in _unparse(item.context_expr).lower():
                    return True
    return False


# ======================================================================
# CODE001 — unparseable source
# ======================================================================
@register
class UnparseableSourceRule(LintRule):
    """Files the analyzer could not parse get a diagnostic, not a skip."""

    rule_id = "CODE001"
    slug = "unparseable-source"
    pack = "code"
    default_severity = Severity.ERROR
    description = ("A scanned source file failed to parse; none of the "
                   "code rules could check it.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        code = _code(ctx)
        if code is None:
            return
        for relpath, message in code.parse_errors:
            yield self.diag(
                f"syntax error: {message}",
                Location("code", relpath, "<module>"),
                hint="fix the syntax error so the determinism rules "
                     "can analyze the file")


# ======================================================================
# DET001 — unordered set iteration feeding ordered output
# ======================================================================
def _known_set_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    text = _unparse(annotation)
    return bool(re.search(r"\b([Ss]et|[Ff]rozen[Ss]et|frozenset)\b",
                          text))


class _SetScope:
    """Known-unordered names within one function/module scope."""

    def __init__(self, inherited: Optional[Set[str]] = None):
        self.names: Set[str] = set(inherited or ())

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) \
                    and node.func.id in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("union", "intersection",
                                           "difference",
                                           "symmetric_difference",
                                           "copy") \
                    and self.is_set_expr(node.func.value):
                return True
        if isinstance(node, ast.BinOp) \
                and isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                         ast.Sub, ast.BitXor)):
            return (self.is_set_expr(node.left)
                    or self.is_set_expr(node.right))
        return False

    def is_unordered_iterable(self, node: ast.expr) -> bool:
        """Set-valued, or a thin order-preserving wrapper around one."""
        if self.is_set_expr(node):
            return True
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id in ("list", "tuple", "iter",
                                     "enumerate", "reversed") \
                and node.args:
            return self.is_unordered_iterable(node.args[0])
        return False

    def learn(self, statements: List[ast.stmt],
              args: Optional[ast.arguments] = None) -> None:
        if args is not None:
            every = list(args.posonlyargs) + list(args.args) \
                + list(args.kwonlyargs)
            for arg in every:
                if _known_set_annotation(arg.annotation):
                    self.names.add(arg.arg)
        # Two passes so `b = a | extra` learns from a later-learned `a`.
        for _ in range(2):
            for stmt in statements:
                if isinstance(stmt, ast.Assign) \
                        and len(stmt.targets) == 1 \
                        and isinstance(stmt.targets[0], ast.Name):
                    if self.is_set_expr(stmt.value):
                        self.names.add(stmt.targets[0].id)
                elif isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name) \
                        and _known_set_annotation(stmt.annotation):
                    self.names.add(stmt.target.id)


def _order_sink_in(body: List[ast.stmt]) -> Optional[str]:
    """What (if anything) inside a loop body materializes order."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.AugAssign):
                return "a numeric/sequence accumulation"
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "a yielded sequence"
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _ORDER_SINK_METHODS:
                    return f"'.{node.func.attr}()' list building/output"
                if isinstance(node.func, ast.Name) \
                        and node.func.id == "print":
                    return "printed output"
    return None


@register
class UnorderedIterationRule(LintRule):
    """Set iteration order must not reach accumulators or output."""

    rule_id = "DET001"
    slug = "unordered-iteration"
    pack = "code"
    default_severity = Severity.ERROR
    description = ("Iterating an unordered set/frozenset into an "
                   "accumulator, list build or emitted output makes "
                   "results depend on hash order.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        code = _code(ctx)
        if code is None:
            return
        for source in code.parsed():
            if not _in_packages(source, RESULT_PACKAGES):
                continue
            yield from self._check_scope(source, source.tree, None,
                                         _SetScope())

    @staticmethod
    def _own_nodes(scope_node: ast.AST) -> Iterator[ast.AST]:
        """Descendants of a scope, not entering nested defs/classes."""
        stack = list(ast.iter_child_nodes(scope_node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_scope(self, source: SourceFile, scope_node: ast.AST,
                     args: Optional[ast.arguments],
                     scope: _SetScope) -> Iterator[Diagnostic]:
        own = list(self._own_nodes(scope_node))
        scope.learn([n for n in own if isinstance(n, ast.stmt)], args)
        for node in own:
            if isinstance(node, ast.For) \
                    and scope.is_unordered_iterable(node.iter):
                sink = _order_sink_in(node.body)
                if sink is not None:
                    what = _unparse(node.iter) or "<set>"
                    yield self.diag(
                        f"iteration over unordered {what!r} feeds "
                        f"{sink}: the result depends on hash order",
                        _loc(source, node.lineno),
                        hint="iterate sorted(...) or use an insertion-"
                             "ordered dict keyed collection")
            elif isinstance(node, ast.ListComp) \
                    and scope.is_unordered_iterable(
                        node.generators[0].iter) \
                    and not self._feeds_order_free(source, node):
                yield self.diag(
                    "list comprehension over an unordered set "
                    "materializes hash order",
                    _loc(source, node.lineno),
                    hint="wrap the iterable in sorted(...)")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "join" and node.args \
                    and scope.is_unordered_iterable(node.args[0]):
                yield self.diag(
                    "str.join over an unordered set emits text in "
                    "hash order",
                    _loc(source, node.lineno),
                    hint="join sorted(...) instead")
        # Nested scopes inherit the names known here.
        for node in ast.walk(scope_node):
            if node is scope_node:
                continue
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)) \
                    and self._direct_scope_parent(source, node) \
                    is scope_node:
                yield from self._check_scope(source, node, node.args,
                                            _SetScope(scope.names))
            elif isinstance(node, ast.ClassDef) \
                    and self._direct_scope_parent(source, node) \
                    is scope_node:
                yield from self._check_scope(source, node, None,
                                            _SetScope(scope.names))

    @staticmethod
    def _direct_scope_parent(source: SourceFile,
                             node: ast.AST) -> Optional[ast.AST]:
        """Nearest enclosing def/class/module of ``node``."""
        for ancestor in source.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.ClassDef,
                                     ast.Module)):
                return ancestor
        return None

    @staticmethod
    def _feeds_order_free(source: SourceFile, node: ast.AST) -> bool:
        """Comprehension result immediately re-sorted or re-set?"""
        parent = source.parent(node)
        if isinstance(parent, ast.Call) \
                and isinstance(parent.func, ast.Name) \
                and parent.func.id in ("sorted", "set", "frozenset",
                                       "sum", "max", "min", "len",
                                       "any", "all"):
            return True
        return False


# ======================================================================
# DET002 — unseeded RNG construction / global-RNG draws
# ======================================================================
class _RngImports:
    """Per-file import aliases relevant to RNG auditing."""

    def __init__(self, tree: ast.Module):
        self.random_mods: Set[str] = set()
        self.numpy_mods: Set[str] = set()
        self.np_random_mods: Set[str] = set()
        self.from_random: Dict[str, str] = {}
        self.from_np_random: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_mods.add(local)
                    elif alias.name == "numpy":
                        self.numpy_mods.add(local)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self.np_random_mods.add(alias.asname)
                        else:
                            self.numpy_mods.add("numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        self.from_random[alias.asname or alias.name] = \
                            alias.name
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.np_random_mods.add(
                                alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        self.from_np_random[
                            alias.asname or alias.name] = alias.name

    def classify(self, call: ast.Call) -> Optional[str]:
        """A problem description when the call is an RNG hazard."""
        func = call.func
        no_args = not call.args and not call.keywords
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) \
                    and base.id in self.random_mods:
                return self._stdlib(func.attr, no_args)
            if self._is_np_random(base):
                return self._numpy(func.attr, no_args)
        elif isinstance(func, ast.Name):
            if func.id in self.from_random:
                return self._stdlib(self.from_random[func.id], no_args)
            if func.id in self.from_np_random:
                return self._numpy(self.from_np_random[func.id],
                                   no_args)
        return None

    def _is_np_random(self, base: ast.expr) -> bool:
        if isinstance(base, ast.Name) \
                and base.id in self.np_random_mods:
            return True
        return (isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in self.numpy_mods)

    @staticmethod
    def _stdlib(fn: str, no_args: bool) -> Optional[str]:
        if fn == "seed":
            return None
        if fn == "Random":
            return ("random.Random() constructed without a seed"
                    if no_args else None)
        if fn == "SystemRandom":
            return "random.SystemRandom draws OS entropy (unseedable)"
        return (f"random.{fn}() draws from the process-global stdlib "
                "RNG")

    @staticmethod
    def _numpy(fn: str, no_args: bool) -> Optional[str]:
        if fn in ("SeedSequence", "seed"):
            return None
        if fn in ("default_rng", "RandomState", "Generator"):
            return (f"numpy.random.{fn}() constructed without a seed"
                    if no_args else None)
        return (f"numpy.random.{fn}() draws from the legacy "
                "process-global numpy RNG")


@register
class UnseededRngRule(LintRule):
    """All randomness must flow from an explicitly seeded Generator."""

    rule_id = "DET002"
    slug = "unseeded-rng"
    pack = "code"
    default_severity = Severity.ERROR
    description = ("Unseeded or process-global RNG use outside the "
                   "fault/chaos harness breaks run-to-run "
                   "reproducibility.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        code = _code(ctx)
        if code is None:
            return
        for source in code.parsed():
            if source.module in HARNESS_MODULES:
                continue
            imports = _RngImports(source.tree)
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                problem = imports.classify(node)
                if problem:
                    yield self.diag(
                        problem, _loc(source, node.lineno),
                        hint="thread a seeded numpy.random.Generator "
                             "(default_rng(seed)) through the call "
                             "path")


# ======================================================================
# DET003 — wall-clock reads in result-affecting code
# ======================================================================
_WALLCLOCK_ATTRS = {"time", "perf_counter", "monotonic", "process_time",
                    "time_ns", "perf_counter_ns", "monotonic_ns",
                    "now", "utcnow", "today"}


def _is_wallclock_call(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute) \
            and func.attr in _WALLCLOCK_ATTRS:
        base = _unparse(func.value)
        if base in ("time", "datetime", "datetime.datetime", "date",
                    "datetime.date"):
            return f"{base}.{func.attr}()"
    return None


@register
class WallClockRule(LintRule):
    """Wall-clock reads belong in metrics/trace sinks, not results."""

    rule_id = "DET003"
    slug = "wall-clock"
    pack = "code"
    default_severity = Severity.WARNING
    description = ("A wall-clock read whose value escapes the "
                   "metrics/timeout naming convention can leak "
                   "nondeterminism into results.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        code = _code(ctx)
        if code is None:
            return
        for source in code.parsed():
            if not _in_packages(source, RESULT_PACKAGES) \
                    or source.module.split(".", 1)[0] == "obs":
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                what = _is_wallclock_call(node)
                if what is None or self._is_sink(source, node):
                    continue
                yield self.diag(
                    f"{what} read in result-affecting module "
                    f"'{source.module}' flows outside the recognized "
                    "metrics/timeout sinks",
                    _loc(source, node.lineno),
                    hint="route timing through repro.obs, or name the "
                         "target *_start/elapsed/wall/deadline so the "
                         "timing-sink convention applies")

    @staticmethod
    def _is_sink(source: SourceFile, node: ast.Call) -> bool:
        for ancestor in source.ancestors(node):
            if isinstance(ancestor, (ast.Assign, ast.AnnAssign,
                                     ast.AugAssign)):
                targets = (ancestor.targets
                           if isinstance(ancestor, ast.Assign)
                           else [ancestor.target])
                return all(_TIMING_SINK_TARGET.search(_unparse(t))
                           for t in targets)
            if isinstance(ancestor, ast.Compare):
                others = [ancestor.left] + list(ancestor.comparators)
                if any(_TIMING_SINK_TARGET.search(_unparse(o))
                       for o in others if o is not node):
                    return True
            if isinstance(ancestor, ast.Call) and ancestor is not node:
                name = None
                if isinstance(ancestor.func, ast.Name):
                    name = ancestor.func.id
                elif isinstance(ancestor.func, ast.Attribute):
                    name = ancestor.func.attr
                if name in _SINK_CALLS:
                    return True
        return False


# ======================================================================
# DET004 — float equality in numeric kernels
# ======================================================================
@register
class FloatEqualityRule(LintRule):
    """Exact float comparison in the solver kernels."""

    rule_id = "DET004"
    slug = "float-equality"
    pack = "code"
    default_severity = Severity.WARNING
    description = ("Float == / != against a float literal in "
                   "core/linalg/spice; rounding makes exact equality "
                   "platform-sensitive.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        code = _code(ctx)
        if code is None:
            return
        for source in code.parsed():
            if not _in_packages(source, KERNEL_PACKAGES):
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(isinstance(op, (ast.Eq, ast.NotEq))
                           for op in node.ops):
                    continue
                sides = [node.left] + list(node.comparators)
                literal = next(
                    (s for s in sides
                     if isinstance(s, ast.Constant)
                     and isinstance(s.value, float)), None)
                if literal is None:
                    continue
                yield self.diag(
                    f"exact float comparison against "
                    f"{literal.value!r} in kernel module "
                    f"'{source.module}'",
                    _loc(source, node.lineno),
                    hint="compare with math.isclose/np.isclose or an "
                         "explicit tolerance; use an is-None/flag "
                         "sentinel instead of a magic float")


# ======================================================================
# DET005 — filesystem-order dependence
# ======================================================================
@register
class FsOrderRule(LintRule):
    """Directory listings must be sorted before use."""

    rule_id = "DET005"
    slug = "fs-order"
    pack = "code"
    default_severity = Severity.WARNING
    description = ("os.listdir/scandir/glob/iterdir return entries in "
                   "filesystem order, which differs across machines.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        code = _code(ctx)
        if code is None:
            return
        for source in code.parsed():
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = None
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _FS_ORDER_ATTRS:
                    name = node.func.attr
                elif isinstance(node.func, ast.Name) \
                        and node.func.id in ("glob", "iglob",
                                             "listdir", "scandir"):
                    name = node.func.id
                if name is None:
                    continue
                parent = source.parent(node)
                if isinstance(parent, ast.Call) \
                        and isinstance(parent.func, ast.Name) \
                        and parent.func.id in ("sorted", "len", "set",
                                               "frozenset"):
                    continue
                yield self.diag(
                    f"{name}() result used without sorted(): entry "
                    "order is filesystem-dependent",
                    _loc(source, node.lineno),
                    hint="wrap the listing in sorted(...)")


# ======================================================================
# CONC001 — module-global mutation from worker-reachable code
# ======================================================================
def _module_mutables(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for stmt in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            names.add(target.id)
        elif isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Name) \
                and value.func.id in ("list", "dict", "set",
                                      "defaultdict", "OrderedDict",
                                      "deque", "Counter"):
            names.add(target.id)
    return names


def _global_writes(func: ast.AST,
                   mutables: Set[str]) -> List[Tuple[int, str, ast.AST]]:
    """(lineno, name, node) for each module-global mutation in a scope."""
    declared: Set[str] = set()
    writes: List[Tuple[int, str, ast.AST]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Name) \
                        and target.id in declared \
                        and target.id in mutables:
                    writes.append((node.lineno, target.id, node))
                elif isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in mutables:
                    writes.append((node.lineno, target.value.id, node))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATING_METHODS \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in mutables:
            writes.append((node.lineno, node.func.value.id, node))
    return writes


@register
class WorkerGlobalMutationRule(LintRule):
    """Module globals must not be written from worker-reachable code."""

    rule_id = "CONC001"
    slug = "worker-global-mutation"
    pack = "code"
    default_severity = Severity.ERROR
    description = ("A module-level mutable container written from a "
                   "function reachable from worker entry points races "
                   "under the thread backend and silently diverges "
                   "under the process backend.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        code = _code(ctx)
        if code is None:
            return
        graph = _callgraph(code)
        reachable = graph.reachable()
        if not reachable:
            return
        for source in code.parsed():
            mutables = _module_mutables(source.tree)
            if not mutables:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                qualname = _qualname(source, node.lineno)
                if qualname not in reachable:
                    continue
                for lineno, name, write in _global_writes(node,
                                                          mutables):
                    if _under_lock(source, write):
                        continue
                    yield self.diag(
                        f"module global '{name}' mutated in "
                        f"worker-reachable function "
                        f"'{source.symbol_at(node.lineno)}'",
                        _loc(source, lineno),
                        hint="pass state explicitly, guard with a "
                             "lock, or merge results on the "
                             "scheduler thread")


# ======================================================================
# CONC002 — unlocked shared-object mutation in lock-owning classes
# ======================================================================
def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
    attrs: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                text = _unparse(node.value)
                if re.search(r"\b(R?Lock|Condition|Semaphore)\s*\(",
                             text) or "lock" in target.attr.lower():
                    attrs.add(target.attr)
    return attrs


@register
class UnlockedSharedMutationRule(LintRule):
    """Classes that own a lock must take it around shared mutation."""

    rule_id = "CONC002"
    slug = "unlocked-shared-mutation"
    pack = "code"
    default_severity = Severity.WARNING
    description = ("A class holding a threading lock mutates a shared "
                   "container attribute outside any with-lock block; "
                   "thread-backend workers can interleave the "
                   "mutation.")

    _EXEMPT_METHODS = {"__init__", "__new__", "__del__",
                       "__getstate__", "__setstate__"}

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        code = _code(ctx)
        if code is None:
            return
        for source in code.parsed():
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(source, node)

    def _check_class(self, source: SourceFile,
                     cls: ast.ClassDef) -> Iterator[Diagnostic]:
        locks = _lock_attrs(cls)
        if not locks:
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name in self._EXEMPT_METHODS:
                continue
            for lineno, attr in self._unlocked_mutations(source, method,
                                                         locks):
                yield self.diag(
                    f"'self.{attr}' mutated in "
                    f"{cls.name}.{method.name} outside the class's "
                    f"lock ({', '.join(sorted(locks))})",
                    _loc(source, lineno),
                    hint="wrap the mutation in `with self._lock:` or "
                         "document single-threaded ownership in the "
                         "lint baseline")

    @staticmethod
    def _unlocked_mutations(source: SourceFile, method: ast.AST,
                            locks: Set[str]
                            ) -> List[Tuple[int, str]]:
        found: List[Tuple[int, str]] = []

        def self_attr(node: ast.expr) -> Optional[str]:
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "self" \
                    and node.attr not in locks:
                return node.attr
            return None

        for node in ast.walk(method):
            attr: Optional[str] = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        attr = self_attr(target.value)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATING_METHODS:
                attr = self_attr(node.func.value)
            if attr is not None and not _under_lock(source, node):
                found.append((node.lineno, attr))
        return found


# ======================================================================
# CONC003 — exception swallowing
# ======================================================================
def _trivial_body(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Return) \
                and (stmt.value is None
                     or isinstance(stmt.value, ast.Constant)):
            continue
        if isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Constant):
            continue  # docstring-style no-op
        return False
    return True


def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
    def broad(node: ast.expr) -> bool:
        return isinstance(node, ast.Name) \
            and node.id in ("Exception", "BaseException")

    if handler.type is None:
        return True
    if broad(handler.type):
        return True
    if isinstance(handler.type, ast.Tuple):
        return any(broad(el) for el in handler.type.elts)
    return False


@register
class ExceptionSwallowRule(LintRule):
    """Bare/overbroad except clauses that silently discard failures."""

    rule_id = "CONC003"
    slug = "exception-swallow"
    pack = "code"
    default_severity = Severity.WARNING
    description = ("A bare or Exception-wide handler with a do-nothing "
                   "body swallows numpy.linalg/solver failures that "
                   "the escalation ladder and flight recorder need to "
                   "see.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        code = _code(ctx)
        if code is None:
            return
        for source in code.parsed():
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    yield self.diag(
                        "bare 'except:' catches KeyboardInterrupt and "
                        "SystemExit along with solver errors",
                        _loc(source, node.lineno),
                        severity=Severity.ERROR,
                        hint="catch the specific exceptions the try "
                             "block can raise")
                elif _handler_is_broad(node) \
                        and _trivial_body(node.body):
                    yield self.diag(
                        "'except Exception' with a do-nothing body "
                        "silently swallows solver/linalg failures",
                        _loc(source, node.lineno),
                        hint="narrow the exception type, or record the "
                             "failure (flight recorder / metrics) "
                             "before suppressing it")


# ======================================================================
# CONC004 — environment mutation near worker pools
# ======================================================================
@register
class EnvMutationRule(LintRule):
    """os.environ writes are invisible to already-spawned workers."""

    rule_id = "CONC004"
    slug = "env-mutation"
    pack = "code"
    default_severity = Severity.WARNING
    description = ("Mutating os.environ (or putenv) after a worker "
                   "pool exists gives workers a stale environment; "
                   "from worker-reachable code it races outright.")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        code = _code(ctx)
        if code is None:
            return
        reachable: Optional[Set[str]] = None
        for source in code.parsed():
            for node in ast.walk(source.tree):
                hit = self._env_write(node)
                if hit is None:
                    continue
                if reachable is None:
                    reachable = _callgraph(code).reachable()
                qualname = _qualname(source, node.lineno)
                severity = (Severity.ERROR if qualname in reachable
                            else None)
                where = ("worker-reachable function "
                         if severity is Severity.ERROR else "")
                yield self.diag(
                    f"{hit} in {where}"
                    f"'{source.symbol_at(node.lineno)}'",
                    _loc(source, node.lineno),
                    severity=severity,
                    hint="set environment before pools start, or pass "
                         "configuration through ExecutionConfig/"
                         "initializer arguments")

    @staticmethod
    def _env_write(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and _unparse(target.value) == "os.environ":
                    return "os.environ[...] assignment"
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and _unparse(target.value) == "os.environ":
                    return "del os.environ[...]"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                base = _unparse(func.value)
                if base == "os.environ" \
                        and func.attr in ("update", "pop", "clear",
                                          "setdefault"):
                    return f"os.environ.{func.attr}()"
                if base == "os" and func.attr in ("putenv", "unsetenv"):
                    return f"os.{func.attr}()"
        return None
