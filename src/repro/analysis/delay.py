"""Delay and slew measurement over waveforms from either engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.waveforms import PiecewiseQuadraticWaveform
from repro.spice.results import TransientResult

WaveformLike = Union[PiecewiseQuadraticWaveform, TransientResult]


@dataclass(frozen=True)
class DelayMeasurement:
    """A measured propagation delay.

    Attributes:
        delay: input event to 50% output crossing [s].
        crossing_time: absolute output crossing time [s].
        direction: ``"rise"`` or ``"fall"`` of the output.
    """

    delay: float
    crossing_time: float
    direction: str


def _crossing(source: WaveformLike, node: Optional[str], level: float,
              direction: str, after: float) -> Optional[float]:
    if isinstance(source, PiecewiseQuadraticWaveform):
        t = source.crossing_time(level)
        if t is not None and t < after:
            return None
        return t
    if node is None:
        raise ValueError("node name required for TransientResult input")
    return source.crossing_time(node, level, direction=direction,
                                after=after)


def measure_delay(source: WaveformLike, vdd: float, direction: str,
                  node: Optional[str] = None, t_input: float = 0.0,
                  fraction: float = 0.5) -> Optional[DelayMeasurement]:
    """50% (or custom-fraction) propagation delay of an output waveform.

    Args:
        source: a QWM piecewise waveform or a SPICE transient result.
        vdd: supply voltage [V].
        direction: output transition direction (``"rise"``/``"fall"``).
        node: node name (required for TransientResult sources).
        t_input: input switching instant [s].
        fraction: crossing level as a fraction of vdd.

    Returns:
        The measurement, or None if the waveform never crosses.
    """
    level = fraction * vdd
    crossing = _crossing(source, node, level, direction, t_input)
    if crossing is None:
        return None
    return DelayMeasurement(delay=crossing - t_input,
                            crossing_time=crossing, direction=direction)


def measure_slew(source: WaveformLike, vdd: float, direction: str,
                 node: Optional[str] = None,
                 low: float = 0.1, high: float = 0.9) -> Optional[float]:
    """10/90 (by default) transition time of an output waveform [s]."""
    lo_level, hi_level = low * vdd, high * vdd
    t_lo = _crossing(source, node, lo_level, direction, 0.0)
    t_hi = _crossing(source, node, hi_level, direction, 0.0)
    if t_lo is None or t_hi is None:
        return None
    return abs(t_hi - t_lo)
