"""Greedy sensitivity-driven transistor sizing.

A minimal timing-driven sizing loop built on
:class:`~repro.analysis.sensitivity.SizingSensitivity`: repeatedly grow
the path device with the best delay-reduction-per-added-width until the
delay target is met or the width budget runs out.  Each iteration costs
a handful of QWM evaluations — the optimization the paper's speed makes
practical (and the spirit of its "future work" on using fast stage
evaluation inside design loops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.sensitivity import SizingSensitivity, clone_stage
from repro.circuit.netlist import LogicStage
from repro.core.engine import WaveformEvaluator
from repro.spice.sources import SourceLike


@dataclass
class SizingStep:
    """One accepted sizing move."""

    device: str
    old_width: float
    new_width: float
    delay_before: float
    delay_after: float


@dataclass
class SizingResult:
    """Outcome of a sizing run.

    Attributes:
        stage: the sized stage (a clone; the input stage is untouched).
        initial_delay: delay before sizing [s].
        final_delay: delay after sizing [s].
        steps: accepted moves in order.
        met_target: True if the target delay was reached.
    """

    stage: LogicStage
    initial_delay: float
    final_delay: float
    steps: List[SizingStep] = field(default_factory=list)
    met_target: bool = False

    @property
    def improvement(self) -> float:
        """Fractional delay reduction."""
        if self.initial_delay == 0:
            return 0.0
        return 1.0 - self.final_delay / self.initial_delay


class GreedySizer:
    """Greedy width optimizer for one stage transition.

    Args:
        evaluator: QWM evaluator.
        step_factor: multiplicative width increase per accepted move.
        max_width: per-device width ceiling [m].
        max_iterations: move budget.
    """

    def __init__(self, evaluator: WaveformEvaluator,
                 step_factor: float = 1.3,
                 max_width: float = 20e-6,
                 max_iterations: int = 25):
        if step_factor <= 1.0:
            raise ValueError("step_factor must exceed 1")
        self.evaluator = evaluator
        self.sensitivity = SizingSensitivity(evaluator)
        self.step_factor = step_factor
        self.max_width = max_width
        self.max_iterations = max_iterations

    def optimize(self, stage: LogicStage, output: str, direction: str,
                 inputs: Dict[str, SourceLike],
                 target_delay: Optional[float] = None,
                 precharge: str = "full",
                 t_input: float = 0.0) -> SizingResult:
        """Size the pull-path devices toward a delay target.

        Args:
            stage: the stage to size (cloned, never modified).
            output: output node.
            direction: output transition.
            inputs: gate sources.
            target_delay: stop once the delay drops below this [s];
                ``None`` sizes until no move improves.
            precharge: initial-condition style.
            t_input: input event time [s].
        """
        current = clone_stage(stage)
        initial = self._delay(current, output, direction, inputs,
                              precharge, t_input)
        delay = initial
        steps: List[SizingStep] = []

        for _ in range(self.max_iterations):
            if target_delay is not None and delay <= target_delay:
                break
            candidates = self.sensitivity.all_path_devices(
                current, output, direction, inputs, precharge, t_input)
            # Best delay reduction per added width, among devices with
            # room to grow and a helpful (negative) sensitivity.
            viable = [c for c in candidates
                      if c.sensitivity < 0
                      and c.nominal_width * self.step_factor
                      <= self.max_width]
            if not viable:
                break
            best = min(viable, key=lambda c: c.sensitivity
                       * c.nominal_width)
            new_width = best.nominal_width * self.step_factor
            trial = clone_stage(current, {best.device: new_width})
            trial_delay = self._delay(trial, output, direction, inputs,
                                      precharge, t_input)
            if trial_delay >= delay:
                break  # greedy move no longer helps (self-loading wins)
            steps.append(SizingStep(
                device=best.device, old_width=best.nominal_width,
                new_width=new_width, delay_before=delay,
                delay_after=trial_delay))
            current, delay = trial, trial_delay

        return SizingResult(
            stage=current, initial_delay=initial, final_delay=delay,
            steps=steps,
            met_target=(target_delay is not None
                        and delay <= target_delay))

    def _delay(self, stage, output, direction, inputs, precharge,
               t_input) -> float:
        solution = self.evaluator.evaluate(stage, output, direction,
                                           inputs, precharge=precharge)
        delay = solution.delay(t_input=t_input)
        if delay is None:
            raise RuntimeError("output never crossed 50%")
        return delay
