"""Differential QWM-vs-SPICE golden reference suite.

The paper's central claim is accuracy *and* speed: a QWM stage solve
should land within a few percent of a fine-step SPICE transient while
doing orders of magnitude less work.  This module pins that claim down
as data.  A :class:`GoldenCase` describes one timing arc of a library
gate (circuit, switching input, output direction) at one point of a
slew x load grid; :func:`generate` runs *both* engines on it and
records the measured delays and slews.  The records are stored as JSON
under ``tests/golden/`` and regenerated with ``repro golden --update``;
the regression test (``tests/test_golden_differential.py``) re-runs
only the cheap QWM side and checks it against the stored SPICE
reference, so drift in either the solver or the device models shows up
as a failing diff without paying for SPICE on every CI run.

Both engines use DC initial conditions (``precharge="dc"``) and measure
delay from the input's 50% crossing (``T_SWITCH + slew/2``), so the
numbers are directly comparable.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.circuit import builders
from repro.circuit.netlist import LogicStage
from repro.core import WaveformEvaluator
from repro.devices import TableModelLibrary, Technology
from repro.spice import (ConstantSource, RampSource, Source, StepSource,
                         TransientOptions, TransientSimulator)

#: Input switching instant [s] (matches benchmarks/harness.py).
T_SWITCH = 20e-12
#: SPICE reference step [s] — fine enough that the reference error is
#: negligible next to the tolerance band.
SPICE_DT = 1e-12
#: Transient horizon [s]; generous for the largest load in the grid.
T_STOP = 600e-12
#: Acceptance band for |QWM - SPICE| delay error.  The paper reports
#: 1-2 % average / 3.66 % worst on its gate set; the band leaves head
#: room for the ramped-input and light-load corners of the grid (the
#: 2 fF step-input inverter corner sits at ~8.3 %).
DELAY_TOLERANCE_PCT = 10.0
#: Output-slew band is looser: 10/90 transition times amplify tail
#: shape differences that barely move the 50 % crossing.
SLEW_TOLERANCE_PCT = 35.0

GOLDEN_VERSION = 1

#: The slew x load grid every arc is swept over.
GRID_SLEWS = (0.0, 40e-12)
GRID_LOADS = (2e-15, 10e-15)

#: circuit name -> stage factory (load-parameterized).
CIRCUITS = {
    "inv": lambda tech, load: builders.inverter(tech, load=load),
    "nand2": lambda tech, load: builders.nand_gate(tech, 2, load=load),
    "nand3": lambda tech, load: builders.nand_gate(tech, 3, load=load),
    "nor2": lambda tech, load: builders.nor_gate(tech, 2, load=load),
}

#: (circuit, output direction, switching input, held level of the other
#: inputs).  NAND pull-down needs the rest of the stack on (held high);
#: NOR pull-up needs the rest of the PMOS chain on (held low).
ARCS = (
    ("inv", "fall", "a", None),
    ("inv", "rise", "a", None),
    ("nand2", "fall", "a0", "high"),
    ("nand3", "fall", "a0", "high"),
    ("nor2", "rise", "a0", "low"),
)


@dataclass(frozen=True)
class GoldenCase:
    """One timing arc at one (slew, load) grid point."""

    circuit: str
    direction: str
    switching_input: str
    held: Optional[str]
    input_slew: float
    load: float

    @property
    def name(self) -> str:
        slew = int(round(self.input_slew * 1e12))
        load = int(round(self.load * 1e15))
        return (f"{self.circuit}_{self.direction}_"
                f"{self.switching_input}_s{slew}p_l{load}f")

    def build(self, tech: Technology) -> LogicStage:
        return CIRCUITS[self.circuit](tech, self.load)

    def sources(self, tech: Technology) -> Dict[str, Source]:
        """Driving sources: output *direction* fixes the input edge."""
        vdd = tech.vdd
        v0, v1 = (0.0, vdd) if self.direction == "fall" else (vdd, 0.0)
        if self.input_slew > 0:
            switching: Source = RampSource(v0, v1, T_SWITCH,
                                           self.input_slew)
        else:
            switching = StepSource(v0, v1, T_SWITCH)
        held_level = vdd if self.held == "high" else 0.0
        sources: Dict[str, Source] = {self.switching_input: switching}
        stage = self.build(tech)
        for name in stage.inputs:
            sources.setdefault(name, ConstantSource(held_level))
        return sources

    @property
    def t_input(self) -> float:
        """The input's 50 % crossing — the delay reference point."""
        return T_SWITCH + 0.5 * self.input_slew


def golden_cases(slews: Sequence[float] = GRID_SLEWS,
                 loads: Sequence[float] = GRID_LOADS
                 ) -> List[GoldenCase]:
    """The full arc x slew x load grid (20 cases by default)."""
    cases = []
    for circuit, direction, switching, held in ARCS:
        for slew in slews:
            for load in loads:
                cases.append(GoldenCase(
                    circuit=circuit, direction=direction,
                    switching_input=switching, held=held,
                    input_slew=float(slew), load=float(load)))
    return cases


@dataclass
class GoldenRecord:
    """Measured reference data for one case."""

    case: GoldenCase
    spice_delay: float
    spice_slew: Optional[float]
    qwm_delay: float
    qwm_slew: Optional[float]

    @property
    def delay_error_pct(self) -> float:
        return 100.0 * abs(self.qwm_delay - self.spice_delay) \
            / abs(self.spice_delay)

    @property
    def slew_error_pct(self) -> Optional[float]:
        if self.spice_slew is None or self.qwm_slew is None \
                or self.spice_slew == 0:
            return None
        return 100.0 * abs(self.qwm_slew - self.spice_slew) \
            / abs(self.spice_slew)

    @property
    def margin_to_band_pct(self) -> float:
        """Headroom to the delay band (negative = outside the band).

        Stored per case so near-band corners — the 2 fF step-input
        inverter sits at ~8.3 % of a 10 % band — are visible in the
        golden JSON rather than silently passing.
        """
        return DELAY_TOLERANCE_PCT - self.delay_error_pct

    def to_json(self) -> Dict:
        payload = asdict(self.case)
        payload.update({
            "name": self.case.name,
            "spice_delay": self.spice_delay,
            "spice_slew": self.spice_slew,
            "qwm_delay": self.qwm_delay,
            "qwm_slew": self.qwm_slew,
            "delay_error_pct": self.delay_error_pct,
            "slew_error_pct": self.slew_error_pct,
            "margin_to_band_pct": self.margin_to_band_pct,
        })
        return payload

    @classmethod
    def from_json(cls, payload: Dict) -> "GoldenRecord":
        case = GoldenCase(
            circuit=payload["circuit"], direction=payload["direction"],
            switching_input=payload["switching_input"],
            held=payload["held"],
            input_slew=float(payload["input_slew"]),
            load=float(payload["load"]))
        return cls(case=case,
                   spice_delay=float(payload["spice_delay"]),
                   spice_slew=(None if payload["spice_slew"] is None
                               else float(payload["spice_slew"])),
                   qwm_delay=float(payload["qwm_delay"]),
                   qwm_slew=(None if payload["qwm_slew"] is None
                             else float(payload["qwm_slew"])))


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def qwm_measure(case: GoldenCase, tech: Technology,
                evaluator: WaveformEvaluator):
    """(delay, output slew) of the arc per the QWM engine."""
    from repro.analysis.delay import measure_slew

    stage = case.build(tech)
    solution = evaluator.evaluate(stage, "out", case.direction,
                                  case.sources(tech), precharge="dc")
    delay = solution.delay(t_input=case.t_input)
    if delay is None:
        raise ValueError(f"QWM produced no 50% crossing for "
                         f"{case.name}")
    slew = measure_slew(solution.output_waveform, tech.vdd,
                        case.direction)
    return float(delay), (None if slew is None else float(slew))


def spice_measure(case: GoldenCase, tech: Technology):
    """(delay, output slew) of the arc per the reference simulator."""
    stage = case.build(tech)
    simulator = TransientSimulator(
        stage, tech, TransientOptions(t_stop=T_STOP, dt=SPICE_DT))
    result = simulator.run(case.sources(tech))
    delay = result.delay_50("out", tech.vdd, t_input=case.t_input,
                            direction=case.direction)
    if delay is None:
        raise ValueError(f"SPICE produced no 50% crossing for "
                         f"{case.name}")
    slew = result.slew("out", tech.vdd, case.direction)
    return float(delay), (None if slew is None else float(slew))


def generate(tech: Technology,
             evaluator: Optional[WaveformEvaluator] = None,
             cases: Optional[Sequence[GoldenCase]] = None,
             progress=None) -> List[GoldenRecord]:
    """Run both engines over the grid (the expensive direction)."""
    if evaluator is None:
        evaluator = WaveformEvaluator(tech,
                                      library=TableModelLibrary(tech))
    records = []
    for case in cases if cases is not None else golden_cases():
        spice_delay, spice_slew = spice_measure(case, tech)
        qwm_delay, qwm_slew = qwm_measure(case, tech, evaluator)
        record = GoldenRecord(case=case, spice_delay=spice_delay,
                              spice_slew=spice_slew,
                              qwm_delay=qwm_delay, qwm_slew=qwm_slew)
        if progress is not None:
            progress(record)
        records.append(record)
    return records


# ----------------------------------------------------------------------
# Storage: one JSON file per circuit under the golden directory.
# ----------------------------------------------------------------------
def default_golden_dir() -> str:
    """``tests/golden`` next to the repository's test suite."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "golden")


def save(records: Sequence[GoldenRecord], directory: str) -> List[str]:
    """Write one ``<circuit>.json`` per circuit; returns the paths."""
    by_circuit: Dict[str, List[GoldenRecord]] = {}
    for record in records:
        by_circuit.setdefault(record.case.circuit, []).append(record)
    os.makedirs(directory, exist_ok=True)
    paths = []
    for circuit in sorted(by_circuit):
        document = {
            "version": GOLDEN_VERSION,
            "circuit": circuit,
            "t_switch": T_SWITCH,
            "spice_dt": SPICE_DT,
            "cases": [r.to_json()
                      for r in sorted(by_circuit[circuit],
                                      key=lambda r: r.case.name)],
        }
        path = os.path.join(directory, f"{circuit}.json")
        with open(path, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths


def load(directory: str) -> List[GoldenRecord]:
    """Load every ``*.json`` golden file under ``directory``."""
    if not os.path.isdir(directory):
        raise FileNotFoundError(
            f"golden directory {directory!r} does not exist "
            f"(run `repro golden --update` to generate it)")
    records = []
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".json"):
            continue
        with open(os.path.join(directory, entry)) as handle:
            document = json.load(handle)
        if document.get("version") != GOLDEN_VERSION:
            raise ValueError(
                f"golden file {entry!r} has version "
                f"{document.get('version')!r}, expected {GOLDEN_VERSION}")
        records.extend(GoldenRecord.from_json(payload)
                       for payload in document["cases"])
    if not records:
        raise FileNotFoundError(
            f"no golden files under {directory!r} "
            f"(run `repro golden --update` to generate them)")
    return records


# ----------------------------------------------------------------------
# Comparison (the cheap direction: QWM live vs stored SPICE).
# ----------------------------------------------------------------------
@dataclass
class GoldenDiff:
    """Outcome of re-checking one stored case.

    ``attribution`` is the accuracy observatory's error-budget roll-up
    of the fresh QWM solve (dominant ``phase:tag`` cell by summed
    residual norm) — populated by :func:`check`, None when the record
    was not re-measured through it.
    """

    record: GoldenRecord
    fresh_delay: float
    fresh_slew: Optional[float]
    attribution: Optional[Dict] = None

    @property
    def delay_error_pct(self) -> float:
        return 100.0 * abs(self.fresh_delay - self.record.spice_delay) \
            / abs(self.record.spice_delay)

    @property
    def slew_error_pct(self) -> Optional[float]:
        if self.fresh_slew is None or self.record.spice_slew in (None,
                                                                 0.0):
            return None
        return 100.0 * abs(self.fresh_slew - self.record.spice_slew) \
            / abs(self.record.spice_slew)

    @property
    def margin_to_band_pct(self) -> float:
        """Headroom to the delay band (negative = outside the band)."""
        return DELAY_TOLERANCE_PCT - self.delay_error_pct

    @property
    def ok(self) -> bool:
        if self.delay_error_pct > DELAY_TOLERANCE_PCT:
            return False
        slew_err = self.slew_error_pct
        return slew_err is None or slew_err <= SLEW_TOLERANCE_PCT


def check(records: Sequence[GoldenRecord], tech: Technology,
          evaluator: Optional[WaveformEvaluator] = None
          ) -> List[GoldenDiff]:
    """Re-measure every case with QWM against its stored SPICE numbers.

    When the flight recorder is capturing bundles, every band
    violation triggers a forced re-evaluation of the offending case so
    a self-contained debug bundle (netlist, table slices, ledger) lands
    in the configured bundle directory for offline replay.
    """
    from repro.obs.accuracy import attribute_regions, capture_regions

    if evaluator is None:
        evaluator = WaveformEvaluator(tech,
                                      library=TableModelLibrary(tech))
    diffs = []
    for record in records:
        with capture_regions() as capture:
            delay, slew = qwm_measure(record.case, tech, evaluator)
        diff = GoldenDiff(record=record, fresh_delay=delay,
                          fresh_slew=slew,
                          attribution=attribute_regions(capture.notes))
        if not diff.ok:
            _capture_violation(diff, tech, evaluator)
        diffs.append(diff)
    return diffs


def _capture_violation(diff: GoldenDiff, tech: Technology,
                       evaluator: WaveformEvaluator) -> None:
    """Re-run a failing case under forced bundle capture."""
    from repro.obs.flight import flight

    fl = flight()
    if not fl.enabled or not fl.config.capture_bundles:
        return
    case = diff.record.case
    with fl.context(golden_case=case.name,
                    delay_error_pct=diff.delay_error_pct,
                    spice_delay=diff.record.spice_delay,
                    qwm_delay=diff.fresh_delay):
        fl.force_capture("golden_band_violation")
        try:
            qwm_measure(case, tech, evaluator)
        except Exception:
            # The diagnostic re-run must never turn a band violation
            # into a crash; the original diff is still reported.
            pass
        finally:
            fl.consume_force_capture()


def history_cases(diffs: Sequence[GoldenDiff]
                  ) -> Dict[str, Dict]:
    """Diffs keyed for the accuracy-history ledger.

    The shape :func:`repro.obs.accuracy.history_entry` consumes — one
    section per case with error, band margin and the dominant
    attribution cell.
    """
    cases: Dict[str, Dict] = {}
    for diff in diffs:
        attribution = diff.attribution or {}
        cases[diff.record.case.name] = {
            "delay_error_pct": diff.delay_error_pct,
            "slew_error_pct": diff.slew_error_pct,
            "margin_to_band_pct": diff.margin_to_band_pct,
            "attribution": attribution.get("dominant"),
            "status": "ok" if diff.ok else "band-violation",
        }
    return cases


def format_report(diffs: Sequence[GoldenDiff]) -> str:
    """Human-readable pass/fail table over the grid."""
    lines = [f"{'case':<28}{'spice':>10}{'qwm':>10}{'err%':>8}  status",
             "-" * 64]
    worst = 0.0
    for diff in diffs:
        err = diff.delay_error_pct
        worst = max(worst, err)
        status = "ok" if diff.ok else "FAIL"
        lines.append(
            f"{diff.record.case.name:<28}"
            f"{diff.record.spice_delay * 1e12:>8.2f}ps"
            f"{diff.fresh_delay * 1e12:>8.2f}ps"
            f"{err:>7.2f}%  {status}")
    failed = sum(1 for d in diffs if not d.ok)
    lines.append("-" * 64)
    lines.append(f"{len(diffs)} cases, worst delay error "
                 f"{worst:.2f}% (band {DELAY_TOLERANCE_PCT:.1f}%), "
                 f"{failed} failing")
    return "\n".join(lines)
