"""Monte-Carlo timing under width variation.

Statistical timing needs thousands of per-sample delay evaluations —
prohibitive with SPICE in the loop, routine with QWM.  This module
perturbs every transistor's width (local variation, e.g. line-edge
roughness ~ a few percent sigma) and re-evaluates the stage delay per
sample.  Width variation is exact in the tabular model (current scales
linearly with W), so no re-characterization is needed per sample.

Threshold-voltage variation is handled at the corner level
(:mod:`repro.devices.corners`), which does re-characterize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.sensitivity import clone_stage
from repro.circuit.netlist import LogicStage
from repro.core.engine import WaveformEvaluator
from repro.spice.sources import SourceLike


@dataclass
class DelayDistribution:
    """Sampled delay statistics.

    Attributes:
        samples: per-sample 50% delays [s].
        nominal: unperturbed delay [s].
    """

    samples: np.ndarray
    nominal: float

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples))

    def quantile(self, q: float) -> float:
        """Delay quantile (e.g. 0.997 for a ~3-sigma sign-off number)."""
        return float(np.quantile(self.samples, q))

    @property
    def sigma_over_mean(self) -> float:
        return self.std / self.mean if self.mean else 0.0


class MonteCarloTiming:
    """Width-variation Monte Carlo over one stage transition.

    Args:
        evaluator: QWM evaluator (shared characterized tables).
        width_sigma: relative 1-sigma width variation per device.
        rng: numpy random generator; takes precedence over ``seed``.
        seed: seed for the default generator when ``rng`` is omitted,
            so a whole run can be reproduced from one integer (the
            benchmark suite threads its ``--seed`` option through
            here).
    """

    def __init__(self, evaluator: WaveformEvaluator,
                 width_sigma: float = 0.05,
                 rng: Optional[np.random.Generator] = None,
                 seed: int = 0):
        if not 0 < width_sigma < 0.3:
            raise ValueError("width_sigma must be in (0, 0.3)")
        self.evaluator = evaluator
        self.width_sigma = width_sigma
        self.rng = rng if rng is not None \
            else np.random.default_rng(seed)

    def run(self, stage: LogicStage, output: str, direction: str,
            inputs: Dict[str, SourceLike], n_samples: int = 200,
            precharge: str = "full",
            t_input: float = 0.0) -> DelayDistribution:
        """Sample the delay distribution.

        Args:
            stage: the stage (not modified).
            output: output node.
            direction: output transition.
            inputs: gate sources.
            n_samples: Monte-Carlo sample count.
            precharge: initial-condition style.
            t_input: input event time [s].
        """
        if n_samples < 2:
            raise ValueError("need at least 2 samples")
        transistors = [e.name for e in stage.transistors]
        nominal = self._delay(stage, output, direction, inputs,
                              precharge, t_input)
        samples: List[float] = []
        for _ in range(n_samples):
            factors = self.rng.normal(1.0, self.width_sigma,
                                      size=len(transistors))
            overrides = {
                name: max(stage.edge(name).w * float(f),
                          0.2 * stage.edge(name).w)
                for name, f in zip(transistors, factors)
            }
            perturbed = clone_stage(stage, overrides)
            samples.append(self._delay(perturbed, output, direction,
                                       inputs, precharge, t_input))
        return DelayDistribution(samples=np.asarray(samples),
                                 nominal=nominal)

    def _delay(self, stage, output, direction, inputs, precharge,
               t_input) -> float:
        solution = self.evaluator.evaluate(stage, output, direction,
                                           inputs, precharge=precharge)
        delay = solution.delay(t_input=t_input)
        if delay is None:
            raise RuntimeError("output never crossed 50%")
        return delay
