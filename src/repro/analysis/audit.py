"""Shadow-SPICE auditor: sampled in-run accuracy measurement.

The golden suite checks ~20 canned cases; it says nothing about the
arcs of the design actually being timed.  The auditor closes that gap:
during an audited STA run it deterministically samples N of the run's
attempted stage arcs, re-solves each with the adaptive transient
engine (the same reference solver the golden suite and the resilience
ladder's ``spice`` rung use — one measurement convention throughout),
and records per-arc delay/slew error with an error-budget attribution
naming the QWM solver phase that dominated the arc's residual.

Sampling contract (what makes audits reproducible and comparable):

* **Seeded** — arc choice is a pure function of (candidate set, seed).
* **Stratified by canonical form** — candidates are grouped by their
  Weisfeiler-Lehman stage fingerprint (:func:`repro.analysis.parallel.
  canonical_form_for`) and drawn round-robin across groups, so a
  decoder's 2^n isomorphic word-line NANDs cannot crowd the unique
  stages out of an N-arc budget.
* **Backend-independent** — the candidate set is the union of arcs
  noted during the run (workers ship their deltas home with the task
  payload, and set union commutes), and the audit solves happen in the
  parent process; serial, thread and process runs therefore produce
  bit-identical audit records.

Auditing is observability, not gating: odd arcs (no crossing, zero
reference) become non-ok record statuses, never exceptions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.accuracy import compare_delays
from repro.analysis.parallel import canonical_form_for
from repro.analysis.sta import StaResult, StaticTimingAnalyzer
from repro.circuit.stage import StageGraph
from repro.obs import observe
from repro.obs.accuracy import (
    AccuracyConfig,
    ArcKey,
    LEDGER_FORMAT,
    attribute_regions,
    capture_regions,
    configure_accuracy,
    observatory,
    slew_from_token,
)
from repro.obs.flight import flight
from repro.resilience.ladder import adaptive_spice_arc
from repro.spice.results import SimulationStats

__all__ = [
    "ArcSample", "AuditReport", "DEFAULT_AUDIT_BAND_PCT",
    "analyze_with_audit", "audit_arc", "collect_candidates",
    "stratified_sample",
]

#: Default audit acceptance band — matches the golden suite's delay
#: band, so "audit violation" and "golden violation" mean one thing.
DEFAULT_AUDIT_BAND_PCT = 10.0


@dataclass(frozen=True)
class ArcSample:
    """One sampled arc: where it lives plus its stratification key."""

    stage: str
    output: str
    direction: str
    switching_input: str
    input_slew: Optional[float]
    fingerprint: str

    @property
    def key(self) -> ArcKey:
        from repro.obs.accuracy import slew_token

        return (self.stage, self.output, self.direction,
                self.switching_input, slew_token(self.input_slew))

    @property
    def label(self) -> str:
        return (f"{self.stage}/{self.output}:{self.direction}"
                f"@{self.switching_input}")


def collect_candidates(graph: StageGraph,
                       analyzer: StaticTimingAnalyzer,
                       noted: Optional[Sequence[ArcKey]] = None
                       ) -> List[ArcSample]:
    """The audit candidate pool, fingerprinted for stratification.

    ``noted`` is the observatory's arc-candidate set from an audited
    run (the arcs STA actually attempted, with the run's real input
    slews).  Without it — auditing outside an STA run — every
    single-input-switching arc of the graph is enumerated with the
    analyzer's default stimulus.
    """
    forms: Dict[str, str] = {}

    def fingerprint(stage) -> str:
        if stage.name not in forms:
            forms[stage.name] = canonical_form_for(
                stage, analyzer).fingerprint
        return forms[stage.name]

    samples: List[ArcSample] = []
    if noted is not None:
        for key in sorted(noted):
            stage_name, output, direction, switching_input, token = key
            stage = graph.stage(stage_name)
            samples.append(ArcSample(
                stage=stage_name, output=output, direction=direction,
                switching_input=switching_input,
                input_slew=slew_from_token(token),
                fingerprint=fingerprint(stage)))
        return samples
    default_slew = (analyzer.input_slew if analyzer.propagate_slews
                    else None)
    for stage in sorted(graph.stages, key=lambda s: s.name):
        fp = fingerprint(stage)
        for node in stage.outputs:
            for direction in ("rise", "fall"):
                for switching_input in stage.inputs:
                    samples.append(ArcSample(
                        stage=stage.name, output=node.name,
                        direction=direction,
                        switching_input=switching_input,
                        input_slew=default_slew, fingerprint=fp))
    return samples


def stratified_sample(candidates: Sequence[ArcSample], count: int,
                      seed: int) -> List[ArcSample]:
    """Draw ``count`` arcs, round-robin across fingerprint strata.

    Deterministic: candidates are grouped by fingerprint, each group
    is shuffled by a :class:`random.Random` seeded from ``seed`` and
    the group's own fingerprint, and picks rotate across groups in
    sorted-fingerprint order — so isomorphic stages (one stratum)
    collectively get one pick per round no matter how many there are.
    The returned sample is sorted by arc key.
    """
    strata: Dict[str, List[ArcSample]] = {}
    for sample in candidates:
        strata.setdefault(sample.fingerprint, []).append(sample)
    queues: List[List[ArcSample]] = []
    for fp in sorted(strata):
        group = sorted(strata[fp], key=lambda s: s.key)
        random.Random(f"{seed}:{fp}").shuffle(group)
        queues.append(group)
    picked: List[ArcSample] = []
    while queues and len(picked) < count:
        exhausted = []
        for queue in queues:
            if len(picked) >= count:
                break
            picked.append(queue.pop())
            if not queue:
                exhausted.append(queue)
        for queue in exhausted:
            queues.remove(queue)
    return sorted(picked, key=lambda s: s.key)


def _table_cell(analyzer: StaticTimingAnalyzer, stage) -> Dict[str, Any]:
    """The table-model interpolation cell of the 50% crossing point.

    Attribution's third axis: which cell of the characterized (Vs, Vg)
    grid the arc's delay measurement lives in.  Coarse grids (large
    ``grid_step``) make this cell large, and interpolation error inside
    it is a real error-budget term alongside the solver phases.
    """
    step = getattr(analyzer.evaluator.library, "grid_step", None)
    if not step:
        return {"grid_step": None, "vg_cell": None, "vs_cell": None}
    half_vdd = 0.5 * stage.vdd
    return {"grid_step": float(step),
            "vg_cell": int(half_vdd / step),
            "vs_cell": int(half_vdd / step)}


def audit_arc(analyzer: StaticTimingAnalyzer, stage, sample: ArcSample,
              band_pct: float = DEFAULT_AUDIT_BAND_PCT
              ) -> Dict[str, Any]:
    """Re-solve one arc both ways and return its audit record.

    The QWM side runs through :meth:`~repro.analysis.sta.
    StaticTimingAnalyzer.stage_arc` (so escalation-ladder behavior and
    the arc's quality rung are preserved) under an armed region
    capture; the reference side is :func:`repro.resilience.ladder.
    adaptive_spice_arc`.  Odd arcs degrade to non-ok statuses.
    """
    qwm_stats = SimulationStats()
    with capture_regions() as capture:
        arc = analyzer.stage_arc(stage, sample.output, sample.direction,
                                 sample.switching_input,
                                 input_slew=sample.input_slew,
                                 stats=qwm_stats)
    qwm_delay = arc[0] if arc is not None else None
    qwm_slew = arc[1] if arc is not None else None
    quality = (arc[2] if arc is not None and len(arc) > 2 else None)
    ref_stats = SimulationStats()
    reference = adaptive_spice_arc(
        analyzer, stage, sample.output, sample.direction,
        sample.switching_input, input_slew=sample.input_slew,
        stats=ref_stats)
    ref_delay = reference[0] if reference is not None else None
    ref_slew = reference[1] if reference is not None else None
    delay_cmp = compare_delays(qwm_delay, ref_delay)
    slew_cmp = compare_delays(qwm_slew, ref_slew)
    attribution = attribute_regions(capture.notes)
    attribution["table_cell"] = _table_cell(analyzer, stage)
    margin = (band_pct - delay_cmp.error_percent
              if delay_cmp.ok else None)
    record = {
        "arc": list(sample.key),
        "fingerprint": sample.fingerprint,
        "status": delay_cmp.status,
        "qwm": {"delay": qwm_delay, "slew": qwm_slew,
                "quality": quality},
        "spice": {"delay": ref_delay, "slew": ref_slew},
        "delay_error_pct": delay_cmp.error_percent,
        "slew_error_pct": slew_cmp.error_percent,
        "band_pct": float(band_pct),
        "margin_to_band_pct": margin,
        "attribution": attribution,
    }
    if delay_cmp.ok:
        observe("accuracy.audit.delay_error_pct",
                delay_cmp.error_percent)
    if slew_cmp.ok:
        observe("accuracy.audit.slew_error_pct",
                slew_cmp.error_percent)
    if margin is not None and margin < 0.0:
        _capture_audit_violation(sample, record)
    return record


def _capture_audit_violation(sample: ArcSample,
                             record: Dict[str, Any]) -> None:
    """Emit a flight bundle for an out-of-band audit arc."""
    fl = flight()
    if not fl.enabled or not fl.config.capture_bundles:
        return
    with fl.context(audit_arc=sample.label,
                    delay_error_pct=record["delay_error_pct"],
                    attribution=record["attribution"].get("dominant")):
        fl.force_capture("audit_band_violation")
        fl.consume_force_capture()


@dataclass(frozen=True)
class AuditReport:
    """The audit's records plus their roll-up summary."""

    records: List[Dict[str, Any]]
    seed: int
    requested: int
    candidates: int
    band_pct: float

    def summary(self) -> Dict[str, Any]:
        errors = [r["delay_error_pct"] for r in self.records
                  if r["delay_error_pct"] is not None]
        worst = None
        for record in self.records:
            err = record["delay_error_pct"]
            if err is None:
                continue
            if worst is None or err > worst["delay_error_pct"]:
                worst = record
        by_phase: Dict[str, int] = {}
        for record in self.records:
            dominant = record["attribution"].get("dominant")
            if dominant is not None:
                by_phase[dominant] = by_phase.get(dominant, 0) + 1
        return {
            "arcs_audited": len(self.records),
            "arcs_compared": len(errors),
            "candidates": self.candidates,
            "requested": self.requested,
            "seed": self.seed,
            "band_pct": self.band_pct,
            "mean_delay_error_pct": (sum(errors) / len(errors)
                                     if errors else None),
            "worst_delay_error_pct": (max(errors) if errors else None),
            "worst_arc": (list(worst["arc"]) if worst else None),
            "violations": sum(
                1 for r in self.records
                if r["margin_to_band_pct"] is not None
                and r["margin_to_band_pct"] < 0.0),
            "attribution_by_phase": {label: by_phase[label]
                                     for label in sorted(by_phase)},
        }

    def to_json(self) -> Dict[str, Any]:
        return {"format": LEDGER_FORMAT,
                "records": list(self.records),
                "summary": self.summary()}

    def history_cases(self) -> Dict[str, Dict[str, Any]]:
        """Records keyed for the accuracy-history ledger."""
        cases = {}
        for record in self.records:
            name = "/".join(record["arc"][:4])
            cases[name] = {
                "delay_error_pct": record["delay_error_pct"],
                "slew_error_pct": record["slew_error_pct"],
                "margin_to_band_pct": record["margin_to_band_pct"],
                "attribution": record["attribution"].get("dominant"),
                "status": record["status"],
            }
        return cases

    def render(self) -> str:
        """Human-readable audit table."""
        lines = [f"{'arc':<40}{'qwm':>10}{'spice':>10}{'err%':>8}"
                 f"  attribution",
                 "-" * 84]
        for record in self.records:
            arc = "/".join(record["arc"][:4])
            qwm_delay = record["qwm"]["delay"]
            ref_delay = record["spice"]["delay"]
            err = record["delay_error_pct"]
            dominant = record["attribution"].get("dominant") or "-"
            if err is None:
                lines.append(f"{arc:<40}{'-':>10}{'-':>10}"
                             f"{record['status']:>8}  {dominant}")
                continue
            flag = "" if record["margin_to_band_pct"] >= 0.0 else " !"
            lines.append(
                f"{arc:<40}{qwm_delay * 1e12:>8.2f}ps"
                f"{ref_delay * 1e12:>8.2f}ps{err:>7.2f}%"
                f"  {dominant}{flag}")
        stats = self.summary()
        lines.append("-" * 84)
        mean = stats["mean_delay_error_pct"]
        worst = stats["worst_delay_error_pct"]
        lines.append(
            f"{stats['arcs_audited']} arcs audited "
            f"(of {stats['candidates']} candidates, "
            f"seed {stats['seed']}), "
            + (f"mean error {mean:.2f}%, worst {worst:.2f}%, "
               if mean is not None else "no comparable arcs, ")
            + f"{stats['violations']} outside the "
              f"{stats['band_pct']:.1f}% band")
        return "\n".join(lines)


def analyze_with_audit(analyzer: StaticTimingAnalyzer,
                       graph: StageGraph,
                       count: int,
                       seed: int = 0,
                       band_pct: float = DEFAULT_AUDIT_BAND_PCT,
                       input_arrivals=None
                       ) -> Tuple[StaResult, AuditReport]:
    """Run a full STA with shadow-SPICE auditing.

    Enables the accuracy observatory for the run (restoring the prior
    configuration afterwards), collects the arcs the run attempted,
    samples ``count`` of them and audits each **in the parent
    process** — which, together with the drained-delta candidate
    union, is why serial and process backends produce bit-identical
    audit records.  The report is attached to ``result.audit``.
    """
    obs = observatory()
    own = not obs.enabled
    if own:
        obs = configure_accuracy(AccuracyConfig(enabled=True))
    try:
        result = analyzer.analyze(graph, input_arrivals)
        noted = obs.drain()["arcs"]
    finally:
        if own:
            from repro.obs.accuracy import disable_accuracy

            disable_accuracy()
    candidates = collect_candidates(
        graph, analyzer, noted=[tuple(arc) for arc in noted])
    sampled = stratified_sample(candidates, count, seed)
    records = [audit_arc(analyzer, graph.stage(sample.stage), sample,
                         band_pct=band_pct)
               for sample in sampled]
    report = AuditReport(records=records, seed=seed, requested=count,
                         candidates=len(candidates), band_pct=band_pct)
    result.audit = report.to_json()
    return result, report
