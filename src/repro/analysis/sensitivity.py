"""Delay sensitivity to transistor sizing, computed with QWM.

Because one QWM evaluation costs only K small Newton solves, finite-
difference sensitivities — prohibitive with a SPICE engine in the loop —
become routine: perturb one device's width, re-evaluate, difference.
This enables gate-sizing loops driven by transistor-level timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.circuit.elements import DeviceKind
from repro.circuit.netlist import LogicStage
from repro.core.engine import WaveformEvaluator
from repro.spice.sources import SourceLike


def clone_stage(stage: LogicStage,
                width_overrides: Optional[Dict[str, float]] = None
                ) -> LogicStage:
    """Deep-copy a stage, optionally overriding device widths.

    Args:
        stage: the stage to copy.
        width_overrides: edge name -> new width [m].
    """
    overrides = width_overrides or {}
    unknown = set(overrides) - {e.name for e in stage.edges}
    if unknown:
        raise KeyError(f"unknown devices: {sorted(unknown)}")
    copy = LogicStage(stage.name, vdd=stage.vdd)
    for edge in stage.edges:
        w = overrides.get(edge.name, edge.w)
        if edge.kind is DeviceKind.NMOS:
            copy.add_nmos(edge.name, edge.src.name, edge.snk.name,
                          edge.gate_input, w, edge.l)
        elif edge.kind is DeviceKind.PMOS:
            copy.add_pmos(edge.name, edge.src.name, edge.snk.name,
                          edge.gate_input, w, edge.l)
        else:
            copy.add_wire(edge.name, edge.src.name, edge.snk.name,
                          w, edge.l)
    for node in stage.internal_nodes:
        copy.add_node(node.name).load_cap = node.load_cap
        if node.is_output:
            copy.mark_output(node.name)
    return copy


@dataclass(frozen=True)
class SensitivityResult:
    """d(delay)/d(width) of one device.

    Attributes:
        device: edge name.
        nominal_width: unperturbed width [m].
        nominal_delay: unperturbed 50% delay [s].
        sensitivity: d(delay)/d(width) [s/m] (negative means upsizing
            this device speeds the path up).
    """

    device: str
    nominal_width: float
    nominal_delay: float
    sensitivity: float

    @property
    def normalized(self) -> float:
        """Relative sensitivity: percent delay change per percent width."""
        return (self.sensitivity * self.nominal_width
                / self.nominal_delay)


class SizingSensitivity:
    """Finite-difference delay sensitivities over a stage's devices.

    Args:
        evaluator: the QWM evaluator to use (characterized library is
            reused across all perturbed evaluations).
        rel_step: relative width perturbation for the central
            difference.
    """

    def __init__(self, evaluator: WaveformEvaluator,
                 rel_step: float = 0.05):
        if not 0 < rel_step < 0.5:
            raise ValueError("rel_step must be in (0, 0.5)")
        self.evaluator = evaluator
        self.rel_step = rel_step

    def _delay(self, stage: LogicStage, output: str, direction: str,
               inputs: Dict[str, SourceLike], precharge: str,
               t_input: float) -> float:
        solution = self.evaluator.evaluate(stage, output, direction,
                                           inputs, precharge=precharge)
        delay = solution.delay(t_input=t_input)
        if delay is None:
            raise RuntimeError("output never crossed 50%")
        return delay

    def device(self, stage: LogicStage, device_name: str, output: str,
               direction: str, inputs: Dict[str, SourceLike],
               precharge: str = "full",
               t_input: float = 0.0) -> SensitivityResult:
        """Sensitivity of one device's width."""
        edge = stage.edge(device_name)
        if not edge.kind.is_transistor:
            raise ValueError(f"{device_name!r} is not a transistor")
        w0 = edge.w
        dw = self.rel_step * w0
        d_nom = self._delay(stage, output, direction, inputs, precharge,
                            t_input)
        d_hi = self._delay(
            clone_stage(stage, {device_name: w0 + dw}), output,
            direction, inputs, precharge, t_input)
        d_lo = self._delay(
            clone_stage(stage, {device_name: w0 - dw}), output,
            direction, inputs, precharge, t_input)
        return SensitivityResult(
            device=device_name, nominal_width=w0, nominal_delay=d_nom,
            sensitivity=(d_hi - d_lo) / (2.0 * dw))

    def all_path_devices(self, stage: LogicStage, output: str,
                         direction: str, inputs: Dict[str, SourceLike],
                         precharge: str = "full",
                         t_input: float = 0.0) -> List[SensitivityResult]:
        """Sensitivities for every transistor on the pull path."""
        path = self.evaluator.extract(stage, output, direction, inputs)
        return [
            self.device(stage, dev.name, output, direction, inputs,
                        precharge, t_input)
            for dev in path.devices if dev.is_transistor
        ]
