"""Parallel levelized STA execution with stage-result caching.

The paper's pitch is that a K-transistor stage costs K small algebraic
solves instead of thousands of SPICE steps; this module amortizes that
across whole-graph analysis in two orthogonal ways:

* **Scheduling** — :class:`ParallelStaEngine` dispatches the levelized
  stage graph onto a worker pool (``concurrent.futures`` thread or
  process backends behind one :class:`ExecutionConfig`).  Dispatch is
  dependency-aware: a stage is submitted as soon as every fanin stage
  has merged its arrival waveforms, not when its whole level barrier
  clears.  Workers change *scheduling only*: every arc is evaluated by
  :func:`repro.analysis.sta.compute_stage_arrivals` — the same function
  the serial loop runs — so arrival times are identical to the serial
  engine bit for bit.

* **Stage-result caching** — :class:`StageResultCache` memoizes arc
  results ``(delay, output_slew)`` keyed by a canonical hash of stage
  topology, device geometry, loads, technology, solver options and the
  (optionally bucketed) input slew.  Repeated gate configurations — the
  common case in decoders and the Table-1 gate set — are solved once.
  Hit/miss counts feed the ``sta.cache`` metric in :mod:`repro.obs`,
  and the cache can persist to an on-disk JSON store.

Correctness is scheduler-independent by construction: arc math never
reads scheduler state, a stage only runs once its fanins are final, and
the final worst/critical-path selection scans events in sorted order
(see DESIGN.md, "Parallel execution & caching").
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from collections import OrderedDict
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                Executor, ProcessPoolExecutor,
                                ThreadPoolExecutor, wait)
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (Callable, Dict, FrozenSet, Iterator, List, Optional,
                    Set, Tuple)

from repro.analysis.sta import (ArcFn, ArrivalTime, Event, StaResult,
                                StaticTimingAnalyzer,
                                compute_stage_arrivals, finalize_result,
                                primary_input_arrivals)
from repro.circuit.netlist import LogicStage
from repro.circuit.stage import StageGraph
from repro.obs import inc, set_gauge, span
from repro.obs.accuracy import observatory
from repro.obs.flight import flight
from repro.obs.profile import profile_add, profiler
from repro.resilience import faults
from repro.resilience.budget import (CLAMP_FULL, AdmissionController,
                                     RunBudget)
from repro.resilience.journal import (JournalError, RunJournal,
                                      run_fingerprint)
from repro.spice.results import SimulationStats

BACKENDS = ("serial", "thread", "process")

#: (fingerprint, arc id) -> cached arc result.
CacheKey = Tuple[str, str]
#: Cached arc value: (delay, output_slew, quality) or None (arc not
#: sensitizable — caching the failure avoids re-proving it).  The
#: quality element is the escalation-ladder rung that produced the
#: numbers (see :mod:`repro.resilience.ladder`).
CachedArc = Optional[Tuple[float, Optional[float], Optional[str]]]

_MISS = object()


@dataclass(frozen=True)
class ExecutionConfig:
    """How an STA run is scheduled and cached.

    Attributes:
        workers: worker-pool size (ignored by the serial backend).
        backend: ``"serial"`` (in-process loop, still cache-capable),
            ``"thread"`` (shared-memory pool; low overhead, concurrency
            bounded by how often the solver drops the GIL) or
            ``"process"`` (true parallelism; per-worker start-up cost —
            each worker receives the pickled characterized tables once).
        cache: enable stage-result caching.
        cache_size: in-memory LRU capacity (entries).
        cache_path: optional JSON store; loaded before the run (if it
            exists) and rewritten after, so caches persist across
            processes/runs.
        cache_slew_bucket: optional input-slew quantum [s].  When set,
            arc input slews are rounded to this grid *before solving*,
            trading arrival accuracy for cache hits across nearly-equal
            upstream slews.  Results stay deterministic (the quantized
            slew is solved, not approximated from a neighbor) but no
            longer match the serial no-bucket arithmetic — leave None
            (exact keys) when bit-identical arrivals matter.
        stage_timeout: optional wall-clock watchdog per dispatched
            stage task [s].  A pooled task that exceeds it is
            abandoned (its worker may be hung) and the stage is
            re-dispatched into the main process; None disables the
            watchdog (the default — polling costs a wake-up every
            quarter-timeout).
        deadline: optional run-level wall-clock budget [s].  An
            admission controller clamps the escalation ladder per wave
            (full → no-spice → bound) so the run finishes inside
            deadline+grace with honest quality tags (see
            :mod:`repro.resilience.budget`).
        grace: optional explicit grace allowance [s] for the wave in
            flight at the deadline; defaults to ``max(0.5, 0.1 *
            deadline)``.
        journal_path: optional crash-safe run journal (JSONL, format
            ``repro-run-journal/1``); each completed wave's arrival
            deltas checkpoint atomically (see
            :mod:`repro.resilience.journal`).
        resume: replay completed waves from ``journal_path`` before
            running the rest; requires ``journal_path``.  Arrivals are
            bit-identical to an uninterrupted run.
    """

    workers: int = 1
    backend: str = "serial"
    cache: bool = False
    cache_size: int = 4096
    cache_path: Optional[str] = None
    cache_slew_bucket: Optional[float] = None
    stage_timeout: Optional[float] = None
    deadline: Optional[float] = None
    grace: Optional[float] = None
    journal_path: Optional[str] = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {self.backend!r}")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if self.cache_slew_bucket is not None \
                and self.cache_slew_bucket <= 0:
            raise ValueError("cache_slew_bucket must be positive")
        if self.stage_timeout is not None and self.stage_timeout <= 0:
            raise ValueError("stage_timeout must be positive or None")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive or None")
        if self.grace is not None and self.grace <= 0:
            raise ValueError("grace must be positive or None")
        if self.resume and self.journal_path is None:
            raise ValueError("resume requires journal_path")

    @property
    def wants_cache(self) -> bool:
        return self.cache or self.cache_path is not None


@dataclass(frozen=True)
class CanonicalForm:
    """Name-independent identity of a stage, for cache keying.

    Attributes:
        fingerprint: hash of the canonicalized stage (topology, device
            geometry, node loads) plus the solver context (technology,
            QWM options, characterization grid).
        net_ids: actual net name -> canonical net id.
        input_ids: actual input-signal name -> canonical input id.
    """

    fingerprint: str
    net_ids: Dict[str, str]
    input_ids: Dict[str, str]


def _digest(payload: object) -> str:
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:16]


def canonical_stage_form(stage: LogicStage,
                         context: Tuple = ()) -> CanonicalForm:
    """Canonicalize a stage up to net/input renaming.

    Two stages that are isomorphic as labeled polar graphs — same
    element kinds, geometries, connectivity, loads and output marking,
    with nets and input signals renamed arbitrarily — receive the same
    fingerprint and corresponding canonical ids.  This is the
    structural equivalence a decoder's repeated gate configurations
    exhibit, and it is what lets one cached NAND solve serve every word
    line.

    Implementation: Weisfeiler-Lehman-style color refinement over nets
    and input signals (supplies keep fixed colors), then canonical ids
    assigned by sorted final color.  Color ties are broken by original
    name; for the tiny, load-annotated stages QWM partitions, equal
    colors mean genuinely symmetric (automorphic) elements, so the tie
    break cannot make two equivalent stages disagree.
    """
    from repro.circuit.netlist import GND_NODE, VDD_NODE

    nets = [node for node in stage.nodes
            if node.name not in (VDD_NODE, GND_NODE)]
    inputs = list(stage.inputs)

    def geometry(edge) -> Tuple[str, str, str]:
        return (edge.kind.value, repr(round(edge.w, 15)),
                repr(round(edge.l, 15)))

    color: Dict[Tuple[str, str], str] = {
        ("net", VDD_NODE): "VDD", ("net", GND_NODE): "GND"}
    for node in nets:
        color[("net", node.name)] = _digest(
            ("net", repr(round(node.load_cap, 21)), node.is_output))
    for name in inputs:
        color[("sig", name)] = "sig"

    rounds = len(nets) + len(inputs) + 2
    for _ in range(rounds):
        refined: Dict[Tuple[str, str], str] = {
            ("net", VDD_NODE): "VDD", ("net", GND_NODE): "GND"}
        for node in nets:
            items = []
            for edge in node.edges:
                role = "src" if edge.src is node else "snk"
                gate = (color[("sig", edge.gate_input)]
                        if edge.gate_input else "-")
                other = color[("net", edge.other(node).name)]
                items.append(geometry(edge) + (role, gate, other))
            refined[("net", node.name)] = _digest(
                (color[("net", node.name)], sorted(items)))
        for name in inputs:
            items = []
            for edge in stage.edges_with_gate(name):
                items.append(geometry(edge)
                             + (color[("net", edge.src.name)],
                                color[("net", edge.snk.name)]))
            refined[("sig", name)] = _digest(
                (color[("sig", name)], sorted(items)))
        if refined == color:
            break
        color = refined

    net_ids = {VDD_NODE: "VDD", GND_NODE: "GND"}
    ordered = sorted(nets, key=lambda n: (color[("net", n.name)],
                                          n.name))
    for index, node in enumerate(ordered):
        net_ids[node.name] = f"n{index}"
    input_ids = {}
    for index, name in enumerate(sorted(
            inputs, key=lambda s: (color[("sig", s)], s))):
        input_ids[name] = f"i{index}"

    edges = sorted(
        geometry(edge)
        + (input_ids.get(edge.gate_input, "-") if edge.gate_input
           else "-",
           net_ids[edge.src.name], net_ids[edge.snk.name])
        for edge in stage.edges)
    loads = sorted((net_ids[node.name], repr(round(node.load_cap, 21)),
                    node.is_output) for node in nets)
    fingerprint = hashlib.sha256(repr(
        (context, stage.vdd, edges, loads)).encode("utf-8")
    ).hexdigest()[:24]
    return CanonicalForm(fingerprint=fingerprint, net_ids=net_ids,
                         input_ids=input_ids)


def stage_fingerprint(stage: LogicStage, analyzer: StaticTimingAnalyzer
                      ) -> str:
    """Canonical hash of everything that determines a stage's arc math.

    Convenience wrapper over :func:`canonical_stage_form` with the
    analyzer's solver context mixed in; equal fingerprints mean equal
    arc results for corresponding stimuli.  The stage *name* and its
    net names are deliberately excluded.
    """
    return canonical_form_for(stage, analyzer).fingerprint


def canonical_form_for(stage: LogicStage,
                       analyzer: StaticTimingAnalyzer) -> CanonicalForm:
    """The stage's :class:`CanonicalForm` under an analyzer's context."""
    context = (repr(analyzer.tech),
               repr(analyzer.evaluator.options),
               getattr(analyzer.evaluator.library, "grid_step", None))
    return canonical_stage_form(stage, context=context)


def _slew_token(input_slew: Optional[float]) -> str:
    return "step" if not input_slew else repr(float(input_slew))


def quantize_slew(input_slew: Optional[float],
                  bucket: Optional[float]) -> Optional[float]:
    """Round a slew onto the cache bucket grid (identity when exact)."""
    if input_slew is None or bucket is None:
        return input_slew
    return max(bucket, round(input_slew / bucket) * bucket)


def arc_cache_key(fingerprint: str, output: str, direction: str,
                  switching_input: str,
                  input_slew: Optional[float]) -> CacheKey:
    return (fingerprint,
            f"{output}|{direction}|{switching_input}|"
            f"{_slew_token(input_slew)}")


class StageResultCache:
    """Thread-safe LRU of stage-arc results, with optional JSON store.

    Args:
        max_entries: LRU capacity; least-recently-used entries are
            evicted beyond it.
        path: optional JSON store loaded on construction (missing file
            is fine) and written by :meth:`save`.
    """

    VERSION = 2

    def __init__(self, max_entries: int = 4096,
                 path: Optional[str] = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.path = path
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._data: "OrderedDict[CacheKey, CachedArc]" = OrderedDict()
        if path is not None and os.path.exists(path):
            self.load(path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    # ------------------------------------------------------------------
    def get(self, key: CacheKey):
        """The cached value, or the module-private miss sentinel.

        Callers must compare against the returned object with
        :meth:`found` — ``None`` is a legitimate cached value (an arc
        proven unsensitizable).
        """
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                value = self._data[key]
                self.hits += 1
                inc("sta.cache", result="hit")
                profile_add("cache_hits", 1, root="sta.cache")
                return value
            self.misses += 1
            inc("sta.cache", result="miss")
            return _MISS

    @staticmethod
    def found(value: object) -> bool:
        """True when :meth:`get` returned a real (possibly None) entry."""
        return value is not _MISS

    def put(self, key: CacheKey, value: CachedArc) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
            set_gauge("sta.cache.entries", len(self._data))

    def record_external(self, hits: int, misses: int) -> None:
        """Fold hit/miss counts observed inside process workers in."""
        with self._lock:
            self.hits += hits
            self.misses += misses
        if hits:
            inc("sta.cache", hits, result="hit")
        if misses:
            inc("sta.cache", misses, result="miss")

    def entries_for(self, fingerprint: str) -> Dict[CacheKey, CachedArc]:
        """Snapshot of the entries one stage task could hit."""
        with self._lock:
            return {key: value for key, value in self._data.items()
                    if key[0] == fingerprint}

    def merge(self, entries: Dict[CacheKey, CachedArc]) -> None:
        for key, value in entries.items():
            self.put(key, value)

    # ------------------------------------------------------------------
    def _quarantine(self, path: str, reason: str = "parse") -> None:
        """Move a corrupt store aside so it never crashes a run again.

        The original bytes are preserved (``<path>.corrupt``) for
        post-mortem; the analysis proceeds with a cold cache.
        """
        inc("cache.store_corrupt", reason=reason)
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            pass

    @staticmethod
    def _parse_store(document: object
                     ) -> List[Tuple[CacheKey, CachedArc]]:
        """Entries of a well-formed store document (raises otherwise)."""
        if not isinstance(document, dict) \
                or not isinstance(document.get("entries", {}), dict):
            raise ValueError("malformed store document")
        parsed: List[Tuple[CacheKey, CachedArc]] = []
        for joined, value in document.get("entries", {}).items():
            fingerprint, _, arc = joined.partition("/")
            cached: CachedArc = None
            if value is not None:
                delay, out_slew = value[0], value[1]
                quality = value[2] if len(value) > 2 else None
                cached = (float(delay),
                          None if out_slew is None else float(out_slew),
                          None if quality is None else str(quality))
            parsed.append(((fingerprint, arc), cached))
        return parsed

    def load(self, path: str) -> int:
        """Load a JSON store (merging into the LRU); returns entry count.

        Robust by design: a truncated or corrupted store (a crash
        mid-write, a bad copy) is a *cache miss*, not a fatal error —
        the file is quarantined to ``<path>.corrupt``, the
        ``cache.store_corrupt`` counter increments, and 0 entries
        load.  A store stamped with a different schema version
        quarantines the same way (its key layout or value tuple may
        not mean what this code assumes — treating it as data risks
        silently wrong arrivals).
        """
        try:
            with open(path) as handle:
                document = json.load(handle)
            if isinstance(document, dict) \
                    and document.get("version") != self.VERSION:
                self._quarantine(path, reason="version")
                return 0
            loaded = self._parse_store(document)
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError,
                TypeError, IndexError, KeyError):
            self._quarantine(path)
            return 0
        for key, cached in loaded:
            self.put(key, cached)
        return len(loaded)

    @staticmethod
    @contextmanager
    def _store_lock(target: str) -> Iterator[None]:
        """Advisory file lock serializing multi-process store writes.

        Best-effort: on platforms without ``fcntl`` the lock degrades
        to a no-op (the atomic rename still guarantees readers never
        see a torn file — the lock only prevents concurrent writers
        from losing each other's entries).
        """
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX
            yield
            return
        lock_path = target + ".lock"
        with open(lock_path, "w") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def save(self, path: Optional[str] = None) -> str:
        """Write the JSON store (defaults to the construction path).

        Multi-process safe: the write happens under an advisory file
        lock, merges any valid entries another process persisted since
        our load (ours win on conflict), and lands via an atomic
        tmp-file + fsync + rename — a reader or a crash mid-save sees
        either the old store or the new one, never a torn file.
        """
        target = path or self.path
        if target is None:
            raise ValueError("no store path configured")
        with self._lock:
            entries = {f"{fp}/{arc}": (None if value is None
                                       else [value[0], value[1],
                                             (value[2] if len(value) > 2
                                              else None)])
                       for (fp, arc), value in self._data.items()}
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        with self._store_lock(target):
            if os.path.exists(target):
                try:
                    with open(target) as handle:
                        document = json.load(handle)
                    if isinstance(document, dict) \
                            and document.get("version") == self.VERSION:
                        for (fp, arc), cached in \
                                self._parse_store(document):
                            entries.setdefault(
                                f"{fp}/{arc}",
                                None if cached is None
                                else [cached[0], cached[1], cached[2]])
                except (json.JSONDecodeError, UnicodeDecodeError,
                        ValueError, TypeError, IndexError, KeyError,
                        OSError):
                    pass
            document = {"version": self.VERSION, "entries": entries}
            tmp = target + ".tmp"
            with open(tmp, "w") as handle:
                json.dump(document, handle, indent=1, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, target)
        return target


# ----------------------------------------------------------------------
# Worker-side evaluation (shared by every backend).
# ----------------------------------------------------------------------
def _cached_arc_fn(base: ArcFn, form: CanonicalForm,
                   cache_get: Callable[[CacheKey], object],
                   cache_put: Callable[[CacheKey, CachedArc], None],
                   bucket: Optional[float]) -> ArcFn:
    """Wrap an arc evaluator with cache lookup/insert.

    Keys use the stage's *canonical* net/input ids, so isomorphic
    stages (a decoder's repeated NANDs, for example) share entries no
    matter what their nets are called.

    When the flight recorder is on, misses attribute the solve-id range
    the arc consumed to its cache key and hits point back at those
    origin solves — cache-served results keep their forensics trail.
    """
    def arc_fn(stage: LogicStage, output: str, out_direction: str,
               switching_input: str, input_slew: Optional[float]
               ) -> CachedArc:
        effective = quantize_slew(input_slew, bucket)
        key = arc_cache_key(form.fingerprint, form.net_ids[output],
                            out_direction,
                            form.input_ids[switching_input], effective)
        value = cache_get(key)
        fl = flight()
        if StageResultCache.found(value):
            if fl.enabled:
                fl.note_cache_hit(f"{key[0]}/{key[1]}")
            return value  # type: ignore[return-value]
        first_solve = fl.next_solve_id() if fl.enabled else 0
        result = base(stage, output, out_direction, switching_input,
                      effective)
        cache_put(key, result)
        if fl.enabled:
            fl.note_arc_result(f"{key[0]}/{key[1]}", first_solve,
                               fl.next_solve_id())
        return result
    return arc_fn


def _evaluate_stage(analyzer: StaticTimingAnalyzer, stage: LogicStage,
                    snapshot: Dict[Event, ArrivalTime],
                    cache: Optional[StageResultCache],
                    form: Optional[CanonicalForm],
                    bucket: Optional[float],
                    clamp: Optional[str] = None
                    ) -> Tuple[Dict[Event, ArrivalTime],
                               SimulationStats]:
    """One stage task: arrivals for the stage's output events + cost.

    All QWM cost is folded into a task-local accumulator, so thread
    workers never touch shared mutable state.  A non-None ``clamp``
    (admission control under deadline pressure) degrades the arc math;
    clamped results may *read* the cache but are never stored — a
    deadline-starved run must not poison the shared cache with
    bounded arcs a later unconstrained run would then reuse.
    """
    stats = SimulationStats()

    def base(stage_: LogicStage, output: str, out_direction: str,
             switching_input: str, input_slew: Optional[float]
             ) -> CachedArc:
        return analyzer.stage_arc(stage_, output, out_direction,
                                  switching_input,
                                  input_slew=input_slew, stats=stats,
                                  clamp=clamp)

    arc_fn: ArcFn = base
    if cache is not None and form is not None:
        cache_put = (cache.put if clamp is None
                     else lambda key, value: None)
        arc_fn = _cached_arc_fn(base, form, cache.get, cache_put,
                                bucket)
    computed = compute_stage_arrivals(stage, snapshot, arc_fn,
                                      analyzer.propagate_slews,
                                      analyzer.input_slew)
    return computed, stats


# ----------------------------------------------------------------------
# Process-backend plumbing: one analyzer per worker process, built once
# by the pool initializer (the characterized table library ships pickled
# with the initargs, so workers skip re-characterization).
# ----------------------------------------------------------------------
_WORKER_ANALYZER: Optional[StaticTimingAnalyzer] = None


def _process_worker_init(tech, library, options, propagate_slews,
                         input_slew, flight_config=None,
                         fault_plan=None, profile_config=None,
                         accuracy_config=None) -> None:
    global _WORKER_ANALYZER
    _WORKER_ANALYZER = StaticTimingAnalyzer(
        tech, library=library, options=options,
        propagate_slews=propagate_slews, input_slew=input_slew)
    if profile_config is not None and profile_config.enabled:
        # Workers accumulate into their own ledgers; each stage task
        # drains its ledger into the return payload so the parent can
        # merge deterministically (cell-wise addition is commutative).
        from repro.obs.profile import configure_profile

        configure_profile(profile_config)
    if accuracy_config is not None and accuracy_config.enabled:
        # Same delta-shipping shape as the profiler: workers note arc
        # candidates locally, each stage task drains them into the
        # payload, and the parent's merge is a set union — so the
        # audited candidate set is backend-independent.
        from repro.obs.accuracy import configure_accuracy

        configure_accuracy(accuracy_config)
    if flight_config is not None and flight_config.enabled:
        # Workers record into their own ledgers; bundles (the durable
        # artifact) land in the shared bundle_dir either way.
        from repro.obs.flight import configure_flight

        configure_flight(flight_config)
    # Fault plans follow the work into the pool so worker-scoped
    # faults (crash/hang) and solver faults fire where the chaos
    # harness aimed them; the worker marks itself so crash faults can
    # never fire in the parent re-dispatch path.
    faults.mark_worker_process()
    if fault_plan is not None:
        faults.install(fault_plan)


def _process_stage_task(stage: LogicStage,
                        snapshot: Dict[Event, ArrivalTime],
                        form: Optional[CanonicalForm],
                        shipped: Optional[Dict[CacheKey, CachedArc]],
                        bucket: Optional[float],
                        clamp: Optional[str] = None):
    """Worker-process task: evaluate one stage against shipped cache.

    Returns (arrivals, stats, new cache entries, shipped-entry hits,
    drained profile ledger or None, drained accuracy ledger or None);
    the parent merges the new entries into the shared cache so later
    dispatches of equal configurations hit, and merges the ledgers
    into the parent profiler / accuracy observatory.  Clamped arcs
    (deadline pressure) never enter ``new_entries`` — degraded
    results must not poison the shared cache.
    """
    analyzer = _WORKER_ANALYZER
    assert analyzer is not None, "worker pool initializer did not run"
    faults.worker_gate(stage.name)
    stats = SimulationStats()
    new_entries: Dict[CacheKey, CachedArc] = {}
    hit_count = 0

    def base(stage_, output, out_direction, switching_input, input_slew):
        return analyzer.stage_arc(stage_, output, out_direction,
                                  switching_input,
                                  input_slew=input_slew, stats=stats,
                                  clamp=clamp)

    arc_fn: ArcFn = base
    if shipped is not None and form is not None:
        def cache_get(key: CacheKey):
            nonlocal hit_count
            if key in shipped:
                hit_count += 1
                return shipped[key]
            return _MISS

        def cache_put(key: CacheKey, value: CachedArc) -> None:
            shipped[key] = value
            if clamp is None:
                new_entries[key] = value

        arc_fn = _cached_arc_fn(base, form, cache_get, cache_put,
                                bucket)
    computed = compute_stage_arrivals(stage, snapshot, arc_fn,
                                      analyzer.propagate_slews,
                                      analyzer.input_slew)
    prof = profiler()
    ledger = prof.drain() if prof.enabled else None
    acc = observatory()
    accuracy_delta = acc.drain() if acc.enabled else None
    return computed, stats, new_entries, hit_count, ledger, \
        accuracy_delta


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------
class ParallelStaEngine:
    """Schedules one STA run per :class:`ExecutionConfig`.

    Args:
        analyzer: the configured :class:`StaticTimingAnalyzer` (its
            technology, options and slew mode define the arc math).
        config: scheduling/caching policy.
        cache: optional shared cache instance; when omitted and the
            config wants caching, a private cache is created (loading
            ``config.cache_path`` if present).
    """

    def __init__(self, analyzer: StaticTimingAnalyzer,
                 config: ExecutionConfig,
                 cache: Optional[StageResultCache] = None):
        self.analyzer = analyzer
        self.config = config
        if cache is None and config.wants_cache:
            cache = StageResultCache(max_entries=config.cache_size,
                                     path=config.cache_path)
        self.cache = cache
        # Set by the SIGINT/SIGTERM handlers (and tests); the schedulers
        # stop dispatching at the next stage boundary, the last flushed
        # journal checkpoint stands, and run() returns a partial result.
        self._interrupt = threading.Event()

    # ------------------------------------------------------------------
    def run(self, graph: StageGraph,
            input_arrivals: Optional[Dict[Event, float]] = None
            ) -> StaResult:
        """Run STA over the graph; arrivals match the serial engine."""
        analyzer = self.analyzer
        config = self.config
        primary_slew = (analyzer.input_slew
                        if analyzer.propagate_slews else None)
        arrivals, driven = primary_input_arrivals(
            graph, input_arrivals, primary_slew)
        with span("sta.levelize", stages=len(graph.stages)):
            order = list(graph.topological_order())
        waves = self._wave_indices(graph, order)
        if waves:
            set_gauge("sta.parallel.waves", max(waves.values()) + 1)

        forms: Dict[str, Optional[CanonicalForm]] = {}
        for stage in order:
            forms[stage.name] = (canonical_form_for(stage, analyzer)
                                 if self.cache is not None else None)

        controller: Optional[AdmissionController] = None
        if config.deadline is not None:
            parallelism = (config.workers
                           if config.backend != "serial" else 1)
            controller = AdmissionController(
                RunBudget(config.deadline, config.grace),
                parallelism=parallelism)

        journal, done, replayed_stats, resumed = self._prepare_journal(
            graph, order, waves, arrivals, input_arrivals)

        self._interrupt.clear()
        with self._signal_guard(controller is not None
                                or journal is not None):
            if config.backend == "serial" or config.workers == 1 \
                    or len(order) <= 1:
                stats_by_stage = self._run_serial(
                    order, arrivals, waves, forms,
                    controller=controller, journal=journal, done=done)
            else:
                stats_by_stage = self._run_pooled(
                    graph, order, arrivals, waves, forms,
                    controller=controller, journal=journal, done=done)

        stats = SimulationStats()
        stats.accumulate(replayed_stats)
        for stage in order:
            if stage.name in stats_by_stage:
                stats.accumulate(stats_by_stage[stage.name])
        result = finalize_result(arrivals, driven)
        result.stats = stats
        result.partial = (len(done) + len(stats_by_stage)) < len(order)
        result.resumed_waves = resumed
        if controller is not None:
            result.budget = controller.summary()
        if journal is not None:
            result.journal = {
                "path": journal.path,
                "waves": len(journal.segments),
                "replayed": resumed,
                "disabled": journal.disabled,
                "dropped_lines": journal.dropped_lines,
            }
        if self.cache is not None and self.config.cache_path is not None:
            self.cache.save(self.config.cache_path)
        return result

    # ------------------------------------------------------------------
    def _prepare_journal(self, graph: StageGraph,
                         order: List[LogicStage],
                         waves: Dict[str, int],
                         arrivals: Dict[Event, ArrivalTime],
                         input_arrivals: Optional[Dict[Event, float]]
                         ) -> Tuple[Optional[RunJournal],
                                    FrozenSet[str],
                                    SimulationStats, int]:
        """Open (and on ``resume`` replay) the configured run journal.

        Returns ``(journal, completed stage names, replayed stats,
        replayed wave count)``.  A corrupt journal starts fresh
        (counted in ``resilience.journal.corrupt``); a fingerprint
        mismatch raises — resuming someone else's run would silently
        corrupt arrivals.
        """
        config = self.config
        if config.journal_path is None:
            return None, frozenset(), SimulationStats(), 0
        fingerprint = run_fingerprint(graph, self.analyzer,
                                      input_arrivals)
        n_waves = (max(waves.values()) + 1) if waves else 0
        fresh = RunJournal(config.journal_path, fingerprint,
                           design=graph.name, stages=len(order),
                           waves=n_waves)
        if not config.resume or not os.path.exists(config.journal_path):
            fresh.flush()
            return fresh, frozenset(), SimulationStats(), 0
        try:
            journal = RunJournal.load(config.journal_path)
        except JournalError:
            inc("resilience.journal.corrupt")
            fresh.flush()
            return fresh, frozenset(), SimulationStats(), 0
        journal.require_fingerprint(fingerprint)
        journal.design = graph.name
        journal.stages = len(order)
        journal.waves = n_waves
        names = {stage.name for stage in order}
        done: Set[str] = set()
        replayed_stats = SimulationStats()
        replayed = 0
        for _, stage_names, deltas, seg_stats in journal.replay():
            arrivals.update(deltas)
            done.update(name for name in stage_names if name in names)
            replayed_stats.accumulate(seg_stats)
            replayed += 1
        if replayed:
            inc("resilience.journal.replayed_waves", replayed)
        return journal, frozenset(done), replayed_stats, replayed

    @contextmanager
    def _signal_guard(self, enabled: bool) -> Iterator[None]:
        """SIGINT/SIGTERM → graceful stop, for budgeted/journaled runs.

        The handler only sets :attr:`_interrupt`; the schedulers stop
        at the next stage boundary, so the final journal checkpoint is
        never torn and run() returns a partial, quality-tagged result
        instead of dying mid-write.  No-op off the main thread or when
        neither a budget nor a journal is configured (plain runs keep
        the default KeyboardInterrupt behavior).
        """
        if not enabled or threading.current_thread() \
                is not threading.main_thread():
            yield
            return
        previous: Dict[int, object] = {}

        def handler(signum, frame):  # pragma: no cover - signal path
            self._interrupt.set()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        try:
            yield
        finally:
            for signum, old in previous.items():
                try:
                    signal.signal(signum, old)
                except (ValueError, OSError):  # pragma: no cover
                    pass

    # ------------------------------------------------------------------
    @staticmethod
    def _wave_indices(graph: StageGraph, order: List[LogicStage]
                      ) -> Dict[str, int]:
        """Levelized wave (longest-path depth) of every stage."""
        waves: Dict[str, int] = {}
        for stage in order:
            preds = [p for p in graph.graph.predecessors(stage.name)
                     if p != stage.name]
            waves[stage.name] = (max(waves[p] for p in preds) + 1
                                 if preds else 0)
        return waves

    def _run_serial(self, order: List[LogicStage],
                    arrivals: Dict[Event, ArrivalTime],
                    waves: Dict[str, int],
                    forms: Dict[str, Optional[CanonicalForm]],
                    controller: Optional[AdmissionController] = None,
                    journal: Optional[RunJournal] = None,
                    done: FrozenSet[str] = frozenset()
                    ) -> Dict[str, SimulationStats]:
        stats_by_stage: Dict[str, SimulationStats] = {}
        remaining = sum(1 for stage in order
                        if stage.name not in done)
        # Per-wave journal accumulation: a wave checkpoints when its
        # last not-yet-done stage merges (waves whose segment was
        # replayed never re-record — record_wave is idempotent).
        wave_pending: Dict[int, int] = {}
        wave_deltas: Dict[int, Dict[Event, ArrivalTime]] = {}
        wave_stats: Dict[int, SimulationStats] = {}
        wave_names: Dict[int, List[str]] = {}
        if journal is not None:
            for stage in order:
                if stage.name in done:
                    continue
                wave = waves[stage.name]
                wave_pending[wave] = wave_pending.get(wave, 0) + 1
        for stage in order:
            if stage.name in done:
                continue
            if self._interrupt.is_set():
                inc("sta.parallel.interrupted", backend="serial")
                break
            clamp: Optional[str] = None
            if controller is not None:
                level = controller.admit(waves[stage.name], remaining)
                clamp = None if level == CLAMP_FULL else level
            started = time.perf_counter()
            inc("sta.parallel.dispatch", backend="serial")
            with span("sta.stage.task", stage=stage.name,
                      wave=waves[stage.name]):
                computed, stats = _evaluate_stage(
                    self.analyzer, stage, arrivals, self.cache,
                    forms[stage.name],
                    self.config.cache_slew_bucket, clamp=clamp)
            arrivals.update(computed)
            stats_by_stage[stage.name] = stats
            remaining -= 1
            if controller is not None:
                elapsed = time.perf_counter() - started
                controller.note_stage_cost(elapsed)
            if journal is not None:
                wave = waves[stage.name]
                wave_deltas.setdefault(wave, {}).update(computed)
                wave_stats.setdefault(
                    wave, SimulationStats()).accumulate(stats)
                wave_names.setdefault(wave, []).append(stage.name)
                wave_pending[wave] -= 1
                if wave_pending[wave] == 0:
                    if journal.record_wave(wave, wave_names[wave],
                                           wave_deltas[wave],
                                           wave_stats[wave]):
                        faults.wave_gate(wave)
        return stats_by_stage

    def _make_executor(self) -> Executor:
        if self.config.backend == "thread":
            return ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="sta-worker")
        evaluator = self.analyzer.evaluator
        return ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=_process_worker_init,
            initargs=(self.analyzer.tech, evaluator.library,
                      evaluator.options, self.analyzer.propagate_slews,
                      self.analyzer.input_slew, flight().config,
                      faults.active_plan(), profiler().config,
                      observatory().config))

    def _run_pooled(self, graph: StageGraph, order: List[LogicStage],
                    arrivals: Dict[Event, ArrivalTime],
                    waves: Dict[str, int],
                    forms: Dict[str, Optional[CanonicalForm]],
                    controller: Optional[AdmissionController] = None,
                    journal: Optional[RunJournal] = None,
                    done: FrozenSet[str] = frozenset()
                    ) -> Dict[str, SimulationStats]:
        """Dependency-counting dispatch onto a worker pool.

        A stage is submitted the moment its last fanin stage merges —
        there is no per-level barrier, so a deep narrow cone and a wide
        shallow one overlap freely.  The main thread owns ``arrivals``
        and the cache merge; workers only ever see immutable snapshots.
        Stages in ``done`` (replayed from a run journal) are never
        dispatched and never count as dependencies.

        Worker failures degrade, they do not kill the run:

        * a *dead pool* (a worker segfaulted / was OOM-killed) re-runs
          only the stage whose future surfaced the breakage in the main
          process (pinned serial thereafter — a deterministic crasher
          must not kill the replacement pool too), rebuilds the pool,
          and resubmits the other in-flight stages to it;
        * an ordinary *task exception* gets one serial retry in the
          main process (a deterministic bug then re-raises there, with
          a real traceback);
        * with ``config.stage_timeout`` set, a task that outlives its
          watchdog is abandoned (its worker may be hung) and the stage
          is re-dispatched serially.

        Each main-process recovery increments
        ``sta.parallel.redispatch``; surviving stages resubmitted to a
        rebuilt pool count under ``sta.parallel.resubmit``.  When the
        flight recorder is on, recoveries record an ``escalation``
        event with ``from_rung="worker"``.
        """
        analyzer = self.analyzer
        config = self.config
        active = [stage for stage in order if stage.name not in done]
        stage_names = {stage.name for stage in active}
        indegree: Dict[str, int] = {}
        for stage in active:
            preds = [p for p in graph.graph.predecessors(stage.name)
                     if p != stage.name and p in stage_names]
            indegree[stage.name] = len(preds)
        by_name = {stage.name: stage for stage in active}
        stats_by_stage: Dict[str, SimulationStats] = {}

        # Per-wave spans: a wave's span opens when its first stage is
        # dispatched and closes when its last stage merges.  The same
        # pending counts drive the journal checkpoints.
        wave_pending: Dict[int, int] = {}
        for stage in active:
            wave = waves[stage.name]
            wave_pending[wave] = wave_pending.get(wave, 0) + 1
        wave_spans: Dict[int, object] = {}
        wave_deltas: Dict[int, Dict[Event, ArrivalTime]] = {}
        wave_stats: Dict[int, SimulationStats] = {}
        wave_names: Dict[int, List[str]] = {}

        executor = self._make_executor()
        futures: Dict[object, LogicStage] = {}
        submitted_at: Dict[object, float] = {}
        serial_only: Set[str] = set()
        retried: Set[str] = set()
        abandoned_workers = False

        def admit_clamp(stage: LogicStage) -> Optional[str]:
            if controller is None:
                return None
            remaining = len(active) - len(stats_by_stage)
            level = controller.admit(waves[stage.name], remaining)
            return None if level == CLAMP_FULL else level

        def complete(stage: LogicStage,
                     computed: Dict[Event, ArrivalTime],
                     stats: SimulationStats) -> None:
            arrivals.update(computed)
            stats_by_stage[stage.name] = stats
            if controller is not None:
                controller.note_stage_cost(stats.wall_time)
            wave = waves[stage.name]
            if journal is not None:
                wave_deltas.setdefault(wave, {}).update(computed)
                wave_stats.setdefault(
                    wave, SimulationStats()).accumulate(stats)
                wave_names.setdefault(wave, []).append(stage.name)
            wave_pending[wave] -= 1
            if wave_pending[wave] == 0:
                if wave in wave_spans:
                    wave_spans.pop(wave).__exit__(None, None, None)
                if journal is not None:
                    if journal.record_wave(wave, wave_names[wave],
                                           wave_deltas[wave],
                                           wave_stats[wave]):
                        faults.wave_gate(wave)
            for successor in graph.graph.successors(stage.name):
                if successor == stage.name \
                        or successor not in indegree:
                    continue
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    submit(by_name[successor])

        def run_in_parent(stage: LogicStage, reason: str,
                          clamp: Optional[str] = None) -> None:
            """Serial re-dispatch: same arc math, main process."""
            inc("sta.parallel.redispatch", reason=reason)
            fl = flight()
            if fl.enabled:
                fl.record("escalation", from_rung="worker",
                          to_rung="serial", reason=reason,
                          stage=stage.name)
            with span("sta.stage.task", stage=stage.name,
                      wave=waves[stage.name], redispatch=reason):
                computed, stats = _evaluate_stage(
                    analyzer, stage, arrivals, self.cache,
                    forms[stage.name], config.cache_slew_bucket,
                    clamp=clamp)
            complete(stage, computed, stats)

        def submit(stage: LogicStage) -> None:
            if self._interrupt.is_set():
                return
            wave = waves[stage.name]
            if wave not in wave_spans and wave_pending[wave] > 0:
                handle = span("sta.wave", index=wave,
                              stages=wave_pending[wave],
                              backend=config.backend)
                handle.__enter__()
                wave_spans[wave] = handle
            inc("sta.parallel.dispatch", backend=config.backend)
            clamp = admit_clamp(stage)
            if stage.name in serial_only:
                run_in_parent(stage, "serial_only", clamp=clamp)
                return
            form = forms[stage.name]
            if config.backend == "thread":
                future = executor.submit(
                    _evaluate_stage, analyzer, stage, dict(arrivals),
                    self.cache, form, config.cache_slew_bucket, clamp)
            else:
                relevant = set(stage.inputs)
                relevant.update(node.name for node in stage.outputs)
                snapshot = {event: arrival
                            for event, arrival in arrivals.items()
                            if event[0] in relevant}
                shipped = (self.cache.entries_for(form.fingerprint)
                           if self.cache is not None
                           and form is not None else None)
                future = executor.submit(
                    _process_stage_task, stage, snapshot, form,
                    shipped, config.cache_slew_bucket, clamp)
            futures[future] = stage
            submitted_at[future] = time.monotonic()

        def merge_payload(stage: LogicStage, payload) -> None:
            if config.backend == "thread":
                computed, stats = payload
            else:
                (computed, stats, new_entries, hit_count, ledger,
                 accuracy_delta) = payload
                if self.cache is not None:
                    self.cache.merge(new_entries)
                    self.cache.record_external(
                        hit_count, len(new_entries))
                if ledger is not None:
                    profiler().merge(ledger)
                if accuracy_delta is not None:
                    observatory().merge(accuracy_delta)
            complete(stage, computed, stats)

        def recover_broken_pool(first_casualty: LogicStage) -> None:
            """A worker died and took the pool with it.

            ``first_casualty`` is the stage whose future surfaced the
            breakage (already popped by the caller).  Only it re-runs
            in the main process (and stays pinned serial — a
            deterministic crasher must not kill the replacement pool
            too); the other in-flight stages lost nothing but their
            dispatch, so they resubmit to a fresh pool instead of
            serializing the whole wave.  A survivor that *is* the
            crasher simply surfaces as the next broken future and
            becomes the next first casualty.
            """
            nonlocal executor
            survivors = [stage for stage in futures.values()
                         if stage.name != first_casualty.name]
            futures.clear()
            submitted_at.clear()
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            executor = self._make_executor()
            serial_only.add(first_casualty.name)
            run_in_parent(first_casualty, "worker_crash")
            for stage in survivors:
                inc("sta.parallel.resubmit", reason="worker_crash")
                submit(stage)

        poll = (max(0.02, config.stage_timeout / 4.0)
                if config.stage_timeout is not None else None)
        try:
            for stage in active:
                if indegree[stage.name] == 0:
                    submit(stage)
            while futures:
                if self._interrupt.is_set():
                    inc("sta.parallel.interrupted",
                        backend=config.backend)
                    break
                finished, _ = wait(list(futures), timeout=poll,
                                   return_when=FIRST_COMPLETED)
                for future in finished:
                    if future not in futures:
                        continue
                    stage = futures.pop(future)
                    submitted_at.pop(future, None)
                    try:
                        payload = future.result()
                    except BrokenExecutor:
                        recover_broken_pool(stage)
                        break
                    except Exception:
                        # One serial retry: a worker-only fault (or a
                        # transient environment failure) is absorbed; a
                        # deterministic bug re-raises with a main-
                        # process traceback.
                        if stage.name in retried:
                            raise
                        retried.add(stage.name)
                        run_in_parent(stage, "task_error")
                        continue
                    merge_payload(stage, payload)
                if config.stage_timeout is not None:
                    now = time.monotonic()
                    overdue = [f for f, t0 in submitted_at.items()
                               if now - t0 > config.stage_timeout]
                    for future in overdue:
                        stage = futures.pop(future, None)
                        submitted_at.pop(future, None)
                        if stage is None:
                            continue
                        future.cancel()
                        abandoned_workers = True
                        serial_only.add(stage.name)
                        run_in_parent(stage, "stage_timeout")
        finally:
            for handle in wave_spans.values():
                handle.__exit__(None, None, None)
            # A hung worker would block a waiting shutdown forever;
            # once any task has been abandoned, leave the pool to
            # reap itself.
            executor.shutdown(wait=not abandoned_workers,
                              cancel_futures=True)
        return stats_by_stage
