"""Static timing analysis layer and accuracy metrics.

QWM is a *stage evaluation* engine; this package provides the STA
scaffolding around it — delay/slew measurement, paper-style accuracy
accounting (the tables report ``100% - |delay error|``), and a
longest-path static timing analysis over stage graphs.
"""

from repro.analysis.delay import (
    DelayMeasurement,
    measure_delay,
    measure_slew,
)
from repro.analysis.accuracy import (
    AccuracyReport,
    ComparisonOutcome,
    accuracy_percent,
    compare_delays,
    waveform_rms_error,
)
from repro.analysis.audit import (
    ArcSample,
    AuditReport,
    analyze_with_audit,
    audit_arc,
    collect_candidates,
    stratified_sample,
)
from repro.analysis.sta import (
    ArrivalTime,
    StaticTimingAnalyzer,
    StaResult,
)
from repro.analysis.incremental import (
    IncrementalStats,
    IncrementalTimer,
    stage_signature,
)
from repro.analysis.parallel import (
    CanonicalForm,
    ExecutionConfig,
    ParallelStaEngine,
    StageResultCache,
    canonical_stage_form,
    stage_fingerprint,
)
from repro.analysis.sensitivity import (
    SensitivityResult,
    SizingSensitivity,
    clone_stage,
)
from repro.analysis.report import (
    arrival_report,
    corner_report,
    critical_path_report,
    design_summary,
)
from repro.analysis.variation import DelayDistribution, MonteCarloTiming
from repro.analysis.sizing import GreedySizer, SizingResult, SizingStep

__all__ = [
    "DelayMeasurement",
    "measure_delay",
    "measure_slew",
    "AccuracyReport",
    "ComparisonOutcome",
    "accuracy_percent",
    "compare_delays",
    "waveform_rms_error",
    "ArcSample",
    "AuditReport",
    "analyze_with_audit",
    "audit_arc",
    "collect_candidates",
    "stratified_sample",
    "ArrivalTime",
    "StaticTimingAnalyzer",
    "StaResult",
    "IncrementalStats",
    "IncrementalTimer",
    "stage_signature",
    "CanonicalForm",
    "ExecutionConfig",
    "ParallelStaEngine",
    "StageResultCache",
    "canonical_stage_form",
    "stage_fingerprint",
    "SensitivityResult",
    "SizingSensitivity",
    "clone_stage",
    "arrival_report",
    "corner_report",
    "critical_path_report",
    "design_summary",
    "DelayDistribution",
    "MonteCarloTiming",
    "GreedySizer",
    "SizingResult",
    "SizingStep",
]
