"""Human-readable timing reports (PrimeTime-flavored text output).

Turns :class:`~repro.analysis.sta.StaResult` objects into the path-
oriented text reports designers actually read: per-event arrival
listings, the critical path with incremental delays, and slack against
a required time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.sta import Event, StaResult
from repro.circuit.stage import StageGraph


def _fmt_ps(seconds: float) -> str:
    return f"{seconds * 1e12:9.2f} ps"


def arrival_report(result: StaResult, limit: Optional[int] = None) -> str:
    """All computed arrivals, latest first.

    Args:
        result: an STA result.
        limit: optionally keep only the N latest events.
    """
    # Tie-break on (net, direction): equal-time arrivals would otherwise
    # print in dict insertion order, which differs between the serial
    # and parallel engines (workers merge in completion order).
    rows = sorted(result.arrivals.values(),
                  key=lambda a: (-a.time, a.net, a.direction))
    if limit is not None:
        rows = rows[:limit]
    lines = ["Arrival report", "-" * 46,
             f"{'net':<14}{'edge':<7}{'arrival':>12}  cause"]
    for arrival in rows:
        cause = (f"{arrival.cause[0]} ({arrival.cause[1]})"
                 if arrival.cause else "primary input")
        quality = getattr(arrival, "quality", None)
        if quality is not None and quality != "qwm":
            cause += f" [{quality}]"
        lines.append(f"{arrival.net:<14}{arrival.direction:<7}"
                     f"{_fmt_ps(arrival.time):>12}  {cause}")
    return "\n".join(lines)


def critical_path_report(result: StaResult,
                         required: Optional[float] = None) -> str:
    """The critical path with per-hop incremental delays and slack.

    Args:
        result: an STA result with a non-empty critical path.
        required: optional required arrival time [s] for slack.
    """
    if result.worst is None or not result.critical_path:
        return "Critical path: (design has no timed outputs)"
    lines = ["Critical path", "-" * 46,
             f"{'point':<22}{'incr':>12}{'path':>12}"]
    previous = 0.0
    for event in result.critical_path:
        arrival = result.arrivals.get(event)
        t = arrival.time if arrival else 0.0
        lines.append(f"{event[0]} ({event[1]})".ljust(22)
                     + _fmt_ps(t - previous).rjust(12)
                     + _fmt_ps(t).rjust(12))
        previous = t
    lines.append("-" * 46)
    lines.append(f"{'data arrival':<22}{'':>12}"
                 + _fmt_ps(result.worst.time).rjust(12))
    if required is not None:
        slack = required - result.worst.time
        status = "MET" if slack >= 0 else "VIOLATED"
        lines.append(f"{'required':<22}{'':>12}"
                     + _fmt_ps(required).rjust(12))
        lines.append(f"{'slack':<22}{'':>12}"
                     + _fmt_ps(slack).rjust(12) + f"  ({status})")
    return "\n".join(lines)


def corner_report(corner_delays: Dict[str, float]) -> str:
    """Per-corner worst arrivals plus the spread summary."""
    from repro.devices.corners import corner_spread

    slowest, fastest, spread = corner_spread(corner_delays)
    lines = ["Corner summary", "-" * 34,
             f"{'corner':<10}{'worst arrival':>16}"]
    for name in sorted(corner_delays):
        tag = ""
        if name == slowest:
            tag = "  <- slowest"
        elif name == fastest:
            tag = "  <- fastest"
        lines.append(f"{name:<10}{_fmt_ps(corner_delays[name]):>16}{tag}")
    lines.append("-" * 34)
    lines.append(f"spread: {spread * 100:.1f}% "
                 f"({fastest} -> {slowest})")
    return "\n".join(lines)


def design_summary(graph: StageGraph, result: StaResult) -> str:
    """One-paragraph design/timing overview."""
    transistors = sum(len(s.transistors) for s in graph.stages)
    wires = sum(len(s.wires) for s in graph.stages)
    lines = [
        f"Design {graph.name}: {len(graph.stages)} logic stages, "
        f"{transistors} transistors, {wires} wires",
    ]
    if getattr(result, "partial", False):
        lines.append(
            "PARTIAL RESULT: the run was interrupted before every "
            "stage completed; arrivals below cover finished waves only")
    if result.worst is not None:
        lines.append(
            f"Worst arrival: {result.worst.net} ({result.worst.direction})"
            f" at {result.worst.time * 1e12:.2f} ps through "
            f"{max(len(result.critical_path) - 1, 0)} stage(s)")
    if result.stats.steps:
        stats = result.stats
        lines.append(
            f"QWM cost: {stats.steps} regions, "
            f"{stats.newton_iterations} Newton iterations, "
            f"{stats.device_evaluations} device evaluations, "
            f"{stats.wall_time * 1e3:.1f} ms solve time")
    degraded = result.degraded() if hasattr(result, "degraded") else {}
    if degraded:
        by_quality: Dict[str, int] = {}
        for arrival in degraded.values():
            by_quality[arrival.quality] = \
                by_quality.get(arrival.quality, 0) + 1
        detail = ", ".join(f"{count} {quality}" for quality, count
                           in sorted(by_quality.items()))
        lines.append(
            f"Degraded arrivals: {len(degraded)} of "
            f"{len(result.arrivals)} via fallback rungs ({detail})")
    budget = getattr(result, "budget", None)
    if budget:
        clamped = sum(budget.get("clamped_stages", {}).values())
        verdict = ("within deadline+grace"
                   if budget.get("within_deadline") else "OVERRAN")
        line = (f"Run budget: {budget['elapsed']:.2f}s of "
                f"{budget['deadline']:.2f}s deadline "
                f"(+{budget['grace']:.2f}s grace, {verdict})")
        if clamped:
            line += (f"; ladder clamped to {budget['final_level']!r} "
                     f"for {clamped} stage dispatch(es)")
        lines.append(line)
    journal = getattr(result, "journal", None)
    if journal:
        line = (f"Run journal: {journal['waves']} wave(s) at "
                f"{journal['path']}")
        if journal.get("replayed"):
            line += f", {journal['replayed']} replayed on resume"
        if journal.get("dropped_lines"):
            line += (f", {journal['dropped_lines']} damaged line(s) "
                     f"dropped")
        if journal.get("disabled"):
            line += " (journaling disabled after a write error)"
        lines.append(line)
    audit = getattr(result, "audit", None)
    if audit:
        summary = audit["summary"]
        mean = summary["mean_delay_error_pct"]
        worst = summary["worst_delay_error_pct"]
        if mean is not None:
            worst_arc = "/".join(summary["worst_arc"][:4])
            lines.append(
                f"Shadow-SPICE audit: {summary['arcs_audited']} arcs, "
                f"mean error {mean:.2f}%, worst {worst:.2f}% "
                f"({worst_arc}), {summary['violations']} outside the "
                f"{summary['band_pct']:.1f}% band")
        else:
            lines.append(
                f"Shadow-SPICE audit: {summary['arcs_audited']} arcs, "
                f"no comparable crossings")
    return "\n".join(lines)
