"""Longest-path static timing analysis over stage graphs.

The classic STA recursion with QWM as the stage-delay engine: stages are
visited in topological order; the arrival time of each stage output is
the worst over its switching inputs of (input arrival + stage delay for
that transition).  Standard single-input-switching semantics with CMOS
unateness: a rising input can only cause the pull path its transistor
sits on to engage, so a falling output arrival derives from rising
inputs (pull-down through NMOS) and vice versa; non-switching inputs
are held at the levels that sensitize the path (series devices on).

Input slew propagation is not modeled (transitions are ideal steps, the
paper's operating assumption); load coupling between stages enters
through the gate-capacitance loads the stage extraction already counts.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.circuit.elements import DeviceKind
from repro.circuit.netlist import LogicStage
from repro.circuit.stage import StageGraph
from repro.core.engine import WaveformEvaluator
from repro.core.qwm import QWMOptions
from repro.devices.table_model import TableModelLibrary
from repro.devices.technology import Technology
from repro.obs import inc, observe, span
from repro.obs.accuracy import note_arc_candidate
from repro.obs.flight import flight
from repro.obs.profile import profile_add, profile_phase
from repro.resilience import faults
from repro.resilience.budget import CLAMP_BOUND, CLAMP_NO_SPICE
from repro.resilience.ladder import (
    QUALITY_BOUNDED,
    QUALITY_QWM,
    ArcSolveError,
    EscalationLadder,
    EscalationPolicy,
    merge_quality,
)
from repro.spice.results import SimulationStats
from repro.spice.sources import ConstantSource, RampSource, StepSource

#: (net, direction) key; direction is the transition of the net.
Event = Tuple[str, str]

#: Reusable no-op context (flight recorder disabled on the hot path).
_NULL_CTX = nullcontext()

#: One evaluated arc: (delay, output_slew, quality) where quality is a
#: rung tag from :data:`repro.resilience.ladder.QUALITY_ORDER` (None
#: from arc sources that predate the ladder, e.g. memoized wrappers).
Arc = Tuple[float, Optional[float], Optional[str]]

#: Arc evaluation callback: (stage, output, out_direction, input,
#: input_slew) -> (delay, output_slew, quality) or None.  The
#: scheduler-agnostic per-stage arrival computation is written against
#: this signature so the serial loop and the parallel workers share one
#: implementation; legacy two-element tuples are still accepted (their
#: quality reads as None).
ArcFn = Callable[[LogicStage, str, str, str, Optional[float]],
                 Optional[Tuple]]


@dataclass(frozen=True)
class ArrivalTime:
    """Worst-case arrival of one transition at a net.

    Attributes:
        net: net name.
        direction: ``"rise"`` or ``"fall"``.
        time: arrival time [s].
        cause: the (net, direction) event that produced it, if any.
        slew: full-swing transition time of the arriving edge [s]
            (None when slews are not propagated).
        quality: the worst escalation-ladder rung on this arrival's
            causal chain (``qwm | qwm-retry | spice | bounded``; see
            :mod:`repro.resilience.ladder`).  None for primary inputs
            and arc sources that do not report quality.
    """

    net: str
    direction: str
    time: float
    cause: Optional[Event] = None
    slew: Optional[float] = None
    quality: Optional[str] = None


@dataclass
class StaResult:
    """Output of a full STA run.

    Attributes:
        arrivals: (net, direction) -> ArrivalTime.
        worst: the latest arrival over all primary-output events.
        critical_path: chain of (net, direction) events ending at the
            worst arrival, primary input first.
        stats: QWM cost aggregated over every arc evaluation of the run
            (including sensitizations that were tried and rejected).
        audit: shadow-SPICE audit report (``repro-accuracy-audit/1``
            JSON) when the run was audited, else None.
        partial: True when the run was interrupted (SIGINT/SIGTERM)
            before every stage completed; the arrivals present are
            still exact for the waves that finished.
        resumed_waves: scheduling waves replayed from a run journal
            instead of being recomputed (``--resume``).
        budget: run-budget outcome (:meth:`repro.resilience.budget.
            AdmissionController.summary`) when ``--deadline`` was set.
        journal: run-journal outcome (path, wave counts, disabled
            flag) when ``--journal`` was set.
    """

    arrivals: Dict[Event, ArrivalTime]
    worst: Optional[ArrivalTime]
    critical_path: List[Event] = field(default_factory=list)
    stats: SimulationStats = field(default_factory=SimulationStats)
    audit: Optional[Dict] = None
    partial: bool = False
    resumed_waves: int = 0
    budget: Optional[Dict] = None
    journal: Optional[Dict] = None

    def arrival(self, net: str, direction: str) -> Optional[ArrivalTime]:
        return self.arrivals.get((net, direction))

    def degraded(self) -> Dict[Event, ArrivalTime]:
        """Arrivals whose quality fell below the plain QWM rung."""
        return {event: arrival
                for event, arrival in self.arrivals.items()
                if arrival.quality not in (None, QUALITY_QWM)}


def _opposite(direction: str) -> str:
    return "fall" if direction == "rise" else "rise"


def compute_stage_arrivals(stage: LogicStage,
                           arrivals: Dict[Event, ArrivalTime],
                           arc_fn: ArcFn,
                           propagate_slews: bool,
                           default_slew: float
                           ) -> Dict[Event, ArrivalTime]:
    """Worst arrival of every output event of one stage.

    The single-input-switching recursion for one stage, written against
    an :data:`ArcFn` so every scheduler (the serial loop, the thread and
    process workers of :mod:`repro.analysis.parallel`, cached or not)
    runs exactly the same arithmetic.  ``arrivals`` is only read; newly
    computed events are visible to later outputs of the *same* stage
    (matching the serial evaluation order for stages that consume their
    own outputs), and the caller merges the returned mapping.
    """
    computed: Dict[Event, ArrivalTime] = {}

    def lookup(event: Event) -> Optional[ArrivalTime]:
        hit = computed.get(event)
        return hit if hit is not None else arrivals.get(event)

    for out_node in stage.outputs:
        for out_dir in ("rise", "fall"):
            best: Optional[ArrivalTime] = None
            in_dir = _opposite(out_dir)
            for input_name in stage.inputs:
                src = lookup((input_name, in_dir))
                if src is None:
                    continue
                input_slew = (src.slew or default_slew
                              if propagate_slews else None)
                note_arc_candidate(stage.name, out_node.name, out_dir,
                                   input_name, input_slew)
                arc = arc_fn(stage, out_node.name, out_dir,
                             input_name, input_slew)
                if arc is None:
                    continue
                delay, out_slew = arc[0], arc[1]
                quality = arc[2] if len(arc) > 2 else None
                t = src.time + delay
                if best is None or t > best.time:
                    best = ArrivalTime(
                        net=out_node.name, direction=out_dir,
                        time=t, cause=(input_name, in_dir),
                        slew=out_slew if propagate_slews else None,
                        quality=merge_quality(quality, src.quality))
            if best is not None:
                key = (out_node.name, out_dir)
                existing = lookup(key)
                if existing is None or best.time > existing.time:
                    computed[key] = best
    return computed


def primary_input_arrivals(graph: StageGraph,
                           input_arrivals: Optional[Dict[Event, float]],
                           primary_slew: Optional[float]
                           ) -> Tuple[Dict[Event, ArrivalTime], Set[str]]:
    """Seed arrivals for every primary-input event.

    Returns the arrival map plus the set of stage-driven nets (the
    candidate endpoints a worst-arrival search ranges over).
    """
    arrivals: Dict[Event, ArrivalTime] = {}
    driven = set(graph.driver_of)
    primary_inputs = set()
    for stage in graph.stages:
        for name in stage.inputs:
            if name not in driven:
                primary_inputs.add(name)
    for net in sorted(primary_inputs):
        for direction in ("rise", "fall"):
            t = 0.0
            if input_arrivals:
                t = input_arrivals.get((net, direction), 0.0)
            arrivals[(net, direction)] = ArrivalTime(
                net, direction, t, slew=primary_slew)
    return arrivals, driven


def finalize_result(arrivals: Dict[Event, ArrivalTime],
                    driven: Set[str]) -> StaResult:
    """Pick the worst driven-net arrival and walk its critical path.

    Events are scanned in sorted order so the result is independent of
    dict insertion order — parallel schedulers merge arrivals in
    completion order, and exact-tie breaking must not depend on it.
    """
    worst: Optional[ArrivalTime] = None
    for event in sorted(arrivals):
        arrival = arrivals[event]
        if event[0] in driven:
            if worst is None or arrival.time > worst.time:
                worst = arrival
    path: List[Event] = []
    cursor = worst
    while cursor is not None:
        path.append((cursor.net, cursor.direction))
        cursor = (arrivals.get(cursor.cause)
                  if cursor.cause is not None else None)
    path.reverse()
    return StaResult(arrivals=arrivals, worst=worst,
                     critical_path=path)


class StaticTimingAnalyzer:
    """QWM-driven static timing analysis.

    Args:
        tech: process technology.
        library: shared table-model library (characterized once).
        options: QWM options for the per-stage evaluations.
    """

    def __init__(self, tech: Technology,
                 library: Optional[TableModelLibrary] = None,
                 options: Optional[QWMOptions] = None,
                 propagate_slews: bool = False,
                 input_slew: float = 20e-12,
                 preflight: bool = False,
                 execution: Optional["ExecutionConfig"] = None,
                 cache: Optional["StageResultCache"] = None,
                 resilience: Optional[EscalationPolicy] = None):
        """
        Args:
            tech: process technology.
            library: shared table-model library.
            options: QWM options for the per-stage evaluations.
            propagate_slews: when True, each arc is driven by a ramp
                fitted to the upstream stage's output waveform (the
                tangent-ramp driver model) instead of an ideal step.
                More realistic arrivals; note the QWM ramp caveat — the
                opposing network's direct-path current is unmodeled, so
                very slow ramps lose accuracy.
            input_slew: full-swing transition time assumed for primary
                inputs in slew mode [s].
            preflight: when True, :meth:`analyze` lints the whole stage
                graph (ERC + solver rules) up front and raises
                :class:`repro.lint.PreflightError` on error-severity
                findings before evaluating any arc.
            execution: optional :class:`repro.analysis.parallel.
                ExecutionConfig`; when given (or when ``cache`` is
                given), :meth:`analyze` runs through the parallel
                engine — workers change scheduling only, never the
                arithmetic, so arrivals match the serial path exactly.
            cache: optional shared
                :class:`repro.analysis.parallel.StageResultCache`
                reused across analyzers/runs for stage-result reuse.
            resilience: escalation policy for failed arc solves (see
                :class:`repro.resilience.ladder.EscalationPolicy`).
                Defaults to an enabled default-policy ladder — arcs
                degrade ``qwm → qwm-retry → spice → bounded`` instead
                of raising; pass ``EscalationPolicy(enabled=False)``
                for the legacy fail-fast behavior.
        """
        self.tech = tech
        self.evaluator = WaveformEvaluator(tech, library=library,
                                           options=options)
        self.propagate_slews = propagate_slews
        self.input_slew = input_slew
        self.preflight = preflight
        self.execution = execution
        self.cache = cache
        self.resilience = resilience or EscalationPolicy()
        self._ladder = (EscalationLadder(self, self.resilience)
                        if self.resilience.enabled else None)
        # Lazily built SPICE-rung-disabled ladder for the admission
        # controller's "no-spice" clamp (same analyzer, same retries).
        self._nospice_ladder: Optional[EscalationLadder] = None
        # Quality tag of the most recent stage_arc (read by
        # serial_arc_fn after routing through the patchable
        # stage_delay, whose float-only signature predates quality).
        self._last_quality: Optional[str] = None
        # Accumulates per-arc QWM stats while analyze() runs (None
        # outside a run, so standalone stage_arc calls skip it).
        self._run_stats: Optional[SimulationStats] = None

    # ------------------------------------------------------------------
    def stage_arc(self, stage: LogicStage, output: str,
                  out_direction: str, switching_input: str,
                  input_slew: Optional[float] = None,
                  stats: Optional[SimulationStats] = None,
                  clamp: Optional[str] = None
                  ) -> Optional[Arc]:
        """Evaluate one arc: returns (delay, output_slew, quality) or None.

        The delay is measured from the switching input's 50% crossing;
        the output slew is the full-swing tangent-ramp time of the QWM
        output waveform (None if unfittable); quality is the escalation
        rung that produced the numbers (``qwm`` when nothing escalated).

        With the (default) resilience ladder enabled, a failed QWM
        solve degrades through retry, adaptive-SPICE and switch-level
        rungs instead of raising; None still means the arc is
        unsensitizable — that verdict never escalates.

        Args:
            stats: optional accumulator receiving the QWM cost of every
                solve this arc performs.  Parallel workers pass a local
                object here; without one the cost lands on the analyzer's
                current :meth:`analyze` run (not thread-safe).
            clamp: admission-control clamp level (see
                :mod:`repro.resilience.budget`): ``"no-spice"`` runs
                the ladder with the SPICE rung disabled, ``"bound"``
                routes straight to the switch-level bound.  Ignored
                when the ladder is disabled (legacy fail-fast mode has
                no rungs to clamp).
        """
        vdd = stage.vdd
        rising_in = out_direction == "fall"
        v0, v1 = (0.0, vdd) if rising_in else (vdd, 0.0)
        if input_slew:
            source = RampSource(v0, v1, 0.0, input_slew)
            t_input = 0.5 * input_slew
        else:
            source = StepSource(v0, v1, 0.0)
            t_input = 0.0
        arc_start = time.perf_counter()
        self._last_quality = None
        fl = flight()
        arc_ctx = (fl.context(arc_input=switching_input)
                   if fl.enabled else _NULL_CTX)
        result: Optional[Arc]
        with profile_phase("sta.arc", tag=stage.name), \
                span("sta.stage", stage=stage.name, output=output,
                     direction=out_direction, input=switching_input), \
                arc_ctx, \
                faults.scope(stage=stage.name, arc_start=arc_start):
            def qwm_attempt(evaluator: WaveformEvaluator
                            ) -> Optional[Tuple[float, Optional[float]]]:
                return self._qwm_attempt(evaluator, stage, output,
                                         out_direction, switching_input,
                                         source, t_input, stats)

            if self._ladder is not None and clamp == CLAMP_BOUND:
                # Deadline pressure: skip every iterative rung and
                # take the cheapest honest answer.
                inc("resilience.budget.clamped_arcs", level=clamp)
                bound = self._ladder.bound_arc(
                    stage, output, out_direction, switching_input)
                result = ((bound[0], bound[1], QUALITY_BOUNDED)
                          if bound is not None else None)
            elif self._ladder is not None:
                ladder = self._ladder
                if clamp == CLAMP_NO_SPICE:
                    inc("resilience.budget.clamped_arcs", level=clamp)
                    ladder = self._clamped_ladder()
                result = ladder.evaluate_arc(
                    stage, output, out_direction, switching_input,
                    input_slew, stats, qwm_attempt)
            else:
                try:
                    arc = qwm_attempt(self.evaluator)
                except ArcSolveError:
                    arc = None
                result = ((arc[0], arc[1], QUALITY_QWM)
                          if arc is not None else None)
        observe("sta.stage.wall_seconds",
                time.perf_counter() - arc_start)
        if result is None:
            return None
        self._last_quality = result[2]
        inc("resilience.arc.quality", quality=result[2])
        return result

    def _clamped_ladder(self) -> EscalationLadder:
        """The SPICE-disabled ladder the ``no-spice`` clamp runs."""
        if self._nospice_ladder is None:
            self._nospice_ladder = EscalationLadder(
                self, replace(self.resilience, spice=False))
        return self._nospice_ladder

    def _qwm_attempt(self, evaluator: WaveformEvaluator,
                     stage: LogicStage, output: str, out_direction: str,
                     switching_input: str, source, t_input: float,
                     stats: Optional[SimulationStats]
                     ) -> Optional[Tuple[float, Optional[float]]]:
        """One full QWM sensitization sweep with the given evaluator.

        Returns (delay, slew), or None when no sensitization produces a
        genuine transition (the arc is unsensitizable).  A transition
        that was found but whose accepted waveform never crosses
        mid-rail — the signature of a region-schedule failure — raises
        :class:`ArcSolveError` so the escalation ladder can tell
        "solver failed" from "no such arc".
        """
        vdd = stage.vdd
        solution = None
        for levels in self._sensitizations(stage, switching_input,
                                           out_direction):
            inputs = {switching_input: source}
            inputs.update({name: ConstantSource(level)
                           for name, level in levels.items()})
            try:
                candidate = evaluator.evaluate(
                    stage, output, out_direction, inputs,
                    precharge="dc")
            except ValueError:
                continue
            inc("sta.stage.solves")
            profile_add("solves", 1, root="sta.arc")
            # The run total counts every solve actually performed,
            # including sensitizations rejected just below.
            if stats is not None:
                stats.accumulate(candidate.stats)
            elif self._run_stats is not None:
                self._run_stats = self._run_stats + candidate.stats
            # A real arc starts on the far side of mid-rail: if the
            # DC pre-state already holds the output at its final
            # logic value, this sensitization produces no
            # transition.
            v_start = candidate.output_waveform.value(0.0)
            if out_direction == "fall" and v_start < 0.55 * vdd:
                continue
            if out_direction == "rise" and v_start > 0.45 * vdd:
                continue
            solution = candidate
            break
        if solution is None:
            return None
        delay = solution.delay(t_input=t_input)
        if delay is None:
            raise ArcSolveError(
                f"QWM accepted a transition for {stage.name}:{output} "
                f"{out_direction} via {switching_input} but its "
                f"waveform never crosses mid-rail")
        fit = solution.output_waveform.tangent_ramp(vdd)
        out_slew = fit[1] if fit is not None else None
        return delay, out_slew

    def stage_delay(self, stage: LogicStage, output: str,
                    out_direction: str, switching_input: str
                    ) -> Optional[float]:
        """QWM step-driven delay of one arc, or None if not sensitizable."""
        arc = self.stage_arc(stage, output, out_direction,
                             switching_input)
        return arc[0] if arc is not None else None

    def _sensitizing_level(self, stage: LogicStage, input_name: str,
                           out_direction: str) -> float:
        """Static level that keeps this input's path devices conducting.

        For a falling output the pull-down must conduct: non-switching
        inputs sit high (series NMOS on, parallel PMOS off).  For a
        rising output, low.  This is the standard worst-case
        single-input-switching sensitization for complementary CMOS.
        """
        return stage.vdd if out_direction == "fall" else 0.0

    def _sensitizations(self, stage: LogicStage, switching_input: str,
                        out_direction: str):
        """Yield candidate non-switching input level assignments.

        No single static rule covers every topology (a NAND's rise arc
        needs the other inputs HIGH to block the parallel pull-ups,
        while a NOR's needs them LOW to conduct the series stack, and a
        pass gate must be at its conducting level for either edge), so
        candidates are enumerated in heuristic-first order — the
        series-conduction rule, then single flips, then the remaining
        combinations — and the caller keeps the first one that both
        extracts a conducting path and produces a genuine transition.
        Bounded to 16 combinations.
        """
        from itertools import product

        others = [n for n in stage.inputs if n != switching_input]
        base = {n: self._sensitizing_level(stage, n, out_direction)
                for n in others}
        yield dict(base)
        if not others:
            return

        seen = {tuple(sorted(base.items()))}
        flipped = {n: (0.0 if base[n] else stage.vdd) for n in others}
        combos = sorted(product(*[[False, True]] * len(others)),
                        key=sum)
        for combo in combos[:16]:
            levels = {n: (flipped[n] if flip else base[n])
                      for n, flip in zip(others, combo)}
            key = tuple(sorted(levels.items()))
            if key in seen:
                continue
            seen.add(key)
            yield levels

    # ------------------------------------------------------------------
    def analyze(self, graph: StageGraph,
                input_arrivals: Optional[Dict[Event, float]] = None
                ) -> StaResult:
        """Run longest-path STA over a stage graph.

        Args:
            graph: partitioned design.
            input_arrivals: optional (net, direction) -> time for primary
                inputs; unspecified primary-input events arrive at 0.

        Returns:
            Arrival times for every stage-output event reached.

        Raises:
            repro.lint.PreflightError: when ``preflight=True`` and the
                graph or solver options fail an error-severity rule.
        """
        if self.preflight:
            from repro.lint import LintContext, preflight

            ctx = LintContext.from_stage_graph(
                graph, tech=self.tech,
                options=self.evaluator.options,
                library=self.evaluator.library,
                execution=self.execution)
            preflight(ctx, what="stage graph",
                      packs=("erc", "solver"))
        if self.execution is not None or self.cache is not None:
            from repro.analysis.parallel import (ExecutionConfig,
                                                 ParallelStaEngine)

            engine = ParallelStaEngine(
                self, self.execution or ExecutionConfig(),
                cache=self.cache)
            with span("sta.analyze", stages=len(graph.stages),
                      backend=engine.config.backend,
                      workers=engine.config.workers):
                return engine.run(graph, input_arrivals)
        self._run_stats = SimulationStats()
        try:
            with span("sta.analyze", stages=len(graph.stages)):
                result = self._analyze(graph, input_arrivals)
            result.stats = self._run_stats
        finally:
            self._run_stats = None
        return result

    def serial_arc_fn(self, stats: Optional[SimulationStats] = None
                      ) -> ArcFn:
        """The arc evaluator the serial scheduler uses.

        Step mode routes through :meth:`stage_delay` so wrappers that
        patch it (e.g. :class:`repro.analysis.incremental.
        IncrementalTimer`) keep intercepting arcs; slew mode goes
        through :meth:`stage_arc` with the resolved input slew.
        """
        def arc_fn(stage: LogicStage, output: str, out_direction: str,
                   switching_input: str, input_slew: Optional[float]
                   ) -> Optional[Arc]:
            if self.propagate_slews:
                return self.stage_arc(stage, output, out_direction,
                                      switching_input,
                                      input_slew=input_slew,
                                      stats=stats)
            # Reset the stash first: a patched stage_delay that answers
            # from its memo never reaches stage_arc, and a stale tag
            # from the previous arc must not leak onto this one.
            self._last_quality = None
            delay = self.stage_delay(stage, output, out_direction,
                                     switching_input)
            if delay is None:
                return None
            return (delay, None, self._last_quality)
        return arc_fn

    def _analyze(self, graph: StageGraph,
                 input_arrivals: Optional[Dict[Event, float]]
                 ) -> StaResult:
        primary_slew = self.input_slew if self.propagate_slews else None
        arrivals, driven = primary_input_arrivals(
            graph, input_arrivals, primary_slew)

        with span("sta.levelize", stages=len(graph.stages)):
            order = list(graph.topological_order())
        arc_fn = self.serial_arc_fn()
        for stage in order:
            arrivals.update(compute_stage_arrivals(
                stage, arrivals, arc_fn, self.propagate_slews,
                self.input_slew))
        return finalize_result(arrivals, driven)
