"""Longest-path static timing analysis over stage graphs.

The classic STA recursion with QWM as the stage-delay engine: stages are
visited in topological order; the arrival time of each stage output is
the worst over its switching inputs of (input arrival + stage delay for
that transition).  Standard single-input-switching semantics with CMOS
unateness: a rising input can only cause the pull path its transistor
sits on to engage, so a falling output arrival derives from rising
inputs (pull-down through NMOS) and vice versa; non-switching inputs
are held at the levels that sensitize the path (series devices on).

Input slew propagation is not modeled (transitions are ideal steps, the
paper's operating assumption); load coupling between stages enters
through the gate-capacitance loads the stage extraction already counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.circuit.elements import DeviceKind
from repro.circuit.netlist import LogicStage
from repro.circuit.stage import StageGraph
from repro.core.engine import WaveformEvaluator
from repro.core.qwm import QWMOptions
from repro.devices.table_model import TableModelLibrary
from repro.devices.technology import Technology
from repro.obs import inc, observe, span
from repro.spice.results import SimulationStats
from repro.spice.sources import ConstantSource, RampSource, StepSource

#: (net, direction) key; direction is the transition of the net.
Event = Tuple[str, str]


@dataclass(frozen=True)
class ArrivalTime:
    """Worst-case arrival of one transition at a net.

    Attributes:
        net: net name.
        direction: ``"rise"`` or ``"fall"``.
        time: arrival time [s].
        cause: the (net, direction) event that produced it, if any.
        slew: full-swing transition time of the arriving edge [s]
            (None when slews are not propagated).
    """

    net: str
    direction: str
    time: float
    cause: Optional[Event] = None
    slew: Optional[float] = None


@dataclass
class StaResult:
    """Output of a full STA run.

    Attributes:
        arrivals: (net, direction) -> ArrivalTime.
        worst: the latest arrival over all primary-output events.
        critical_path: chain of (net, direction) events ending at the
            worst arrival, primary input first.
        stats: QWM cost aggregated over every arc evaluation of the run
            (including sensitizations that were tried and rejected).
    """

    arrivals: Dict[Event, ArrivalTime]
    worst: Optional[ArrivalTime]
    critical_path: List[Event] = field(default_factory=list)
    stats: SimulationStats = field(default_factory=SimulationStats)

    def arrival(self, net: str, direction: str) -> Optional[ArrivalTime]:
        return self.arrivals.get((net, direction))


def _opposite(direction: str) -> str:
    return "fall" if direction == "rise" else "rise"


class StaticTimingAnalyzer:
    """QWM-driven static timing analysis.

    Args:
        tech: process technology.
        library: shared table-model library (characterized once).
        options: QWM options for the per-stage evaluations.
    """

    def __init__(self, tech: Technology,
                 library: Optional[TableModelLibrary] = None,
                 options: Optional[QWMOptions] = None,
                 propagate_slews: bool = False,
                 input_slew: float = 20e-12,
                 preflight: bool = False):
        """
        Args:
            tech: process technology.
            library: shared table-model library.
            options: QWM options for the per-stage evaluations.
            propagate_slews: when True, each arc is driven by a ramp
                fitted to the upstream stage's output waveform (the
                tangent-ramp driver model) instead of an ideal step.
                More realistic arrivals; note the QWM ramp caveat — the
                opposing network's direct-path current is unmodeled, so
                very slow ramps lose accuracy.
            input_slew: full-swing transition time assumed for primary
                inputs in slew mode [s].
            preflight: when True, :meth:`analyze` lints the whole stage
                graph (ERC + solver rules) up front and raises
                :class:`repro.lint.PreflightError` on error-severity
                findings before evaluating any arc.
        """
        self.tech = tech
        self.evaluator = WaveformEvaluator(tech, library=library,
                                           options=options)
        self.propagate_slews = propagate_slews
        self.input_slew = input_slew
        self.preflight = preflight
        # Accumulates per-arc QWM stats while analyze() runs (None
        # outside a run, so standalone stage_arc calls skip it).
        self._run_stats: Optional[SimulationStats] = None

    # ------------------------------------------------------------------
    def stage_arc(self, stage: LogicStage, output: str,
                  out_direction: str, switching_input: str,
                  input_slew: Optional[float] = None
                  ) -> Optional[Tuple[float, Optional[float]]]:
        """Evaluate one arc: returns (delay, output_slew) or None.

        The delay is measured from the switching input's 50% crossing;
        the output slew is the full-swing tangent-ramp time of the QWM
        output waveform (None if unfittable).
        """
        vdd = stage.vdd
        rising_in = out_direction == "fall"
        v0, v1 = (0.0, vdd) if rising_in else (vdd, 0.0)
        if input_slew:
            source = RampSource(v0, v1, 0.0, input_slew)
            t_input = 0.5 * input_slew
        else:
            source = StepSource(v0, v1, 0.0)
            t_input = 0.0
        solution = None
        arc_start = time.perf_counter()
        with span("sta.stage", stage=stage.name, output=output,
                  direction=out_direction, input=switching_input):
            for levels in self._sensitizations(stage, switching_input,
                                               out_direction):
                inputs = {switching_input: source}
                inputs.update({name: ConstantSource(level)
                               for name, level in levels.items()})
                try:
                    candidate = self.evaluator.evaluate(
                        stage, output, out_direction, inputs,
                        precharge="dc")
                except ValueError:
                    continue
                inc("sta.stage.solves")
                # The run total counts every solve actually performed,
                # including sensitizations rejected just below.
                if self._run_stats is not None:
                    self._run_stats = self._run_stats + candidate.stats
                # A real arc starts on the far side of mid-rail: if the
                # DC pre-state already holds the output at its final
                # logic value, this sensitization produces no
                # transition.
                v_start = candidate.output_waveform.value(0.0)
                if out_direction == "fall" and v_start < 0.55 * vdd:
                    continue
                if out_direction == "rise" and v_start > 0.45 * vdd:
                    continue
                solution = candidate
                break
        observe("sta.stage.wall_seconds",
                time.perf_counter() - arc_start)
        if solution is None:
            return None
        delay = solution.delay(t_input=t_input)
        if delay is None:
            return None
        fit = solution.output_waveform.tangent_ramp(vdd)
        out_slew = fit[1] if fit is not None else None
        return delay, out_slew

    def stage_delay(self, stage: LogicStage, output: str,
                    out_direction: str, switching_input: str
                    ) -> Optional[float]:
        """QWM step-driven delay of one arc, or None if not sensitizable."""
        arc = self.stage_arc(stage, output, out_direction,
                             switching_input)
        return arc[0] if arc is not None else None

    def _sensitizing_level(self, stage: LogicStage, input_name: str,
                           out_direction: str) -> float:
        """Static level that keeps this input's path devices conducting.

        For a falling output the pull-down must conduct: non-switching
        inputs sit high (series NMOS on, parallel PMOS off).  For a
        rising output, low.  This is the standard worst-case
        single-input-switching sensitization for complementary CMOS.
        """
        return stage.vdd if out_direction == "fall" else 0.0

    def _sensitizations(self, stage: LogicStage, switching_input: str,
                        out_direction: str):
        """Yield candidate non-switching input level assignments.

        No single static rule covers every topology (a NAND's rise arc
        needs the other inputs HIGH to block the parallel pull-ups,
        while a NOR's needs them LOW to conduct the series stack, and a
        pass gate must be at its conducting level for either edge), so
        candidates are enumerated in heuristic-first order — the
        series-conduction rule, then single flips, then the remaining
        combinations — and the caller keeps the first one that both
        extracts a conducting path and produces a genuine transition.
        Bounded to 16 combinations.
        """
        from itertools import product

        others = [n for n in stage.inputs if n != switching_input]
        base = {n: self._sensitizing_level(stage, n, out_direction)
                for n in others}
        yield dict(base)
        if not others:
            return

        seen = {tuple(sorted(base.items()))}
        flipped = {n: (0.0 if base[n] else stage.vdd) for n in others}
        combos = sorted(product(*[[False, True]] * len(others)),
                        key=sum)
        for combo in combos[:16]:
            levels = {n: (flipped[n] if flip else base[n])
                      for n, flip in zip(others, combo)}
            key = tuple(sorted(levels.items()))
            if key in seen:
                continue
            seen.add(key)
            yield levels

    # ------------------------------------------------------------------
    def analyze(self, graph: StageGraph,
                input_arrivals: Optional[Dict[Event, float]] = None
                ) -> StaResult:
        """Run longest-path STA over a stage graph.

        Args:
            graph: partitioned design.
            input_arrivals: optional (net, direction) -> time for primary
                inputs; unspecified primary-input events arrive at 0.

        Returns:
            Arrival times for every stage-output event reached.

        Raises:
            repro.lint.PreflightError: when ``preflight=True`` and the
                graph or solver options fail an error-severity rule.
        """
        if self.preflight:
            from repro.lint import LintContext, preflight

            ctx = LintContext.from_stage_graph(
                graph, tech=self.tech,
                options=self.evaluator.options,
                library=self.evaluator.library)
            preflight(ctx, what="stage graph",
                      packs=("erc", "solver"))
        self._run_stats = SimulationStats()
        try:
            with span("sta.analyze", stages=len(graph.stages)):
                result = self._analyze(graph, input_arrivals)
            result.stats = self._run_stats
        finally:
            self._run_stats = None
        return result

    def _analyze(self, graph: StageGraph,
                 input_arrivals: Optional[Dict[Event, float]]
                 ) -> StaResult:
        arrivals: Dict[Event, ArrivalTime] = {}
        driven = set(graph.driver_of)
        primary_inputs = set()
        for stage in graph.stages:
            for name in stage.inputs:
                if name not in driven:
                    primary_inputs.add(name)
        primary_slew = self.input_slew if self.propagate_slews else None
        for net in primary_inputs:
            for direction in ("rise", "fall"):
                t = 0.0
                if input_arrivals:
                    t = input_arrivals.get((net, direction), 0.0)
                arrivals[(net, direction)] = ArrivalTime(
                    net, direction, t, slew=primary_slew)

        with span("sta.levelize", stages=len(graph.stages)):
            order = list(graph.topological_order())
        for stage in order:
            for out_node in stage.outputs:
                for out_dir in ("rise", "fall"):
                    best: Optional[ArrivalTime] = None
                    in_dir = _opposite(out_dir)
                    for input_name in stage.inputs:
                        src = arrivals.get((input_name, in_dir))
                        if src is None:
                            continue
                        if self.propagate_slews:
                            arc = self.stage_arc(
                                stage, out_node.name, out_dir,
                                input_name,
                                input_slew=src.slew or self.input_slew)
                            if arc is None:
                                continue
                            delay, out_slew = arc
                        else:
                            delay = self.stage_delay(
                                stage, out_node.name, out_dir,
                                input_name)
                            out_slew = None
                            if delay is None:
                                continue
                        t = src.time + delay
                        if best is None or t > best.time:
                            best = ArrivalTime(
                                net=out_node.name, direction=out_dir,
                                time=t, cause=(input_name, in_dir),
                                slew=out_slew)
                    if best is not None:
                        key = (out_node.name, out_dir)
                        existing = arrivals.get(key)
                        if existing is None or best.time > existing.time:
                            arrivals[key] = best

        worst: Optional[ArrivalTime] = None
        for event, arrival in arrivals.items():
            if event[0] in driven:
                if worst is None or arrival.time > worst.time:
                    worst = arrival
        path: List[Event] = []
        cursor = worst
        while cursor is not None:
            path.append((cursor.net, cursor.direction))
            cursor = (arrivals.get(cursor.cause)
                      if cursor.cause is not None else None)
        path.reverse()
        return StaResult(arrivals=arrivals, worst=worst,
                         critical_path=path)
