"""Incremental static timing analysis.

A full STA re-evaluates every stage arc with QWM.  After a local design
edit (a transistor resize, a load change), only the touched stages —
the edited stage itself plus any upstream driver whose output load
changed — need fresh evaluations; every other arc delay is still valid.
:class:`IncrementalTimer` caches arc delays keyed by a structural
signature of each stage and re-propagates arrival times (a cheap graph
pass) after invalidating just the dirty entries.

This is where transistor-level STA pays off in practice: the per-stage
evaluation is the expensive step, and QWM already makes it cheap; the
incremental layer avoids repeating even that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.analysis.sta import Event, StaResult, StaticTimingAnalyzer
from repro.circuit.netlist import LogicStage
from repro.circuit.stage import StageGraph
from repro.devices.capacitance import gate_capacitance
from repro.devices.table_model import TableModelLibrary
from repro.devices.technology import Technology

ArcKey = Tuple[str, str, str, str]  # stage, output, direction, input


def stage_signature(stage: LogicStage) -> Tuple:
    """A hashable structural fingerprint of a stage (geometry + loads)."""
    edges = tuple(sorted(
        (e.name, e.kind.value, e.src.name, e.snk.name,
         round(e.w, 15), round(e.l, 15), e.gate_input or "")
        for e in stage.edges))
    loads = tuple(sorted((n.name, round(n.load_cap, 21))
                         for n in stage.internal_nodes))
    return edges, loads


@dataclass
class IncrementalStats:
    """Bookkeeping for one analysis pass."""

    arcs_evaluated: int = 0
    arcs_cached: int = 0

    @property
    def total(self) -> int:
        return self.arcs_evaluated + self.arcs_cached


class IncrementalTimer:
    """STA with per-arc delay caching and edit-driven invalidation.

    Args:
        tech: process technology.
        graph: the partitioned design (stages are edited in place
            through the editing methods below).
        library: shared table-model library.
    """

    def __init__(self, tech: Technology, graph: StageGraph,
                 library: Optional[TableModelLibrary] = None):
        self.tech = tech
        self.graph = graph
        self.analyzer = StaticTimingAnalyzer(tech, library=library)
        self._delay_cache: Dict[ArcKey, Optional[float]] = {}
        self._signatures: Dict[str, Tuple] = {}
        self.last_stats = IncrementalStats()

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze(self,
                input_arrivals: Optional[Dict[Event, float]] = None
                ) -> StaResult:
        """Run STA, reusing every cached arc whose stage is unchanged."""
        stats = IncrementalStats()
        for stage in self.graph.stages:
            signature = stage_signature(stage)
            if self._signatures.get(stage.name) != signature:
                self._invalidate_stage(stage.name)
                self._signatures[stage.name] = signature

        original = self.analyzer.stage_delay

        def cached_delay(stage: LogicStage, output: str,
                         out_direction: str, switching_input: str
                         ) -> Optional[float]:
            key = (stage.name, output, out_direction, switching_input)
            if key in self._delay_cache:
                stats.arcs_cached += 1
                return self._delay_cache[key]
            value = original(stage, output, out_direction,
                             switching_input)
            self._delay_cache[key] = value
            stats.arcs_evaluated += 1
            return value

        self.analyzer.stage_delay = cached_delay  # type: ignore
        try:
            result = self.analyzer.analyze(self.graph, input_arrivals)
        finally:
            self.analyzer.stage_delay = original  # type: ignore
        self.last_stats = stats
        return result

    def _invalidate_stage(self, stage_name: str) -> None:
        stale = [key for key in self._delay_cache if key[0] == stage_name]
        for key in stale:
            del self._delay_cache[key]

    # ------------------------------------------------------------------
    # Edits
    # ------------------------------------------------------------------
    def resize_transistor(self, stage_name: str, device_name: str,
                          new_width: float) -> None:
        """Resize a device; dirties the stage and upstream drivers.

        The gate of the resized device loads whichever stage drives its
        input net, so that driver's output load is adjusted and its
        arcs invalidated too.
        """
        if new_width <= 0:
            raise ValueError("width must be positive")
        stage = self.graph.stage(stage_name)
        edge = stage.edge(device_name)
        old_width = edge.w
        params = (self.tech.nmos if edge.kind.polarity == "n"
                  else self.tech.pmos)
        edge.w = new_width

        gate_net = edge.gate_input
        driver = self.graph.driver_of.get(gate_net)
        if driver is not None:
            delta = (gate_capacitance(params, new_width, edge.l)
                     - gate_capacitance(params, old_width, edge.l))
            driver.node(gate_net).load_cap += delta
        # Signatures change automatically; analyze() notices.

    def set_load(self, net: str, cap: float) -> None:
        """Change a net's external load (dirties its driver stage)."""
        stage = self.graph.stage_of_net.get(net)
        if stage is None:
            raise KeyError(f"net {net!r} is not driven by any stage")
        stage.node(net).load_cap = cap
