"""Accuracy accounting in the paper's terms.

The paper's tables report per-circuit delay "Error" percentages and an
aggregate "average accuracy of 99%", i.e. ``100% - mean(|error|)``.
These helpers compute exactly those quantities from engine outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.waveforms import PiecewiseQuadraticWaveform
from repro.spice.results import TransientResult


@dataclass(frozen=True)
class AccuracyReport:
    """Aggregate delay-accuracy statistics across circuits.

    Attributes:
        errors_percent: per-circuit ``|delay error|`` in percent.
        average_error_percent: mean of the above.
        worst_error_percent: max of the above.
        accuracy_percent: the paper's headline metric,
            ``100 - average_error_percent``.
    """

    errors_percent: List[float]
    average_error_percent: float
    worst_error_percent: float
    accuracy_percent: float

    @classmethod
    def from_errors(cls, errors_percent: Sequence[float]) -> "AccuracyReport":
        errs = [abs(float(e)) for e in errors_percent]
        if not errs:
            raise ValueError("no errors supplied")
        avg = float(np.mean(errs))
        return cls(errors_percent=errs, average_error_percent=avg,
                   worst_error_percent=float(np.max(errs)),
                   accuracy_percent=100.0 - avg)


def compare_delays(test_delay: Optional[float],
                   reference_delay: Optional[float]) -> float:
    """Percent delay error of a test engine against the reference.

    Raises:
        ValueError: if either delay is missing (no crossing found).
    """
    if test_delay is None or reference_delay is None:
        raise ValueError("cannot compare missing delays")
    if reference_delay == 0:
        raise ValueError("reference delay is zero")
    return abs(test_delay - reference_delay) / abs(reference_delay) * 100.0


def accuracy_percent(test_delay: Optional[float],
                     reference_delay: Optional[float]) -> float:
    """Paper-style accuracy: ``100 - |error%|``."""
    return 100.0 - compare_delays(test_delay, reference_delay)


def waveform_rms_error(waveform: PiecewiseQuadraticWaveform,
                       reference: TransientResult, node: str,
                       normalize: Optional[float] = None) -> float:
    """RMS difference between a QWM waveform and a reference waveform.

    Args:
        waveform: QWM piecewise-quadratic output.
        reference: SPICE transient result.
        node: node to compare.
        normalize: optional divisor (e.g. vdd) for a relative metric.
    """
    sampled = waveform.sample(reference.times)
    diff = sampled - reference.voltage(node)
    rms = float(np.sqrt(np.mean(diff * diff)))
    if normalize:
        rms /= normalize
    return rms
