"""Accuracy accounting in the paper's terms.

The paper's tables report per-circuit delay "Error" percentages and an
aggregate "average accuracy of 99%", i.e. ``100% - mean(|error|)``.
These helpers compute exactly those quantities from engine outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.waveforms import PiecewiseQuadraticWaveform
from repro.spice.results import TransientResult


@dataclass(frozen=True)
class AccuracyReport:
    """Aggregate delay-accuracy statistics across circuits.

    Attributes:
        errors_percent: per-circuit ``|delay error|`` in percent.
        average_error_percent: mean of the above.
        worst_error_percent: max of the above.
        accuracy_percent: the paper's headline metric,
            ``100 - average_error_percent``.
    """

    errors_percent: List[float]
    average_error_percent: float
    worst_error_percent: float
    accuracy_percent: float

    @classmethod
    def from_errors(cls, errors_percent: Sequence[float]) -> "AccuracyReport":
        errs = [abs(float(e)) for e in errors_percent]
        if not errs:
            raise ValueError("no errors supplied")
        avg = float(np.mean(errs))
        return cls(errors_percent=errs, average_error_percent=avg,
                   worst_error_percent=float(np.max(errs)),
                   accuracy_percent=100.0 - avg)


#: :attr:`ComparisonOutcome.status` values.
COMPARE_OK = "ok"
COMPARE_NO_CROSSING = "no-crossing"
COMPARE_ZERO_REFERENCE = "zero-reference"


@dataclass(frozen=True)
class ComparisonOutcome:
    """Result of comparing a test delay against a reference delay.

    A structured verdict instead of an exception, so bulk comparison
    (the shadow-SPICE auditor sampling arbitrary arcs) degrades
    gracefully on odd arcs — a sensitization with no crossing, or a
    degenerate zero reference — instead of aborting the run.

    Attributes:
        status: ``"ok"`` (both delays present, reference nonzero),
            ``"no-crossing"`` (either delay missing), or
            ``"zero-reference"``.
        error_percent: ``|test - ref| / |ref| * 100`` when ok, None
            otherwise.
        test_delay / reference_delay: the inputs, for reporting.
    """

    status: str
    error_percent: Optional[float]
    test_delay: Optional[float]
    reference_delay: Optional[float]

    @property
    def ok(self) -> bool:
        return self.status == COMPARE_OK


def compare_delays(test_delay: Optional[float],
                   reference_delay: Optional[float]
                   ) -> ComparisonOutcome:
    """Percent delay error of a test engine against the reference.

    Never raises: missing delays (no crossing found) and a zero
    reference come back as non-ok :class:`ComparisonOutcome` statuses.
    Callers that want the old fail-fast behavior can use
    :func:`accuracy_percent`, which still raises on non-ok outcomes.
    """
    if test_delay is None or reference_delay is None:
        return ComparisonOutcome(COMPARE_NO_CROSSING, None,
                                 test_delay, reference_delay)
    if reference_delay == 0:
        return ComparisonOutcome(COMPARE_ZERO_REFERENCE, None,
                                 test_delay, reference_delay)
    error = abs(test_delay - reference_delay) \
        / abs(reference_delay) * 100.0
    return ComparisonOutcome(COMPARE_OK, error, float(test_delay),
                             float(reference_delay))


def accuracy_percent(test_delay: Optional[float],
                     reference_delay: Optional[float]) -> float:
    """Paper-style accuracy: ``100 - |error%|``.

    Raises:
        ValueError: if the delays cannot be compared (missing crossing
            or zero reference) — the strict single-measurement API the
            paper-table tests use.
    """
    outcome = compare_delays(test_delay, reference_delay)
    if not outcome.ok:
        raise ValueError(f"cannot compare delays: {outcome.status}")
    return 100.0 - outcome.error_percent


def waveform_rms_error(waveform: PiecewiseQuadraticWaveform,
                       reference: TransientResult, node: str,
                       normalize: Optional[float] = None) -> float:
    """RMS difference between a QWM waveform and a reference waveform.

    Args:
        waveform: QWM piecewise-quadratic output.
        reference: SPICE transient result.
        node: node to compare.
        normalize: optional divisor (e.g. vdd) for a relative metric.
    """
    sampled = waveform.sample(reference.times)
    diff = sampled - reference.voltage(node)
    rms = float(np.sqrt(np.mean(diff * diff)))
    if normalize:
        rms /= normalize
    return rms
