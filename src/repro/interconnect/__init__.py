"""Interconnect analysis substrate: RC trees, moments, AWE, π reduction.

The paper reduces the decoder tree's long wires to macro π models via
AWE before running QWM ("We first used AWE approach to build a macro
π model for the wire").  This package provides the pieces:

* :mod:`repro.interconnect.rc_network` — RC tree data structure.
* :mod:`repro.interconnect.elmore` — Elmore delay and higher voltage
  moments by path tracing (two-pass tree traversal).
* :mod:`repro.interconnect.awe` — moment matching / Padé approximation
  (poles and residues), the AWE of Pillage & Rohrer.
* :mod:`repro.interconnect.pi_model` — O'Brien-Savarino three-moment π
  reduction of a driving-point admittance.
"""

from repro.interconnect.rc_network import RCTree
from repro.interconnect.elmore import (
    elmore_delays,
    voltage_moments,
    admittance_moments,
)
from repro.interconnect.awe import (
    AWEApproximation,
    awe_from_moments,
    awe_step_response,
    transfer_moments_to_poles,
)
from repro.interconnect.pi_model import (
    PiModel,
    pi_of_tree,
    reduce_to_pi,
    uniform_line_pi,
    wire_chain_pi,
)
from repro.interconnect.coupling import (
    CrosstalkDelayBounds,
    glitch_peak,
    miller_decoupled_cap,
    noise_immunity_ok,
    victim_delay_bounds,
)

__all__ = [
    "RCTree",
    "elmore_delays",
    "voltage_moments",
    "admittance_moments",
    "AWEApproximation",
    "awe_from_moments",
    "awe_step_response",
    "transfer_moments_to_poles",
    "PiModel",
    "pi_of_tree",
    "reduce_to_pi",
    "uniform_line_pi",
    "wire_chain_pi",
    "CrosstalkDelayBounds",
    "glitch_peak",
    "miller_decoupled_cap",
    "noise_immunity_ok",
    "victim_delay_bounds",
]
