"""RC tree data structure for interconnect analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class _RCNode:
    name: str
    cap: float
    parent: Optional[str]
    resistance: float  # resistance of the edge to the parent (0 for root)
    children: List[str] = field(default_factory=list)


class RCTree:
    """A grounded-capacitor RC tree rooted at the driving point.

    Nodes are added with :meth:`add_node`, naming their parent and the
    resistance of the connecting branch.  Caps are to ground.

    Example:
        >>> tree = RCTree("in")
        >>> tree.add_node("a", parent="in", resistance=100.0, cap=1e-15)
        >>> tree.add_node("b", parent="a", resistance=100.0, cap=1e-15)
        >>> tree.total_cap
        2e-15
    """

    def __init__(self, root: str, root_cap: float = 0.0):
        self._nodes: Dict[str, _RCNode] = {}
        self.root = root
        self._nodes[root] = _RCNode(root, root_cap, None, 0.0)

    def add_node(self, name: str, parent: str, resistance: float,
                 cap: float) -> None:
        """Attach a node below ``parent`` via a branch of ``resistance``."""
        if name in self._nodes:
            raise ValueError(f"duplicate RC node {name!r}")
        if parent not in self._nodes:
            raise ValueError(f"unknown parent {parent!r}")
        if resistance < 0 or cap < 0:
            raise ValueError("resistance and cap must be non-negative")
        self._nodes[name] = _RCNode(name, cap, parent, resistance)
        self._nodes[parent].children.append(name)

    def add_cap(self, name: str, cap: float) -> None:
        """Add extra grounded capacitance to an existing node."""
        self._nodes[name].cap += cap

    # ------------------------------------------------------------------
    @property
    def node_names(self) -> List[str]:
        return list(self._nodes)

    @property
    def total_cap(self) -> float:
        """Sum of all grounded capacitance [F]."""
        return sum(n.cap for n in self._nodes.values())

    def cap(self, name: str) -> float:
        return self._nodes[name].cap

    def parent(self, name: str) -> Optional[str]:
        return self._nodes[name].parent

    def resistance(self, name: str) -> float:
        """Resistance of the branch from ``name`` to its parent [ohm]."""
        return self._nodes[name].resistance

    def children(self, name: str) -> List[str]:
        return list(self._nodes[name].children)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def topological(self) -> List[str]:
        """Nodes in root-first order."""
        order: List[str] = []
        stack = [self.root]
        while stack:
            name = stack.pop()
            order.append(name)
            stack.extend(self._nodes[name].children)
        return order

    def downstream_cap(self) -> Dict[str, float]:
        """Capacitance in the subtree rooted at each node [F]."""
        totals = {name: self._nodes[name].cap for name in self._nodes}
        for name in reversed(self.topological()):
            parent = self._nodes[name].parent
            if parent is not None:
                totals[parent] += totals[name]
        return totals

    @classmethod
    def from_chain(cls, resistances, caps, root: str = "in") -> "RCTree":
        """Build a simple RC ladder: ``root -(R0)- n0 -(R1)- n1 ...``.

        Args:
            resistances: branch resistances, root outward [ohm].
            caps: grounded caps at each ladder node (same length) [F].
            root: name of the driving node.
        """
        resistances = list(resistances)
        caps = list(caps)
        if len(resistances) != len(caps):
            raise ValueError("resistances and caps must have equal length")
        tree = cls(root)
        parent = root
        for i, (r, c) in enumerate(zip(resistances, caps)):
            name = f"n{i}"
            tree.add_node(name, parent=parent, resistance=r, cap=c)
            parent = name
        return tree
