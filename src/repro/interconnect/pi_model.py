"""O'Brien-Savarino π reduction of RC interconnect.

A driving-point admittance ``Y(s) = A1 s + A2 s^2 + A3 s^3 + ...`` is
matched exactly to three moments by the π circuit

    near cap C2 —— series R —— far cap C1

whose admittance is ``Y_pi(s) = s C2 + s C1 / (1 + s R C1)``, giving

    C1 = A2^2 / A3,   R = -A3^2 / A2^3,   C2 = A1 - C1.

This is the "macro π model for the wire" the paper builds with AWE
before running QWM on the decoder tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.interconnect.elmore import admittance_moments
from repro.interconnect.rc_network import RCTree


@dataclass(frozen=True)
class PiModel:
    """A three-moment π equivalent of an RC load.

    Attributes:
        c_near: capacitance at the driving point [F].
        r: series resistance [ohm].
        c_far: capacitance at the far end [F].
    """

    c_near: float
    r: float
    c_far: float

    @property
    def total_cap(self) -> float:
        return self.c_near + self.c_far

    def admittance_moments(self) -> Sequence[float]:
        """The first three admittance moments of the π itself."""
        a1 = self.c_near + self.c_far
        a2 = -self.r * self.c_far ** 2
        a3 = self.r ** 2 * self.c_far ** 3
        return [a1, a2, a3]


def reduce_to_pi(moments: Sequence[float]) -> PiModel:
    """Reduce admittance moments ``[A1, A2, A3]`` to a π model.

    Degenerate inputs (purely capacitive loads, ``A2 ~ 0``) collapse to
    a lumped capacitor (``r = 0``).

    Raises:
        ValueError: if the moments are not RC-realizable (A1 <= 0).
    """
    if len(moments) < 3:
        raise ValueError("need three admittance moments")
    a1, a2, a3 = (float(moments[0]), float(moments[1]), float(moments[2]))
    if a1 <= 0:
        raise ValueError("A1 (total capacitance) must be positive")
    if abs(a2) < 1e-300 or a3 <= 0:
        return PiModel(c_near=a1, r=0.0, c_far=0.0)
    c_far = a2 * a2 / a3
    r = -(a3 * a3) / (a2 ** 3)
    c_near = a1 - c_far
    if c_far < 0 or r < 0:
        return PiModel(c_near=a1, r=0.0, c_far=0.0)
    if c_near < 0:
        # Rarely the three-moment fit over-allocates the far cap; fall
        # back to an Elmore-preserving split.
        c_near = 0.0
        c_far = a1
        r = -a2 / (a1 * a1) * a1  # preserves A2 with the full cap far
        r = -a2 / (c_far ** 2)
    return PiModel(c_near=c_near, r=r, c_far=c_far)


def pi_of_tree(tree: RCTree) -> PiModel:
    """π reduction of an entire RC tree seen from its root."""
    return reduce_to_pi(admittance_moments(tree, 3))


def wire_chain_pi(resistances: Sequence[float],
                  caps: Sequence[float]) -> PiModel:
    """π reduction of a lumped RC ladder (a multi-segment wire).

    Args:
        resistances: per-segment series resistances, driver outward.
        caps: per-segment grounded caps (same length).
    """
    tree = RCTree.from_chain(resistances, caps)
    return pi_of_tree(tree)


def uniform_line_pi(total_r: float, total_c: float) -> PiModel:
    """Closed-form π of a uniform distributed RC line.

    The exact first three admittance moments of an open-ended uniform
    line are ``A1 = C``, ``A2 = -R C^2 / 3``, ``A3 = 2 R^2 C^3 / 15``,
    which reduce to the classic ``(C/6, 12R/25, 5C/6)`` π.
    """
    if total_r < 0 or total_c < 0:
        raise ValueError("line parameters must be non-negative")
    moments = [total_c,
               -total_r * total_c ** 2 / 3.0,
               2.0 * total_r ** 2 * total_c ** 3 / 15.0]
    return reduce_to_pi(moments)
