"""Coupled-interconnect (crosstalk) bounds.

Deep-submicron wires couple capacitively; the paper's motivation section
points at exactly this regime ("transistors are coupled with
interconnect, whose electrical properties cannot be ignored in deep
submicron design").  This module provides the standard static-timing
treatment of coupling:

* **Miller decoupling** — replace a coupling capacitance ``Cc`` between
  a victim and an aggressor with a grounded capacitance ``k * Cc`` on
  the victim, where ``k`` is 0 (aggressor tracks the victim), 1 (quiet
  aggressor) or 2 (aggressor switches opposite) — the classic bounding
  factors.
* **Delta-delay bounds** — re-evaluate the victim's QWM delay at the
  k = 0 and k = 2 extremes.
* **Glitch estimate** — the single-pole charge-sharing peak a switching
  aggressor induces on a quiet victim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.circuit.netlist import LogicStage
from repro.spice.sources import SourceLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import WaveformEvaluator

#: The three classic Miller bounding factors.
MILLER_BEST = 0.0
MILLER_QUIET = 1.0
MILLER_WORST = 2.0


def miller_decoupled_cap(coupling_cap: float, factor: float) -> float:
    """Grounded equivalent of a coupling cap under a Miller factor."""
    if coupling_cap < 0:
        raise ValueError("coupling capacitance must be non-negative")
    if not 0.0 <= factor <= 3.0:
        raise ValueError("Miller factor out of the sensible [0, 3] range")
    return factor * coupling_cap


@dataclass(frozen=True)
class CrosstalkDelayBounds:
    """Victim delay bounds over the Miller range.

    Attributes:
        best: delay with the aggressor switching the same way (k=0) [s].
        nominal: quiet-aggressor delay (k=1) [s].
        worst: delay with the aggressor switching opposite (k=2) [s].
    """

    best: float
    nominal: float
    worst: float

    @property
    def delta(self) -> float:
        """Worst-case crosstalk delay push-out [s]."""
        return self.worst - self.nominal

    @property
    def window(self) -> float:
        """Total uncertainty window [s]."""
        return self.worst - self.best


def victim_delay_bounds(evaluator: "WaveformEvaluator",
                        stage: LogicStage, output: str, direction: str,
                        inputs: Dict[str, SourceLike],
                        victim_node: str, coupling_cap: float,
                        precharge: str = "full",
                        t_input: float = 0.0) -> CrosstalkDelayBounds:
    """QWM delay bounds for a victim net with a coupling cap on a node.

    Evaluates the stage three times with the coupling decoupled at the
    k = 0 / 1 / 2 Miller factors added to ``victim_node``'s load.

    Args:
        evaluator: QWM evaluator.
        stage: the victim's stage (not modified).
        output: victim output node.
        direction: victim transition direction.
        inputs: gate sources.
        victim_node: the node carrying the coupling capacitance.
        coupling_cap: the physical coupling capacitance [F].
    """
    from repro.analysis.sensitivity import clone_stage

    delays = {}
    for name, factor in (("best", MILLER_BEST), ("nominal", MILLER_QUIET),
                         ("worst", MILLER_WORST)):
        trial = clone_stage(stage)
        node = trial.node(victim_node)
        node.load_cap += miller_decoupled_cap(coupling_cap, factor)
        solution = evaluator.evaluate(trial, output, direction, inputs,
                                      precharge=precharge)
        delay = solution.delay(t_input=t_input)
        if delay is None:
            raise RuntimeError(f"victim never crossed 50% at k={factor}")
        delays[name] = delay
    return CrosstalkDelayBounds(**delays)


def glitch_peak(coupling_cap: float, victim_cap: float,
                aggressor_slew: float,
                victim_resistance: float,
                vdd: float) -> float:
    """Peak glitch a switching aggressor couples onto a quiet victim [V].

    The classic single-pole charge-sharing estimate: the victim RC
    ``tau = R * (Cc + Cv)`` low-passes the coupled ramp of duration
    ``tr``, giving

        V_peak = vdd * Cc / (Cc + Cv) * (tau / tr) * (1 - exp(-tr / tau))

    which tends to the full charge-sharing ratio for fast aggressors
    (``tr << tau``) and rolls off linearly for slow ones.

    Args:
        coupling_cap: victim-aggressor coupling [F].
        victim_cap: victim grounded capacitance [F].
        aggressor_slew: aggressor full-swing transition time [s].
        victim_resistance: victim net's holding resistance (driver on-
            resistance plus wire) [ohm].
        vdd: aggressor swing [V].
    """
    import math

    if min(coupling_cap, victim_cap, aggressor_slew,
           victim_resistance) < 0:
        raise ValueError("all parameters must be non-negative")
    if coupling_cap == 0:
        return 0.0
    tau = victim_resistance * (coupling_cap + victim_cap)
    ratio = coupling_cap / (coupling_cap + victim_cap)
    if aggressor_slew == 0 or tau == 0:
        return vdd * ratio
    x = aggressor_slew / tau
    return vdd * ratio * (1.0 - math.exp(-x)) / x


def noise_immunity_ok(peak: float, vdd: float,
                      margin_fraction: float = 0.35) -> bool:
    """Static noise check: glitch below the (simple) switching margin."""
    return abs(peak) < margin_fraction * vdd
