"""Asymptotic Waveform Evaluation: Padé approximation from moments.

The AWE of Pillage & Rohrer: match the first ``2q`` moments of a
transfer function with a ``q``-pole reduced-order model

    H(s) ~= sum_i  k_i / (1 - s / p_i)

whose step response is ``y(t) = H(0) - sum_i k_i exp(p_i t)``.  The
denominator comes from a Hankel (moment-matrix) solve, the poles from
its roots, and the residues from a Vandermonde solve — the textbook AWE
pipeline, including the classic instability fallback: if any pole lands
in the right half plane the order is reduced until all poles are stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class AWEApproximation:
    """A pole/residue reduced-order model.

    Attributes:
        poles: pole locations [rad/s] (negative real for stable RC fits).
        residues: matching residues ``k_i`` (``sum k_i = m_0``).
        moments: the moments the model was fitted to (``m_0, m_1, ...``).
        order: number of poles retained.
    """

    poles: np.ndarray
    residues: np.ndarray
    moments: np.ndarray
    order: int

    @property
    def dominant_time_constant(self) -> float:
        """Time constant of the slowest pole [s]."""
        return float(-1.0 / np.max(np.real(self.poles)))

    def transfer_moment(self, q: int) -> float:
        """Moment ``m_q`` implied by the model: ``sum_i k_i / p_i**q``."""
        return float(np.real(np.sum(self.residues / self.poles ** q)))

    def step_response(self, t: np.ndarray, v_final: float = 1.0
                      ) -> np.ndarray:
        """Unit-step response scaled to a final value.

        ``y(t) = v_final * (m_0 - sum_i k_i exp(p_i t)) / m_0``.
        """
        t = np.asarray(t, dtype=float)
        m0 = float(np.real(np.sum(self.residues)))
        decay = np.real(
            np.sum(self.residues[None, :]
                   * np.exp(np.outer(t, self.poles)), axis=1))
        return v_final * (m0 - decay) / m0


def transfer_moments_to_poles(moments: Sequence[float],
                              order: int) -> np.ndarray:
    """Solve the AWE Hankel system for the poles of a ``order``-pole fit.

    Args:
        moments: ``m_0 .. m_{2*order-1}`` (at least ``2*order`` values).
        order: number of poles.

    Returns:
        Array of poles (roots of the reciprocal denominator polynomial).

    Raises:
        np.linalg.LinAlgError: if the moment matrix is singular.
    """
    m = np.asarray(moments, dtype=float)
    q = order
    if m.size < 2 * q:
        raise ValueError(f"need {2 * q} moments for a {q}-pole fit")
    # Denominator 1 + b1 s + ... + bq s^q from the moment-matching
    # conditions  sum_j b_j m_{q+i-j} = -m_{q+i},  i = 0..q-1.
    hankel = np.empty((q, q))
    rhs = np.empty(q)
    for i in range(q):
        for j in range(q):
            hankel[i, j] = m[q + i - (j + 1)]
        rhs[i] = -m[q + i]
    b = np.linalg.solve(hankel, rhs)
    # Q(s) = 1 + b1 s + ... + bq s^q ; poles are its roots.
    coeffs = np.concatenate(([1.0], b))[::-1]
    return np.roots(coeffs)


def awe_from_moments(moments: Sequence[float], order: int = 2,
                     require_stable: bool = True) -> AWEApproximation:
    """Build a pole/residue model from transfer moments.

    Args:
        moments: ``m_0, m_1, ...`` of the transfer function (``m_0`` is
            typically 1 for a voltage transfer to a capacitive load).
        order: requested number of poles; automatically reduced while
            unstable poles appear (AWE's standard remedy) when
            ``require_stable`` is set.
        require_stable: reject right-half-plane poles.

    Returns:
        The fitted approximation.

    Raises:
        ValueError: if not even a single stable pole can be extracted.
    """
    m = np.asarray(moments, dtype=float)
    for q in range(order, 0, -1):
        if m.size < 2 * q:
            continue
        try:
            poles = transfer_moments_to_poles(m, q)
        except np.linalg.LinAlgError:
            continue
        if require_stable and np.any(np.real(poles) >= 0):
            continue
        if np.any(np.abs(poles) < 1e-300):
            continue
        # Residues: match m_0..m_{q-1}:  sum_i k_i / p_i^r = m_r.
        vander = np.array([poles ** (-r) for r in range(q)])
        try:
            residues = np.linalg.solve(vander, m[:q].astype(complex))
        except np.linalg.LinAlgError:
            continue
        return AWEApproximation(poles=poles, residues=residues,
                                moments=m.copy(), order=q)
    raise ValueError("no stable AWE approximation could be extracted")


def awe_step_response(moments: Sequence[float], t: np.ndarray,
                      order: int = 2, v_final: float = 1.0) -> np.ndarray:
    """Convenience: step response of an AWE fit to the given moments."""
    return awe_from_moments(moments, order).step_response(t, v_final)
