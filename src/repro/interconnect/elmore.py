"""Elmore delay and higher-order moments of RC trees by path tracing.

For an RC tree driven by an ideal step source at the root, each node's
transfer function expands as ``H_k(s) = 1 + m1_k s + m2_k s^2 + ...``.
The moments obey the classic recurrence (Pillage & Rohrer)

    m_q(node) = m_q(parent) - R_branch * sum_{j in subtree} C_j m_{q-1}(j)

with ``m_0 = 1`` everywhere and ``m_q(root) = 0`` for q >= 1, computed
here with one upward (subtree accumulation) and one downward
(propagation) pass per order.  The Elmore delay is ``-m1``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.interconnect.rc_network import RCTree


def voltage_moments(tree: RCTree, order: int) -> List[Dict[str, float]]:
    """Voltage transfer moments ``m_1 .. m_order`` for every node.

    Args:
        tree: the RC tree.
        order: number of moments to compute (>= 1).

    Returns:
        A list of ``order`` dicts; element ``q-1`` maps node name to
        ``m_q``.  (``m_0`` is identically 1 and is omitted.)
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    topo = tree.topological()
    prev = {name: 1.0 for name in topo}  # m_0
    results: List[Dict[str, float]] = []
    for _ in range(order):
        # Upward pass: subtree sums of C_j * m_{q-1}(j).
        subtree = {name: tree.cap(name) * prev[name] for name in topo}
        for name in reversed(topo):
            parent = tree.parent(name)
            if parent is not None:
                subtree[parent] += subtree[name]
        # Downward pass: m_q(node) = m_q(parent) - R * subtree(node).
        current: Dict[str, float] = {tree.root: 0.0}
        for name in topo:
            if name == tree.root:
                continue
            parent = tree.parent(name)
            current[name] = (current[parent]
                             - tree.resistance(name) * subtree[name])
        results.append(current)
        prev = current
    return results


def elmore_delays(tree: RCTree) -> Dict[str, float]:
    """Elmore delay (first moment magnitude) at every node [s]."""
    first = voltage_moments(tree, 1)[0]
    return {name: -value for name, value in first.items()}


def admittance_moments(tree: RCTree, order: int = 3) -> List[float]:
    """Driving-point admittance moments ``A_1 .. A_order``.

    ``Y(s) = A_1 s + A_2 s^2 + ...`` with ``A_q = sum_k C_k m_{q-1}(k)``;
    ``A_1`` is the total capacitance.  These feed the O'Brien-Savarino
    π reduction.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    moments = [{name: 1.0 for name in tree.node_names}]
    if order > 1:
        moments.extend(voltage_moments(tree, order - 1))
    return [
        sum(tree.cap(name) * moments[q][name] for name in tree.node_names)
        for q in range(order)
    ]
