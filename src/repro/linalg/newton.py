"""A damped Newton-Raphson driver.

Shared by the SPICE engine (per-timestep nonlinear solves) and the QWM
matcher (per-critical-point solves).  The driver is deliberately generic:
callers supply a residual function, a Jacobian function, and optionally a
custom linear solver (the QWM matcher plugs in the bordered-tridiagonal
Sherman-Morrison solve here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.resilience import faults

ResidualFn = Callable[[np.ndarray], np.ndarray]
JacobianFn = Callable[[np.ndarray], np.ndarray]
LinearSolveFn = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Machine-readable values of :attr:`NewtonConvergenceError.reason`.
FAILURE_REASONS = (
    "non_finite_residual",
    "linear_solve_failed",
    "non_finite_step",
    "max_iterations",
    "fault_injected",
)


class NewtonConvergenceError(RuntimeError):
    """Raised when Newton-Raphson fails to converge within max_iterations.

    ``reason`` is one of :data:`FAILURE_REASONS` so callers (retry loops,
    the flight recorder) can build a fallback taxonomy without parsing
    the human-readable message.
    """

    def __init__(self, message: str, last_x: np.ndarray, last_residual_norm: float,
                 reason: str = "max_iterations"):
        super().__init__(message)
        self.last_x = last_x
        self.last_residual_norm = last_residual_norm
        self.reason = reason


@dataclass
class NewtonOptions:
    """Convergence and damping controls for :class:`NewtonSolver`.

    Attributes:
        abstol: absolute residual tolerance (per component, inf-norm).
        xtol: absolute update tolerance (per component, inf-norm).
        max_iterations: iteration budget before giving up.
        max_step: optional per-component cap on the Newton update magnitude
            (SPICE-style voltage limiting); ``None`` disables clamping.
        damping: multiplier applied to every accepted step (1.0 = full
            Newton).
        line_search: if True, halve the step up to ``line_search_tries``
            times whenever the residual norm would increase.
        line_search_tries: maximum halvings per iteration.
    """

    abstol: float = 1e-9
    xtol: float = 1e-9
    max_iterations: int = 100
    max_step: Optional[float] = None
    damping: float = 1.0
    line_search: bool = True
    line_search_tries: int = 8


@dataclass
class NewtonResult:
    """Outcome of a Newton solve.

    Attributes:
        x: converged solution.
        iterations: Newton iterations actually used.
        residual_norm: final residual inf-norm.
        converged: always True on a returned result (failures raise).
        function_evaluations: number of residual evaluations (includes
            line-search probes).
    """

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool = True
    function_evaluations: int = 0


@dataclass
class NewtonSolver:
    """Damped Newton-Raphson with optional step limiting and line search.

    Example:
        >>> import numpy as np
        >>> solver = NewtonSolver()
        >>> result = solver.solve(
        ...     residual=lambda x: np.array([x[0] ** 2 - 4.0]),
        ...     jacobian=lambda x: np.array([[2.0 * x[0]]]),
        ...     x0=np.array([1.0]),
        ... )
        >>> round(float(result.x[0]), 6)
        2.0
    """

    options: NewtonOptions = field(default_factory=NewtonOptions)

    def solve(
        self,
        residual: ResidualFn,
        jacobian: JacobianFn,
        x0: np.ndarray,
        linear_solve: Optional[LinearSolveFn] = None,
        trajectory: Optional[List[Dict[str, float]]] = None,
    ) -> NewtonResult:
        """Solve ``residual(x) = 0`` starting from ``x0``.

        Args:
            residual: maps x to the residual vector F(x).
            jacobian: maps x to dF/dx.  When ``linear_solve`` is provided
                the Jacobian may be any object that solver understands.
            x0: initial guess (not modified).
            linear_solve: optional ``(jacobian_value, rhs) -> update``;
                defaults to ``numpy.linalg.solve``.
            trajectory: optional list that receives one dict per
                iteration (``iteration``, ``residual_norm``,
                ``step_norm``, ``shrink``) including an iteration-0
                entry for the initial residual.  When ``None`` (the
                default) nothing is recorded and the loop pays one
                ``is not None`` check per iteration.

        Returns:
            A :class:`NewtonResult` on convergence.

        Raises:
            NewtonConvergenceError: if the iteration budget is exhausted or
                the linear solve fails irrecoverably.
        """
        if faults.active_plan() is not None and \
                faults.newton_should_fail():
            raise NewtonConvergenceError(
                "fault injection forced non-convergence",
                last_x=np.array(x0, dtype=float),
                last_residual_norm=float("inf"),
                reason="fault_injected",
            )
        opts = self.options
        if linear_solve is None:
            linear_solve = _dense_solve
        x = np.array(x0, dtype=float, copy=True)
        f = np.asarray(residual(x), dtype=float)
        evals = 1
        fnorm = _inf_norm(f)
        if trajectory is not None:
            trajectory.append({"iteration": 0, "residual_norm": fnorm,
                               "step_norm": 0.0, "shrink": 1.0})
        if not np.isfinite(fnorm):
            raise NewtonConvergenceError(
                "non-finite residual at the initial guess",
                last_x=x,
                last_residual_norm=fnorm,
                reason="non_finite_residual",
            )

        for iteration in range(1, opts.max_iterations + 1):
            if fnorm <= opts.abstol:
                return NewtonResult(
                    x=x,
                    iterations=iteration - 1,
                    residual_norm=fnorm,
                    function_evaluations=evals,
                )
            jac = jacobian(x)
            try:
                step = np.asarray(linear_solve(jac, f), dtype=float)
            except np.linalg.LinAlgError as exc:
                raise NewtonConvergenceError(
                    f"linear solve failed at iteration {iteration}: {exc}",
                    last_x=x,
                    last_residual_norm=fnorm,
                    reason="linear_solve_failed",
                ) from exc
            if not np.all(np.isfinite(step)):
                raise NewtonConvergenceError(
                    f"non-finite Newton step at iteration {iteration}",
                    last_x=x,
                    last_residual_norm=fnorm,
                    reason="non_finite_step",
                )
            step *= opts.damping
            if opts.max_step is not None:
                step = np.clip(step, -opts.max_step, opts.max_step)

            x_new = x - step
            f_new = np.asarray(residual(x_new), dtype=float)
            evals += 1
            fnorm_new = _inf_norm(f_new)
            if not np.isfinite(fnorm_new):
                raise NewtonConvergenceError(
                    f"non-finite residual at iteration {iteration}",
                    last_x=x,
                    last_residual_norm=fnorm,
                    reason="non_finite_residual",
                )

            accepted_shrink = 1.0
            if opts.line_search and fnorm_new > fnorm and fnorm_new > opts.abstol:
                shrink = 0.5
                for _ in range(opts.line_search_tries):
                    x_try = x - shrink * step
                    f_try = np.asarray(residual(x_try), dtype=float)
                    evals += 1
                    fnorm_try = _inf_norm(f_try)
                    if fnorm_try < fnorm_new:
                        x_new, f_new, fnorm_new = x_try, f_try, fnorm_try
                        accepted_shrink = shrink
                    if fnorm_try < fnorm:
                        break
                    shrink *= 0.5

            step_norm = _inf_norm(x_new - x)
            x, f, fnorm = x_new, f_new, fnorm_new
            if trajectory is not None:
                trajectory.append({"iteration": iteration,
                                   "residual_norm": fnorm,
                                   "step_norm": step_norm,
                                   "shrink": accepted_shrink})
            if fnorm <= opts.abstol or step_norm <= opts.xtol:
                return NewtonResult(
                    x=x,
                    iterations=iteration,
                    residual_norm=fnorm,
                    function_evaluations=evals,
                )

        raise NewtonConvergenceError(
            f"Newton-Raphson did not converge in {opts.max_iterations} iterations "
            f"(|F| = {fnorm:.3e})",
            last_x=x,
            last_residual_norm=fnorm,
            reason="max_iterations",
        )


def _dense_solve(jacobian_value: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    return np.linalg.solve(np.asarray(jacobian_value, dtype=float), rhs)


def _inf_norm(vec: np.ndarray) -> float:
    return float(np.max(np.abs(vec))) if vec.size else 0.0
