"""Sherman-Morrison solves for the bordered-tridiagonal QWM Jacobian.

Paper Section IV-B: the Jacobian of the matching equations is tridiagonal
except for its last column, because every residual depends on the unknown
critical time tau'.  Writing ``A_hat = A + u v^T`` where ``A`` is
tridiagonal, ``u`` holds the extra last-column entries and ``v = e_last``,
the update ``dx = A_hat^{-1} F`` is obtained from two tridiagonal solves:

    A y = F
    A z = u
    dx  = y - v.y / (1 + v.z) * z

which keeps the per-iteration cost O(K).
"""

from __future__ import annotations

import numpy as np

from repro.obs import inc
from repro.linalg.tridiagonal import TridiagonalMatrix, solve_tridiagonal


def solve_rank_one_update(
    matrix: TridiagonalMatrix,
    u: np.ndarray,
    v: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Solve ``(A + u v^T) x = rhs`` with ``A`` tridiagonal.

    Uses the Sherman-Morrison formula with two Thomas solves, O(n) total.

    Raises:
        np.linalg.LinAlgError: if ``A`` is singular or ``1 + v^T A^{-1} u``
            vanishes (the rank-one update makes the matrix singular).
    """
    u = np.asarray(u, dtype=float)
    v = np.asarray(v, dtype=float)
    y = solve_tridiagonal(matrix, rhs)
    z = solve_tridiagonal(matrix, u)
    denom = 1.0 + float(v @ z)
    if abs(denom) < 1e-300:
        raise np.linalg.LinAlgError("singular rank-one update in Sherman-Morrison")
    return y - (float(v @ y) / denom) * z


def solve_bordered_tridiagonal(
    matrix: TridiagonalMatrix,
    last_column: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Solve a system whose matrix is tridiagonal plus a dense last column.

    The full matrix is ``A_hat = A + u e_n^T`` where ``u`` is the extra
    content of the last column (i.e. ``A_hat[:, -1] = A[:, -1] + u``); the
    entries of ``u`` overlapping ``A``'s own band should be zero or fold
    the difference.

    Args:
        matrix: the tridiagonal part ``A`` (must itself be nonsingular).
        last_column: the *additional* last-column entries ``u`` (length n).
        rhs: right-hand side.

    Returns:
        Solution of ``(A + u e_n^T) x = rhs``.
    """
    last_column = np.asarray(last_column, dtype=float)
    n = matrix.n
    if last_column.shape[0] != n:
        raise ValueError(
            f"last_column length {last_column.shape[0]} != matrix dim {n}"
        )
    v = np.zeros(n)
    v[-1] = 1.0
    update = solve_rank_one_update(matrix, last_column, v, rhs)
    inc("linalg.solve.sherman_morrison")
    return update
