"""Thomas-algorithm tridiagonal solver.

The QWM Jacobian (paper Eq. 9) is tridiagonal apart from its last column,
so the inner linear solves reduce to O(K) tridiagonal sweeps.  The paper
reports that exploiting this structure gives roughly a 2x speedup over
dense LU at the stack sizes of interest; ``benchmarks/bench_ablation_solver``
reproduces that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TridiagonalMatrix:
    """A tridiagonal matrix stored as three diagonals.

    Attributes:
        lower: sub-diagonal, length ``n - 1`` (``lower[i]`` is ``A[i+1, i]``).
        diag: main diagonal, length ``n``.
        upper: super-diagonal, length ``n - 1`` (``upper[i]`` is ``A[i, i+1]``).
    """

    lower: np.ndarray
    diag: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        self.lower = np.asarray(self.lower, dtype=float)
        self.diag = np.asarray(self.diag, dtype=float)
        self.upper = np.asarray(self.upper, dtype=float)
        n = self.diag.shape[0]
        if n == 0:
            raise ValueError("tridiagonal matrix must have at least one row")
        if self.lower.shape[0] != max(n - 1, 0):
            raise ValueError(
                f"lower diagonal has length {self.lower.shape[0]}, expected {n - 1}"
            )
        if self.upper.shape[0] != max(n - 1, 0):
            raise ValueError(
                f"upper diagonal has length {self.upper.shape[0]}, expected {n - 1}"
            )

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.diag.shape[0]

    def to_dense(self) -> np.ndarray:
        """Expand into a dense ``(n, n)`` array (for tests and fallbacks)."""
        dense = np.diag(self.diag)
        if self.n > 1:
            dense += np.diag(self.lower, k=-1)
            dense += np.diag(self.upper, k=1)
        return dense

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "TridiagonalMatrix":
        """Extract the three diagonals of a dense matrix."""
        dense = np.asarray(dense, dtype=float)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise ValueError("from_dense expects a square matrix")
        return cls(
            lower=np.diag(dense, k=-1).copy(),
            diag=np.diag(dense).copy(),
            upper=np.diag(dense, k=1).copy(),
        )


def tridiagonal_matvec(matrix: TridiagonalMatrix, x: np.ndarray) -> np.ndarray:
    """Compute ``A @ x`` for a tridiagonal ``A`` in O(n)."""
    x = np.asarray(x, dtype=float)
    if x.shape[0] != matrix.n:
        raise ValueError(f"vector length {x.shape[0]} != matrix dim {matrix.n}")
    y = matrix.diag * x
    if matrix.n > 1:
        y[:-1] += matrix.upper * x[1:]
        y[1:] += matrix.lower * x[:-1]
    return y


def solve_tridiagonal(matrix: TridiagonalMatrix, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = rhs`` with the Thomas algorithm in O(n).

    Args:
        matrix: the tridiagonal coefficient matrix.
        rhs: right-hand side of length ``n``.

    Returns:
        The solution vector ``x``.

    Raises:
        np.linalg.LinAlgError: if a pivot underflows (matrix numerically
            singular).  The Thomas algorithm does not pivot; the QWM
            Jacobians are strongly diagonally dominant in practice, and
            callers fall back to dense LU on failure.
    """
    rhs = np.asarray(rhs, dtype=float)
    n = matrix.n
    if rhs.shape[0] != n:
        raise ValueError(f"rhs length {rhs.shape[0]} != matrix dim {n}")

    # Forward sweep: eliminate the sub-diagonal.
    scratch_upper = np.empty(n - 1) if n > 1 else np.empty(0)
    scratch_rhs = np.empty(n)
    pivot = matrix.diag[0]
    if abs(pivot) < 1e-300:
        raise np.linalg.LinAlgError("zero pivot in tridiagonal solve at row 0")
    scratch_rhs[0] = rhs[0] / pivot
    if n > 1:
        scratch_upper[0] = matrix.upper[0] / pivot
    for i in range(1, n):
        pivot = matrix.diag[i] - matrix.lower[i - 1] * scratch_upper[i - 1]
        if abs(pivot) < 1e-300:
            raise np.linalg.LinAlgError(
                f"zero pivot in tridiagonal solve at row {i}"
            )
        if i < n - 1:
            scratch_upper[i] = matrix.upper[i] / pivot
        scratch_rhs[i] = (rhs[i] - matrix.lower[i - 1] * scratch_rhs[i - 1]) / pivot

    # Back substitution.
    x = np.empty(n)
    x[-1] = scratch_rhs[-1]
    for i in range(n - 2, -1, -1):
        x[i] = scratch_rhs[i] - scratch_upper[i] * x[i + 1]
    return x
