"""Numerical linear-algebra substrate for the QWM solver.

The QWM matching equations (paper Eq. 7/9) produce a Jacobian that is
tridiagonal except for a dense last column (the unknown critical time).
This package provides:

* :func:`~repro.linalg.tridiagonal.solve_tridiagonal` — O(K) Thomas
  algorithm.
* :func:`~repro.linalg.sherman_morrison.solve_bordered_tridiagonal` —
  tridiagonal-plus-rank-one solve via the Sherman-Morrison formula, as
  described in the paper's Section IV-B.
* :class:`~repro.linalg.newton.NewtonSolver` — a damped Newton-Raphson
  driver shared by the SPICE engine and the QWM matcher.
"""

from repro.linalg.tridiagonal import (
    TridiagonalMatrix,
    solve_tridiagonal,
    tridiagonal_matvec,
)
from repro.linalg.sherman_morrison import (
    solve_bordered_tridiagonal,
    solve_rank_one_update,
)
from repro.linalg.newton import (
    NewtonConvergenceError,
    NewtonOptions,
    NewtonResult,
    NewtonSolver,
)

__all__ = [
    "TridiagonalMatrix",
    "solve_tridiagonal",
    "tridiagonal_matvec",
    "solve_bordered_tridiagonal",
    "solve_rank_one_update",
    "NewtonConvergenceError",
    "NewtonOptions",
    "NewtonResult",
    "NewtonSolver",
]
