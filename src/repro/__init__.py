"""repro — Transistor-level STA by piecewise Quadratic Waveform Matching.

A from-scratch reproduction of Wang & Zhu, "Transistor-Level Static
Timing Analysis by Piecewise Quadratic Waveform Matching" (DATE 2003),
including every substrate the paper depends on:

* :mod:`repro.core` — the QWM engine (the paper's contribution).
* :mod:`repro.devices` — golden analytic MOSFET models and the
  characterized tabular models QWM consumes.
* :mod:`repro.circuit` — logic stages as polar graphs, plus builders for
  every benchmark circuit (gates, stacks, Manchester carry chain,
  memory decoder tree).
* :mod:`repro.spice` — a SPICE-like Newton-Raphson transient engine
  (the HSPICE stand-in the paper compares against).
* :mod:`repro.interconnect` — Elmore/AWE/π-model interconnect reduction.
* :mod:`repro.linalg` — Thomas + Sherman-Morrison structured solves.
* :mod:`repro.analysis` — delay metrics, accuracy accounting, and a
  longest-path STA built on QWM.
* :mod:`repro.baselines` — switch-level (Crystal/IRSIM) and
  successive-chords (TETA) related-work baselines.
* :mod:`repro.lint` — static pre-simulation analysis: rule-based ERC,
  model, solver-preflight and interconnect checks with structured
  diagnostics (also the ``repro lint`` CLI subcommand).
* :mod:`repro.obs` — telemetry: hierarchical tracing, a metrics
  registry keyed to the paper's cost model, and pluggable sinks
  (also the ``repro stats`` CLI subcommand).

Quickstart::

    from repro import CMOSP35, WaveformEvaluator, builders, StepSource

    tech = CMOSP35
    stage = builders.nand_gate(tech, 3)
    evaluator = WaveformEvaluator(tech)
    solution = evaluator.evaluate(
        stage, output="out", direction="fall",
        inputs={"a0": StepSource(0, tech.vdd, 0), "a1": tech.vdd,
                "a2": tech.vdd},
        precharge="degraded")
    print(solution.delay())
"""

from repro.devices import (
    CMOSP35,
    MosfetModel,
    TableDeviceModel,
    TableModelLibrary,
    Technology,
    characterize_device,
    nmos_model,
    pmos_model,
)
from repro.circuit import (
    FlatNetlist,
    LogicStage,
    StageGraph,
    builders,
    extract_stages,
)
from repro.spice import (
    ConstantSource,
    PulseSource,
    PWLSource,
    RampSource,
    StepSource,
    TransientOptions,
    TransientResult,
    TransientSimulator,
)
from repro.core import (
    PiecewiseQuadraticWaveform,
    QWMOptions,
    QWMSolution,
    QWMSolver,
    WaveformEvaluator,
    extract_path,
)
from repro.analysis import (
    AccuracyReport,
    StaticTimingAnalyzer,
    accuracy_percent,
    measure_delay,
    measure_slew,
)
from repro.baselines import SuccessiveChordsSimulator, SwitchLevelTimer
from repro.lint import (
    Diagnostic,
    LintReport,
    PreflightError,
    Severity,
    lint_netlist,
    lint_stage,
)
from repro.obs import ObsConfig, Telemetry, configure, disable, telemetry

__version__ = "1.0.0"

__all__ = [
    "CMOSP35",
    "MosfetModel",
    "TableDeviceModel",
    "TableModelLibrary",
    "Technology",
    "characterize_device",
    "nmos_model",
    "pmos_model",
    "FlatNetlist",
    "LogicStage",
    "StageGraph",
    "builders",
    "extract_stages",
    "ConstantSource",
    "PulseSource",
    "PWLSource",
    "RampSource",
    "StepSource",
    "TransientOptions",
    "TransientResult",
    "TransientSimulator",
    "PiecewiseQuadraticWaveform",
    "QWMOptions",
    "QWMSolution",
    "QWMSolver",
    "WaveformEvaluator",
    "extract_path",
    "AccuracyReport",
    "StaticTimingAnalyzer",
    "accuracy_percent",
    "measure_delay",
    "measure_slew",
    "SuccessiveChordsSimulator",
    "SwitchLevelTimer",
    "Diagnostic",
    "LintReport",
    "PreflightError",
    "Severity",
    "lint_netlist",
    "lint_stage",
    "ObsConfig",
    "Telemetry",
    "configure",
    "disable",
    "telemetry",
    "__version__",
]
