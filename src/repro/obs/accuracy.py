"""Accuracy observatory: error ledgers and residual attribution.

The repo's other observability legs watch *time* (the phase profiler),
*events* (the flight recorder) and *counts* (metrics); this module
watches *error* — the quantity the paper's headline claim ("average
accuracy of 99%") is actually about.  It has three pieces:

* **Arc-candidate ledger** — while an audited STA run executes, every
  attempted stage arc is noted into a process-wide observatory (one
  attribute check when disabled, mirroring the profiler).  Process
  workers drain their ledgers into the task payload and the parent
  merges them, so the candidate set is identical across the serial,
  thread and process backends by construction.  The shadow-SPICE
  auditor (:mod:`repro.analysis.audit`) samples from this set.

* **Region capture** — a thread-local recorder the auditor arms around
  a QWM re-solve.  :meth:`repro.core.matching.RegionSystem.newton_solve`
  notes every converged region's final residual norm into the active
  capture, tagged with the same taxonomy the profiler uses (region
  condition, active-node count K, ``qwm.phase12`` vs ``qwm.phase3``),
  so a per-arc error is attributable to a *phase*, not just a case.
  When no capture is armed the hook is a thread-local read.

* **History ledger** — append-only ``ACCURACY_history.jsonl`` entries
  (format :data:`HISTORY_FORMAT`) fed by the golden suite, audits and
  the benchmark accuracy section; ``repro accuracy-diff`` compares
  consecutive entries direction-aware (error *growing* is a
  regression, error shrinking never is).

Determinism contract: nothing recorded here carries wall-clock or
host state — records are pure functions of the design, the seed and
the solver configuration, which is what makes "serial and process
backends produce bit-identical audit records" testable.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "AccuracyConfig", "AccuracyObservatory", "observatory",
    "configure_accuracy", "disable_accuracy", "note_arc_candidate",
    "RegionCapture", "capture_regions", "accuracy_region_phase",
    "note_region", "attribute_regions",
    "history_entry", "append_history_entry", "load_history_entries",
    "accuracy_regressions", "worst_regression",
    "LEDGER_FORMAT", "HISTORY_FORMAT", "CONDITION_TAGS",
]

#: Audit-ledger format tag (bumped on incompatible record changes).
LEDGER_FORMAT = "repro-accuracy-audit/1"
#: History-ledger format tag (one JSONL entry per golden/audit run).
HISTORY_FORMAT = "repro-accuracy-history/1"

#: Region condition class -> attribution tag — the same mapping the
#: phase profiler uses (:data:`repro.core.qwm._CONDITION_TAGS`), kept
#: here so :mod:`repro.core.matching` can tag captures without
#: importing :mod:`repro.core.qwm` (matching is imported *by* qwm).
CONDITION_TAGS = {"TurnOnCondition": "turn_on",
                  "CrossingCondition": "crossing",
                  "TimeCondition": "time"}

#: One arc candidate: (stage, output, direction, input, slew token).
ArcKey = Tuple[str, str, str, str, str]


def slew_token(input_slew: Optional[float]) -> str:
    """Canonical string form of an arc's input slew (``step`` for None)."""
    return "step" if not input_slew else repr(float(input_slew))


def slew_from_token(token: str) -> Optional[float]:
    """Inverse of :func:`slew_token`."""
    return None if token == "step" else float(token)


@dataclass
class AccuracyConfig:
    """Controls for the accuracy observatory.

    Attributes:
        enabled: master switch.  When False (the default) the arc
            noting hook is a single attribute check and no state
            accumulates.
        max_records: cap on retained audit records; records beyond the
            cap are dropped and counted (the candidate set itself is
            bounded by the design's arc count).
    """

    enabled: bool = False
    max_records: int = 4096

    def __post_init__(self) -> None:
        if self.max_records < 1:
            raise ValueError("max_records must be >= 1")


class AccuracyObservatory:
    """Thread-safe arc-candidate set + audit-record ledger.

    Mirrors :class:`repro.obs.profile.PhaseProfiler`: process-wide,
    disabled by default, with :meth:`drain`/:meth:`merge` shaped so
    per-worker deltas shipped through task payloads recombine into
    exactly the serial run's ledger (set union and keyed insertion
    commute).
    """

    def __init__(self, config: Optional[AccuracyConfig] = None):
        self.config = config or AccuracyConfig()
        #: Fast-path switch (plain attribute, mirrors ``Tracer.enabled``).
        self.enabled = self.config.enabled
        self._lock = threading.Lock()
        self._arcs: Dict[ArcKey, None] = {}
        self._records: Dict[ArcKey, Dict[str, Any]] = {}
        self._dropped = 0

    # ------------------------------------------------------------------
    def note_arc(self, stage: str, output: str, direction: str,
                 switching_input: str,
                 input_slew: Optional[float]) -> None:
        """Note one attempted arc candidate (idempotent)."""
        key = (stage, output, direction, switching_input,
               slew_token(input_slew))
        with self._lock:
            self._arcs[key] = None

    def record_audit(self, record: Dict[str, Any]) -> None:
        """Store one audit record, keyed by its arc.

        Re-auditing an arc overwrites (records are deterministic, so
        the values are identical); records beyond ``max_records`` for
        *new* arcs are dropped and counted.
        """
        key = tuple(record["arc"])
        with self._lock:
            if key not in self._records \
                    and len(self._records) >= self.config.max_records:
                self._dropped += 1
                return
            self._records[key] = record

    # ------------------------------------------------------------------
    def arc_candidates(self) -> List[ArcKey]:
        """Every noted arc, sorted (scheduler-order independent)."""
        with self._lock:
            return sorted(self._arcs)

    def to_json(self) -> Dict[str, Any]:
        """The ledger as a JSON-serializable dict (sorted keys)."""
        with self._lock:
            return {
                "format": LEDGER_FORMAT,
                "arcs": [list(key) for key in sorted(self._arcs)],
                "records": [self._records[key]
                            for key in sorted(self._records)],
                "dropped_records": self._dropped,
            }

    def drain(self) -> Dict[str, Any]:
        """Snapshot the ledger and reset it atomically.

        The process backend drains the worker's observatory after
        every stage task and ships the delta back with the payload;
        the parent merges, so the parent's candidate set equals the
        serial run's no matter how stages were scheduled.
        """
        with self._lock:
            snapshot = {
                "format": LEDGER_FORMAT,
                "arcs": [list(key) for key in sorted(self._arcs)],
                "records": [self._records[key]
                            for key in sorted(self._records)],
                "dropped_records": self._dropped,
            }
            self._arcs = {}
            self._records = {}
            self._dropped = 0
            return snapshot

    def merge(self, payload: Dict[str, Any]) -> None:
        """Fold a drained ledger into this one (union; commutative)."""
        arcs = [tuple(arc) for arc in payload.get("arcs", ())]
        records = list(payload.get("records", ()))
        with self._lock:
            for key in arcs:
                self._arcs[key] = None
        for record in records:
            self.record_audit(record)
        with self._lock:
            self._dropped += int(payload.get("dropped_records", 0))

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"arcs": len(self._arcs),
                    "records": len(self._records),
                    "dropped": self._dropped}


#: The process-wide observatory; disabled until ``configure_accuracy``.
_OBSERVATORY = AccuracyObservatory(AccuracyConfig(enabled=False))


def observatory() -> AccuracyObservatory:
    """The current process-wide accuracy observatory."""
    return _OBSERVATORY


def configure_accuracy(config: AccuracyConfig) -> AccuracyObservatory:
    """Install a fresh observatory for ``config`` and return it."""
    global _OBSERVATORY
    _OBSERVATORY = AccuracyObservatory(config)
    return _OBSERVATORY


def disable_accuracy() -> AccuracyObservatory:
    """Restore the default disabled observatory."""
    return configure_accuracy(AccuracyConfig(enabled=False))


def note_arc_candidate(stage: str, output: str, direction: str,
                       switching_input: str,
                       input_slew: Optional[float]) -> None:
    """Note an attempted arc on the current observatory (no-op when off)."""
    obs = _OBSERVATORY
    if obs.enabled:
        obs.note_arc(stage, output, direction, switching_input,
                     input_slew)


# ----------------------------------------------------------------------
# Region capture: thread-local residual attribution for one re-solve.
# ----------------------------------------------------------------------
class RegionCapture:
    """Accumulates per-region residual notes during one QWM solve."""

    __slots__ = ("notes", "phases")

    def __init__(self) -> None:
        self.notes: List[Dict[str, Any]] = []
        self.phases: List[str] = []

    def note(self, tag: str, k: int, residual_norm: float,
             iterations: int) -> None:
        phase = self.phases[-1] if self.phases else "qwm"
        self.notes.append({
            "phase": phase,
            "tag": tag,
            "k": int(k),
            "residual_norm": float(residual_norm),
            "iterations": int(iterations),
        })


_LOCAL = threading.local()


def _active_capture() -> Optional[RegionCapture]:
    return getattr(_LOCAL, "capture", None)


class _CaptureScope:
    """Context manager arming a :class:`RegionCapture` on this thread."""

    __slots__ = ("capture", "_previous")

    def __init__(self) -> None:
        self.capture = RegionCapture()
        self._previous: Optional[RegionCapture] = None

    def __enter__(self) -> RegionCapture:
        self._previous = getattr(_LOCAL, "capture", None)
        _LOCAL.capture = self.capture
        return self.capture

    def __exit__(self, *exc: Any) -> None:
        _LOCAL.capture = self._previous


def capture_regions() -> _CaptureScope:
    """Arm region capture for the enclosed solve (thread-local)."""
    return _CaptureScope()


class _NoopContext:
    """Shared do-nothing context when no capture is armed."""

    __slots__ = ()

    def __enter__(self) -> "_NoopContext":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NOOP_CONTEXT = _NoopContext()


class _PhaseScope:
    """Pushes a solver-phase label onto the active capture."""

    __slots__ = ("_capture", "_phase")

    def __init__(self, capture: RegionCapture, phase: str):
        self._capture = capture
        self._phase = phase

    def __enter__(self) -> "_PhaseScope":
        self._capture.phases.append(self._phase)
        return self

    def __exit__(self, *exc: Any) -> None:
        self._capture.phases.pop()


def accuracy_region_phase(phase: str):
    """Label subsequent region notes with ``phase`` (no-op unarmed).

    :meth:`repro.core.qwm.QWMSolver._solve_region` opens this around
    each region solve with its profiler phase (``qwm.phase12`` for the
    cascade, ``qwm.phase3`` for the milestone regions), so captured
    residual notes carry the same phase taxonomy the profiler reports.
    """
    capture = getattr(_LOCAL, "capture", None)
    if capture is None:
        return _NOOP_CONTEXT
    return _PhaseScope(capture, phase)


def note_region(tag: str, k: int, residual_norm: float,
                iterations: int) -> None:
    """Note one converged region into the active capture (if armed)."""
    capture = getattr(_LOCAL, "capture", None)
    if capture is not None:
        capture.note(tag, k, residual_norm, iterations)


def attribute_regions(notes: Sequence[Dict[str, Any]]
                      ) -> Dict[str, Any]:
    """Aggregate captured region notes into an error-budget attribution.

    Groups notes by ``phase:tag`` cell; the *dominant* cell is the one
    with the largest summed final residual norm (ties break
    lexicographically, so attribution is deterministic).  Returns the
    cells plus the dominant label, region count and the maximum
    active-node count K seen.
    """
    cells: Dict[str, Dict[str, Any]] = {}
    for entry in notes:
        label = f"{entry['phase']}:{entry['tag']}"
        cell = cells.setdefault(label, {
            "regions": 0, "iterations": 0,
            "residual_norm_sum": 0.0, "max_k": 0})
        cell["regions"] += 1
        cell["iterations"] += int(entry["iterations"])
        cell["residual_norm_sum"] += float(entry["residual_norm"])
        cell["max_k"] = max(cell["max_k"], int(entry["k"]))
    dominant = None
    for label in sorted(cells):
        score = cells[label]["residual_norm_sum"]
        if dominant is None or score > cells[dominant][
                "residual_norm_sum"]:
            dominant = label
    return {
        "regions": sum(cell["regions"] for cell in cells.values()),
        "max_k": max([cell["max_k"] for cell in cells.values()],
                     default=0),
        "dominant": dominant,
        "cells": {label: cells[label] for label in sorted(cells)},
    }


# ----------------------------------------------------------------------
# History ledger (ACCURACY_history.jsonl).
# ----------------------------------------------------------------------
def history_entry(run: str, cases: Dict[str, Dict[str, Any]],
                  git_sha: str = "unknown",
                  extra: Optional[Dict[str, Any]] = None
                  ) -> Dict[str, Any]:
    """Build one history-ledger entry.

    Args:
        run: source of the errors (``"golden"``, ``"sta-audit"``,
            ``"bench-headline"``).
        cases: case/arc name -> per-case section.  Recognized keys:
            ``delay_error_pct`` (required for the diff),
            ``slew_error_pct``, ``margin_to_band_pct``,
            ``attribution`` (dominant ``phase:tag`` label), ``status``.
        git_sha: HEAD commit, when known.
        extra: optional additional top-level fields (e.g. audit seed).

    Deliberately carries no timestamp: entries must be bit-identical
    when the design and solver are (lint rule DET003), and the ledger
    is append-only so ordering already encodes history.
    """
    errors = [float(section["delay_error_pct"])
              for section in cases.values()
              if section.get("delay_error_pct") is not None]
    worst_case = None
    for name in sorted(cases):
        err = cases[name].get("delay_error_pct")
        if err is None:
            continue
        if worst_case is None \
                or err > cases[worst_case]["delay_error_pct"]:
            worst_case = name
    entry: Dict[str, Any] = {
        "format": HISTORY_FORMAT,
        "run": run,
        "git_sha": git_sha,
        "cases": {name: cases[name] for name in sorted(cases)},
        "summary": {
            "cases": len(cases),
            "compared": len(errors),
            "mean_delay_error_pct": (sum(errors) / len(errors)
                                     if errors else None),
            "worst_delay_error_pct": (max(errors) if errors else None),
            "worst_case": worst_case,
        },
    }
    if extra:
        entry.update(extra)
    return entry


def append_history_entry(entry: Dict[str, Any], path: str) -> str:
    """Append one entry to a JSONL accuracy-history ledger."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def load_history_entries(path: str) -> List[Dict[str, Any]]:
    """All entries of an accuracy-history ledger (oldest first)."""
    if not os.path.exists(path):
        return []
    entries = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def accuracy_regressions(prev: Dict[str, Any], last: Dict[str, Any],
                         threshold_pp: float) -> List[Dict[str, Any]]:
    """Per-case drift between two history entries, direction-aware.

    A case *regresses* when its delay error grew by more than
    ``threshold_pp`` percentage points, or when it newly left the
    tolerance band (``margin_to_band_pct`` crossing below zero).
    Error shrinking is never a regression — the gate is one-sided,
    like ``repro bench-diff``'s lower-is-better metrics.
    """
    rows = []
    prev_cases = prev.get("cases", {})
    for name in sorted(last.get("cases", {})):
        current = last["cases"][name]
        baseline = prev_cases.get(name)
        if baseline is None:
            continue
        err_now = current.get("delay_error_pct")
        err_before = baseline.get("delay_error_pct")
        if err_now is None or err_before is None:
            continue
        drift_pp = float(err_now) - float(err_before)
        margin_now = current.get("margin_to_band_pct")
        margin_before = baseline.get("margin_to_band_pct")
        left_band = (margin_now is not None
                     and margin_before is not None
                     and margin_now < 0.0 <= margin_before)
        rows.append({
            "case": name,
            "baseline_error_pct": float(err_before),
            "current_error_pct": float(err_now),
            "drift_pp": drift_pp,
            "attribution": current.get("attribution"),
            "left_band": left_band,
            "regression": drift_pp > threshold_pp or left_band,
        })
    return rows


def worst_regression(rows: Sequence[Dict[str, Any]]
                     ) -> Optional[Dict[str, Any]]:
    """The worst-drifting regressed case (None when nothing regressed)."""
    worst = None
    for row in rows:
        if not row["regression"]:
            continue
        if worst is None or row["drift_pp"] > worst["drift_pp"]:
            worst = row
    return worst
