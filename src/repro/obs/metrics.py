"""Process-wide metrics: counters, gauges and histograms.

Every metric has a dot-qualified name (``"qwm.newton.iterations"``),
an optional set of labels per observation and one of three kinds:

* **counter** — monotonically increasing total (``inc``).
* **gauge** — last-written value (``set``).
* **histogram** — explicit-bucket distribution (``observe``), recording
  per-bucket counts plus the running sum and count.

The registry exposes a JSON dump (machine-readable, used by the CLI
``--metrics`` flag and the benchmark artifacts) and a Prometheus-style
text exposition (dots become underscores, histograms expand into
``_bucket``/``_sum``/``_count`` series).

Label cardinality is bounded: once a metric holds ``max_series``
distinct label sets, observations for *new* label sets are dropped and
counted in :attr:`MetricsRegistry.dropped_series`.

Known solver metrics are pre-declared in :data:`CATALOG` so hot-path
call sites need only a name — help text and histogram buckets are
looked up here, keeping instrumentation one-liners.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Buckets for iteration-count style histograms (Fibonacci-ish).
ITERATION_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0)
#: Buckets for wall-time histograms [s], ~1 us .. 10 s log scale.
WALL_SECONDS_BUCKETS = tuple(
    10.0 ** e * m for e in range(-6, 1) for m in (1.0, 3.0))

#: name -> (kind, help, buckets-or-None) for the solver's known metrics.
CATALOG: Dict[str, Tuple[str, str, Optional[Tuple[float, ...]]]] = {
    "qwm.solves": (
        "counter", "QWM schedules run to completion", None),
    "qwm.newton.iterations": (
        "histogram", "Newton iterations per solved QWM region",
        ITERATION_BUCKETS),
    "qwm.region.wall_seconds": (
        "histogram", "wall time per QWM region solve (incl. retries)",
        WALL_SECONDS_BUCKETS),
    "qwm.region.retries": (
        "counter", "extra initial-guess attempts spent on QWM regions",
        None),
    "newton.convergence.failures": (
        "counter", "Newton attempts that failed to converge or were "
                   "rejected (non-advancing critical time)", None),
    "device.table.evaluations": (
        "counter", "tabular device-model I/V evaluations", None),
    "device.table.cache": (
        "counter", "table-model library lookups by result label", None),
    "engine.dc_fallback": (
        "counter", "DC initial-condition solves that fell back to the "
                   "analytic threshold-degraded estimate, by exception "
                   "class label", None),
    "linalg.solve.sherman_morrison": (
        "counter", "bordered-tridiagonal solves via Thomas + "
                   "Sherman-Morrison", None),
    "linalg.solve.dense_lu": (
        "counter", "bordered-tridiagonal solves via dense LU fallback",
        None),
    "sta.stage.solves": (
        "counter", "stage-arc QWM evaluations issued by the STA", None),
    "sta.stage.wall_seconds": (
        "histogram", "wall time per STA stage (all arcs)",
        WALL_SECONDS_BUCKETS),
    "sta.cache": (
        "counter", "stage-result cache lookups by result label", None),
    "sta.cache.entries": (
        "gauge", "stage-result cache occupancy (entries)", None),
    "sta.parallel.dispatch": (
        "counter", "stage tasks dispatched to the STA scheduler, by "
                   "backend label", None),
    "sta.parallel.waves": (
        "gauge", "levelized wave count of the last scheduled STA run",
        None),
    "sta.parallel.redispatch": (
        "counter", "pooled stage tasks re-dispatched into the main "
                   "process, by reason label (worker_crash, "
                   "stage_timeout, task_error, serial_only)", None),
    "resilience.escalations": (
        "counter", "stage-arc escalations by the rung that failed "
                   "(rung label)", None),
    "resilience.arc.quality": (
        "counter", "evaluated stage arcs by the ladder rung that "
                   "produced them (quality label)", None),
    "resilience.faults.injected": (
        "counter", "faults fired by the chaos harness, by kind label",
        None),
    "cache.store_corrupt": (
        "counter", "on-disk stage-cache stores rejected at load, by "
                   "reason label (parse, version)", None),
    "spice.budget.exceeded": (
        "counter", "adaptive transient runs aborted by their step or "
                   "wall-clock budget", None),
    "spice.steps": (
        "counter", "accepted reference-engine time steps", None),
    "spice.newton.iterations": (
        "counter", "reference-engine Newton iterations", None),
    "spice.device.evaluations": (
        "counter", "golden-model device evaluations in the reference "
                   "engine", None),
    "obs.trace.dropped": (
        "counter", "finished spans dropped past the trace buffer limit",
        None),
}

#: Fallback buckets for histograms not in the catalog.
DEFAULT_BUCKETS = ITERATION_BUCKETS

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Metric:
    """Common bookkeeping: name, kind, labeled series, lock."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help_text: str):
        self._registry = registry
        self.name = name
        self.help = help_text
        self._series: Dict[LabelKey, object] = {}
        self._lock = threading.Lock()

    def _slot(self, labels: dict, default_factory):
        """Locate (or admit) the series for a label set, or None."""
        key = _label_key(labels)
        series = self._series
        slot = series.get(key)
        if slot is None:
            with self._lock:
                slot = series.get(key)
                if slot is None:
                    if len(series) >= self._registry.max_series:
                        self._registry._drop_series()
                        return None
                    slot = default_factory()
                    series[key] = slot
        return slot

    def labelsets(self) -> List[LabelKey]:
        with self._lock:
            return list(self._series)

    def to_json(self) -> dict:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonic total, optionally split by labels."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        slot = self._slot(labels, lambda: [0.0])
        if slot is not None:
            slot[0] += amount

    def value(self, **labels) -> float:
        slot = self._series.get(_label_key(labels))
        return slot[0] if slot is not None else 0.0

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(s[0] for s in self._series.values())

    def to_json(self) -> dict:
        with self._lock:
            series = [{"labels": dict(key), "value": slot[0]}
                      for key, slot in sorted(self._series.items())]
        return {"kind": self.kind, "help": self.help, "series": series}


class Gauge(_Metric):
    """Last-written value, optionally split by labels."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        slot = self._slot(labels, lambda: [0.0])
        if slot is not None:
            slot[0] = float(value)

    def value(self, **labels) -> float:
        slot = self._series.get(_label_key(labels))
        return slot[0] if slot is not None else 0.0

    def to_json(self) -> dict:
        with self._lock:
            series = [{"labels": dict(key), "value": slot[0]}
                      for key, slot in sorted(self._series.items())]
        return {"kind": self.kind, "help": self.help, "series": series}


class _HistogramSlot:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Explicit-bucket distribution.

    ``buckets`` are upper bounds, ascending; an implicit ``+Inf``
    bucket catches the tail (Prometheus classic-histogram semantics:
    bucket counts are cumulative only in the exposition, stored
    per-bucket here).
    """

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help_text: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(registry, name, help_text)
        buckets = tuple(float(b) for b in buckets)
        if not buckets or any(b2 <= b1 for b1, b2
                              in zip(buckets, buckets[1:])):
            raise ValueError("histogram buckets must be non-empty and "
                             "strictly increasing")
        if any(not math.isfinite(b) for b in buckets):
            raise ValueError("histogram buckets must be finite "
                             "(+Inf is implicit)")
        self.buckets = buckets

    def observe(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        slot = self._slot(
            labels, lambda: _HistogramSlot(len(self.buckets)))
        if slot is None:
            return
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        slot.counts[index] += 1
        slot.sum += value
        slot.count += 1

    def snapshot(self, **labels) -> Optional[dict]:
        """Buckets/counts/sum/count for one label set (None if empty)."""
        slot = self._series.get(_label_key(labels))
        if slot is None:
            return None
        return {"buckets": list(self.buckets),
                "counts": list(slot.counts),
                "sum": slot.sum, "count": slot.count}

    def to_json(self) -> dict:
        with self._lock:
            series = [{"labels": dict(key), "buckets": list(self.buckets),
                       "counts": list(slot.counts), "sum": slot.sum,
                       "count": slot.count}
                      for key, slot in sorted(self._series.items())]
        return {"kind": self.kind, "help": self.help, "series": series}


class MetricsRegistry:
    """Thread-safe named-metric store.

    Args:
        enabled: when False every metric operation is a no-op (the
            accessors still hand out metric objects so call sites need
            no branches of their own).
        max_series: per-metric label-cardinality cap.
    """

    def __init__(self, enabled: bool = True, max_series: int = 256):
        self.enabled = enabled
        self.max_series = max_series
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()
        self.dropped_series = 0

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind: str, factory) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory()
                    self._metrics[name] = metric
        if metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {kind}")
        return metric

    def _catalog(self, name: str, kind: str, help_text: str,
                 buckets) -> Tuple[str, Optional[Tuple[float, ...]]]:
        entry = CATALOG.get(name)
        if entry is not None:
            cat_kind, cat_help, cat_buckets = entry
            if cat_kind == kind:
                help_text = help_text or cat_help
                buckets = buckets or cat_buckets
        return help_text, buckets

    def counter(self, name: str, help: str = "") -> Counter:
        help, _ = self._catalog(name, "counter", help, None)
        return self._get_or_create(
            name, "counter", lambda: Counter(self, name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        help, _ = self._catalog(name, "gauge", help, None)
        return self._get_or_create(
            name, "gauge", lambda: Gauge(self, name, help))

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        help, buckets = self._catalog(name, "histogram", help, buckets)
        buckets = tuple(buckets) if buckets else DEFAULT_BUCKETS
        return self._get_or_create(
            name, "histogram",
            lambda: Histogram(self, name, help, buckets))

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def _drop_series(self) -> None:
        self.dropped_series += 1

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
            self.dropped_series = 0

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Machine-readable dump of every metric and series."""
        return {
            "metrics": {name: self._metrics[name].to_json()
                        for name in self.names()},
            "dropped_series": self.dropped_series,
        }

    def export_json(self, path: str) -> str:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            pname = _prom_name(name)
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} {metric.kind}")
            dump = metric.to_json()
            for series in dump["series"]:
                labels = series["labels"]
                if metric.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(series["buckets"],
                                            series["counts"]):
                        cumulative += count
                        lines.append(_prom_line(
                            pname + "_bucket",
                            dict(labels, le=_prom_float(bound)),
                            cumulative))
                    cumulative += series["counts"][-1]
                    lines.append(_prom_line(
                        pname + "_bucket", dict(labels, le="+Inf"),
                        cumulative))
                    lines.append(_prom_line(pname + "_sum", labels,
                                            series["sum"]))
                    lines.append(_prom_line(pname + "_count", labels,
                                            series["count"]))
                else:
                    lines.append(_prom_line(pname, labels,
                                            series["value"]))
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_float(value: float) -> str:
    text = repr(float(value))
    return text[:-2] if text.endswith(".0") else text


def _prom_escape(value) -> str:
    """Escape a label value per the text exposition format."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_line(name: str, labels: dict, value) -> str:
    if labels:
        body = ",".join(f'{k}="{_prom_escape(v)}"'
                        for k, v in sorted(labels.items()))
        return f"{name}{{{body}}} {value}"
    return f"{name} {value}"
